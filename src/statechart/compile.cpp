#include "statechart/compile.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace umlsoc::statechart {

namespace {

constexpr std::uint32_t kNoConfig = 0xffffffffu;

/// AOT seeding caps: the breadth-first closure stops here and leaves the
/// remainder to lazy run-time extension (see seed_reachable_plans).
constexpr std::size_t kSeedMaxConfigs = 1024;
constexpr std::size_t kSeedMaxPlans = 16384;

std::uint64_t hash_words(const std::uint64_t* words, std::uint32_t count) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  for (std::uint32_t w = 0; w < count; ++w) {
    hash ^= words[w];
    hash *= 1099511628211ull;
  }
  return hash;
}

bool bit_raw(const std::uint64_t* bits, std::uint32_t index) {
  return (bits[index >> 6] >> (index & 63)) & 1u;
}

InstanceSnapshot::EventRecord record_event(const Event& event) {
  return InstanceSnapshot::EventRecord{event.name, event.data, event.tag};
}

Event make_event(const InstanceSnapshot::EventRecord& record) {
  return Event{record.name, record.data, record.tag};
}

}  // namespace

CompiledMachine::CompiledMachine(const StateMachine& machine) : machine_(&machine) {
  build_static_tables();
}

// --- Static tables ----------------------------------------------------------------

void CompiledMachine::build_static_tables() {
  vertex_list_ = machine_->all_vertices();
  region_list_ = machine_->all_regions();
  words_ = static_cast<std::uint32_t>((vertex_list_.size() + 63) / 64);
  if (words_ == 0) words_ = 1;

  std::unordered_map<const Vertex*, std::uint32_t> vertex_index;
  std::unordered_map<const Region*, std::uint32_t> region_index;
  vertex_index.reserve(vertex_list_.size());
  region_index.reserve(region_list_.size());
  for (std::size_t i = 0; i < vertex_list_.size(); ++i) {
    vertex_index.emplace(vertex_list_[i], static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < region_list_.size(); ++i) {
    region_index.emplace(region_list_[i], static_cast<std::uint32_t>(i));
  }

  vinfo_.resize(vertex_list_.size());
  for (std::size_t i = 0; i < vertex_list_.size(); ++i) {
    const Vertex* vertex = vertex_list_[i];
    VertexInfo& info = vinfo_[i];
    info.kind = vertex->vertex_kind();
    info.container = region_index.at(vertex->container());
    const State* parent = vertex->containing_state();
    info.parent_state = parent == nullptr ? -1 : static_cast<std::int32_t>(vertex_index.at(parent));
    info.depth = static_cast<std::uint16_t>(vertex->depth());
    info.state = dynamic_cast<const State*>(vertex);
    if (info.state != nullptr) {
      for (const auto& region : info.state->regions()) {
        info.regions.push_back(region_index.at(region.get()));
      }
    }
  }

  rinfo_.resize(region_list_.size());
  for (std::size_t i = 0; i < region_list_.size(); ++i) {
    const Region* region = region_list_[i];
    RegionInfo& info = rinfo_[i];
    info.region = region;
    info.owner = region->owner_state() == nullptr
                     ? -1
                     : static_cast<std::int32_t>(vertex_index.at(region->owner_state()));
    const Pseudostate* initial = region->initial();
    info.initial = (initial != nullptr && !initial->outgoing().empty())
                       ? initial->outgoing().front()
                       : nullptr;
    for (const auto& vertex : region->vertices()) {
      const std::uint32_t index = vertex_index.at(vertex.get());
      if (vertex->vertex_kind() == VertexKind::kState) info.child_states.push_back(index);
      if (vertex->vertex_kind() == VertexKind::kFinal) info.finals.push_back(index);
    }
  }

  const std::vector<const Transition*> transitions = machine_->all_transitions();
  tinfo_.reserve(transitions.size());
  transition_index_.reserve(transitions.size());
  for (const Transition* transition : transitions) {
    TransitionRow row;
    row.origin = transition;
    row.source = vertex_index.at(&transition->source());
    row.target = vertex_index.at(&transition->target());
    row.internal = transition->is_internal();
    row.completion = transition->is_completion();
    row.domain = domain_of(row.source, row.target);
    transition_index_.emplace(transition, static_cast<std::uint32_t>(tinfo_.size()));
    tinfo_.push_back(row);
  }
  for (std::size_t i = 0; i < vertex_list_.size(); ++i) {
    for (const Transition* transition : vertex_list_[i]->outgoing()) {
      vinfo_[i].outgoing.push_back(transition_index_.at(transition));
    }
  }

  event_names_.push_back("");  // Id 0 is the completion pseudo-event.
  event_ids_.emplace("", 0u);

  bits_.assign(words_, 0);
  claimed_scratch_.assign(words_, 0);
  shallow_slot_.assign(region_list_.size(), -1);
  deep_set_.assign(region_list_.size(), 0);
  deep_slot_.resize(region_list_.size());
  config_id_ = intern_config(bits_.data());
}

bool CompiledMachine::check_supported(support::DiagnosticSink& sink) const {
  bool ok = true;
  for (const Vertex* vertex : vertex_list_) {
    const VertexKind kind = vertex->vertex_kind();
    if (kind == VertexKind::kChoice || kind == VertexKind::kJunction) {
      sink.error(vertex->qualified_name(),
                 "compile: " + std::string(to_string(kind)) +
                     " pseudostates resolve guards dynamically and have no static plan; "
                     "run this machine on the interpreter");
      ok = false;
    }
  }
  for (const TransitionRow& row : tinfo_) {
    if (vinfo_[row.target].kind == VertexKind::kInitial) {
      sink.error(row.origin->str(), "compile: transition targets an initial pseudostate");
      ok = false;
    }
  }
  return ok;
}

// --- Structural queries ------------------------------------------------------------

bool CompiledMachine::vertex_within_region(std::uint32_t vertex, std::uint32_t region) const {
  std::uint32_t current = vinfo_[vertex].container;
  for (;;) {
    if (current == region) return true;
    const std::int32_t owner = rinfo_[current].owner;
    if (owner < 0) return false;
    current = vinfo_[owner].container;
  }
}

std::uint32_t CompiledMachine::domain_of(std::uint32_t source, std::uint32_t target) const {
  std::uint32_t current = vinfo_[source].container;
  for (;;) {
    if (vertex_within_region(target, current)) return current;
    const std::int32_t owner = rinfo_[current].owner;
    if (owner < 0) return 0;  // Top region (pre-order index 0) contains everything.
    current = vinfo_[owner].container;
  }
}

// --- Configuration interning --------------------------------------------------------

std::uint32_t CompiledMachine::intern_config(const std::uint64_t* bits) {
  if (config_slots_.empty()) config_slots_.assign(64, kNoConfig);
  const std::uint64_t hash = hash_words(bits, words_);
  std::uint32_t mask = static_cast<std::uint32_t>(config_slots_.size() - 1);
  std::uint32_t slot = static_cast<std::uint32_t>(hash) & mask;
  while (config_slots_[slot] != kNoConfig) {
    const std::uint32_t id = config_slots_[slot];
    const std::uint64_t* stored = &config_bits_pool_[configs_[id].bits_offset];
    if (std::equal(stored, stored + words_, bits)) return id;
    slot = (slot + 1) & mask;
  }

  // New configuration: copy the bitset and materialize the member lists
  // (states ascending, then finals ascending) used by plan building and
  // capture.
  ConfigRec rec;
  rec.bits_offset = static_cast<std::uint32_t>(config_bits_pool_.size());
  config_bits_pool_.insert(config_bits_pool_.end(), bits, bits + words_);
  rec.members_offset = static_cast<std::uint32_t>(config_member_pool_.size());
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const std::uint32_t index = w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (vinfo_[index].kind == VertexKind::kState) {
        config_member_pool_.push_back(index);
        ++rec.state_count;
      }
    }
  }
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const std::uint32_t index = w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (vinfo_[index].kind == VertexKind::kFinal) {
        config_member_pool_.push_back(index);
        ++rec.final_count;
      }
    }
  }
  const std::uint32_t id = static_cast<std::uint32_t>(configs_.size());
  configs_.push_back(rec);

  if ((configs_.size() + 1) * 4 > config_slots_.size() * 3) {
    std::vector<std::uint32_t> grown(config_slots_.size() * 2, kNoConfig);
    const std::uint32_t grown_mask = static_cast<std::uint32_t>(grown.size() - 1);
    for (std::uint32_t existing = 0; existing < configs_.size(); ++existing) {
      const std::uint64_t* stored = &config_bits_pool_[configs_[existing].bits_offset];
      std::uint32_t probe = static_cast<std::uint32_t>(hash_words(stored, words_)) & grown_mask;
      while (grown[probe] != kNoConfig) probe = (probe + 1) & grown_mask;
      grown[probe] = existing;
    }
    config_slots_ = std::move(grown);
  } else {
    config_slots_[slot] = id;
  }
  return id;
}

std::vector<std::uint32_t> CompiledMachine::configuration_members(std::uint32_t config) const {
  const ConfigRec& rec = configs_[config];
  const auto begin = config_member_pool_.begin() + rec.members_offset;
  return std::vector<std::uint32_t>(begin, begin + rec.state_count + rec.final_count);
}

std::uint32_t CompiledMachine::intern_event(const std::string& name) {
  auto it = event_ids_.find(name);
  if (it != event_ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(event_names_.size());
  event_names_.push_back(name);
  event_ids_.emplace(name, id);
  return id;
}

// --- Entry-phase linearization (compile-time symbolic execution) -------------------
// These mirror the interpreter's enter_target/enter_single/
// default_enter_region and its pending-composite sweep exactly, emitting
// steps instead of running behaviors, so the linearized op order equals
// the interpreter's behavior/listener call order.

bool CompiledMachine::sim_region_active(const EntrySim& sim, std::uint32_t region) const {
  for (const std::uint32_t final_index : rinfo_[region].finals) {
    if (bit_raw(sim.bits.data(), final_index)) return true;
  }
  for (const std::uint32_t child : rinfo_[region].child_states) {
    if (bit_raw(sim.bits.data(), child)) return true;
  }
  return false;
}

void CompiledMachine::sim_enter_single(EntrySim& sim, std::uint32_t state) {
  if (bit_raw(sim.bits.data(), state)) return;
  set_bit(sim.bits, state);
  sim.out->push_back(Step{Op::kEnterState, state, 0});
  if (!vinfo_[state].regions.empty()) sim.pending.push_back(state);
}

void CompiledMachine::sim_default_enter(EntrySim& sim, std::uint32_t region) {
  const Transition* transition = rinfo_[region].initial;
  if (transition == nullptr) return;  // Interpreter warns and enters nothing.
  if (!transition->effect().empty()) {
    sim.out->push_back(Step{Op::kEffect, transition_index_.at(transition), 0});
  }
  sim_enter_target(sim, tinfo_[transition_index_.at(transition)].target, region);
}

void CompiledMachine::sim_enter_target(EntrySim& sim, std::uint32_t vertex, std::uint32_t scope) {
  if (sim.dynamic) return;
  ++sim.depth;
  if (vinfo_[vertex].container != scope) {
    std::uint32_t chain[64];
    std::size_t chain_length = 0;
    for (std::int32_t ancestor = vinfo_[vertex].parent_state; ancestor >= 0;
         ancestor = vinfo_[ancestor].parent_state) {
      chain[chain_length++] = static_cast<std::uint32_t>(ancestor);
      if (vinfo_[ancestor].container == scope || chain_length == 64) break;
    }
    for (std::size_t i = chain_length; i-- > 0;) sim_enter_single(sim, chain[i]);
  }

  switch (vinfo_[vertex].kind) {
    case VertexKind::kState:
      sim_enter_single(sim, vertex);
      break;
    case VertexKind::kFinal:
      set_bit(sim.bits, vertex);
      sim.out->push_back(Step{Op::kEnterFinal, vertex, 0});
      break;
    case VertexKind::kShallowHistory:
    case VertexKind::kDeepHistory:
      // The restored configuration depends on run-time history memory; this
      // entry phase executes the generic walk instead of a static program.
      sim.dynamic = true;
      break;
    case VertexKind::kTerminate:
      std::fill(sim.bits.begin(), sim.bits.end(), 0);
      sim.out->push_back(Step{Op::kTerminate, 0, 0});
      break;
    case VertexKind::kInitial:
    case VertexKind::kChoice:
    case VertexKind::kJunction:
      break;  // Rejected by check_supported.
  }

  --sim.depth;
  if (sim.depth != 0) return;
  while (!sim.pending.empty() && !sim.dynamic) {
    const std::uint32_t composite = sim.pending.front();
    sim.pending.pop_front();
    for (const std::uint32_t region : vinfo_[composite].regions) {
      if (!sim_region_active(sim, region)) sim_default_enter(sim, region);
    }
  }
}

// --- Plan building ------------------------------------------------------------------

void CompiledMachine::build_fire_program(std::uint32_t config, std::uint32_t transition,
                                         Candidate& candidate) {
  const TransitionRow& row = tinfo_[transition];
  const ConfigRec rec = configs_[config];
  const std::uint64_t* config_bits = &config_bits_pool_[rec.bits_offset];
  candidate.first_step = static_cast<std::uint32_t>(steps_.size());

  // Exit set: active states inside the domain, innermost-first (depth
  // descending, document order ascending — members are pre-order ascending,
  // so a stable sort by depth preserves the tie-break).
  std::vector<std::uint32_t> exits;
  for (std::uint32_t i = 0; i < rec.state_count; ++i) {
    const std::uint32_t state = config_member_pool_[rec.members_offset + i];
    if (vertex_within_region(state, row.domain)) exits.push_back(state);
  }
  std::stable_sort(exits.begin(), exits.end(), [this](std::uint32_t a, std::uint32_t b) {
    return vinfo_[a].depth > vinfo_[b].depth;
  });

  // History records first: children are still in the configuration.
  for (const std::uint32_t exiting : exits) {
    if (vinfo_[exiting].regions.empty()) continue;
    for (const std::uint32_t region : vinfo_[exiting].regions) {
      // Shallow: the active direct child (last in declaration order wins,
      // matching the interpreter's overwrite loop).
      std::int32_t direct_child = -1;
      for (const std::uint32_t child : rinfo_[region].child_states) {
        if (bit_raw(config_bits, child)) direct_child = static_cast<std::int32_t>(child);
      }
      if (direct_child >= 0) {
        steps_.push_back(Step{Op::kRecordShallow, region, static_cast<std::uint32_t>(direct_child)});
      }
      // Deep: active leaves inside the region, document order.
      std::vector<std::uint32_t> in_region;
      for (std::uint32_t i = 0; i < rec.state_count; ++i) {
        const std::uint32_t state = config_member_pool_[rec.members_offset + i];
        if (vertex_within_region(state, region)) in_region.push_back(state);
      }
      std::vector<std::uint32_t> leaves;
      for (const std::uint32_t state : in_region) {
        bool has_active_child = false;
        for (const std::uint32_t other : in_region) {
          if (other == state) continue;
          for (std::int32_t parent = vinfo_[other].parent_state; parent >= 0;
               parent = vinfo_[parent].parent_state) {
            if (static_cast<std::uint32_t>(parent) == state) {
              has_active_child = true;
              break;
            }
          }
          if (has_active_child) break;
        }
        if (!has_active_child) leaves.push_back(state);
      }
      if (!leaves.empty()) {
        const std::uint32_t offset = static_cast<std::uint32_t>(leaf_pool_.size());
        leaf_pool_.push_back(static_cast<std::uint32_t>(leaves.size()));
        leaf_pool_.insert(leaf_pool_.end(), leaves.begin(), leaves.end());
        steps_.push_back(Step{Op::kRecordDeep, region, offset});
      }
    }
  }

  for (const std::uint32_t exiting : exits) steps_.push_back(Step{Op::kExitState, exiting, 0});

  // Clear final flags inside the domain: the region is being re-entered.
  std::vector<std::uint32_t> cleared_finals;
  for (std::uint32_t i = 0; i < rec.final_count; ++i) {
    const std::uint32_t final_index =
        config_member_pool_[rec.members_offset + rec.state_count + i];
    if (vertex_within_region(final_index, row.domain)) {
      cleared_finals.push_back(final_index);
      steps_.push_back(Step{Op::kClearFinal, final_index, 0});
    }
  }

  if (!row.origin->effect().empty()) steps_.push_back(Step{Op::kEffect, transition, 0});

  // Entry phase, linearized against the post-exit configuration.
  EntrySim sim;
  sim.bits.assign(config_bits, config_bits + words_);
  for (const std::uint32_t exiting : exits) clear_bit(sim.bits, exiting);
  for (const std::uint32_t final_index : cleared_finals) clear_bit(sim.bits, final_index);
  sim.out = &steps_;
  const std::size_t exit_end = steps_.size();
  sim_enter_target(sim, row.target, row.domain);
  if (sim.dynamic) {
    steps_.resize(exit_end);
    candidate.dynamic_entry = true;
    candidate.entry_target = row.target;
    candidate.entry_scope = row.domain;
  }
  candidate.step_count = static_cast<std::uint32_t>(steps_.size()) - candidate.first_step;
}

bool CompiledMachine::config_state_completed(std::uint32_t config, std::uint32_t state) const {
  const ConfigRec& rec = configs_[config];
  const std::uint64_t* config_bits = &config_bits_pool_[rec.bits_offset];
  for (const std::uint32_t region : vinfo_[state].regions) {
    bool in_final = false;
    for (const std::uint32_t final_index : rinfo_[region].finals) {
      if (bit_raw(config_bits, final_index)) {
        in_final = true;
        break;
      }
    }
    if (!in_final) return false;
  }
  return true;
}

std::uint32_t CompiledMachine::build_plan(std::uint32_t config, std::uint32_t event_id) {
  const std::string& name = event_names_[event_id];
  const ConfigRec rec = configs_[config];

  // Selection priority: depth descending, document order ascending (member
  // list is pre-order ascending; stable sort keeps the tie-break).
  std::vector<std::uint32_t> active(
      config_member_pool_.begin() + rec.members_offset,
      config_member_pool_.begin() + rec.members_offset + rec.state_count);
  std::stable_sort(active.begin(), active.end(), [this](std::uint32_t a, std::uint32_t b) {
    return vinfo_[a].depth > vinfo_[b].depth;
  });

  const std::uint32_t first_candidate = static_cast<std::uint32_t>(candidates_.size());
  for (const std::uint32_t state : active) {
    for (const std::uint32_t transition : vinfo_[state].outgoing) {
      const TransitionRow& row = tinfo_[transition];
      if (event_id != 0) {
        if (row.origin->trigger() != name) continue;
      } else {
        if (!row.completion) continue;
        if (!config_state_completed(config, state)) continue;
      }
      Candidate candidate;
      candidate.transition = transition;
      candidate.internal = row.internal;
      candidate.has_guard = row.origin->guard().fn != nullptr;
      // Conflict claim: the states this firing would exit (the active part
      // of the domain for external transitions, just the source for
      // internal ones).
      candidate.claim_offset = static_cast<std::uint32_t>(claim_pool_.size());
      claim_pool_.insert(claim_pool_.end(), words_, 0);
      {
        std::uint64_t* claim = &claim_pool_[candidate.claim_offset];
        if (row.internal) {
          claim[state >> 6] |= std::uint64_t{1} << (state & 63);
        } else {
          for (std::uint32_t i = 0; i < rec.state_count; ++i) {
            const std::uint32_t member = config_member_pool_[rec.members_offset + i];
            if (vertex_within_region(member, row.domain)) {
              claim[member >> 6] |= std::uint64_t{1} << (member & 63);
            }
          }
          claim[state >> 6] |= std::uint64_t{1} << (state & 63);
        }
      }
      if (!row.internal) build_fire_program(config, transition, candidate);
      candidates_.push_back(candidate);
    }
  }

  bool defer = false;
  if (event_id != 0) {
    for (std::uint32_t i = 0; i < rec.state_count && !defer; ++i) {
      const std::uint32_t state = config_member_pool_[rec.members_offset + i];
      if (vinfo_[state].state->defers(name)) defer = true;
    }
  }

  const std::uint32_t plan_index = static_cast<std::uint32_t>(plans_.size());
  plans_.push_back(Plan{config, event_id, first_candidate,
                        static_cast<std::uint32_t>(candidates_.size()) - first_candidate, defer});
  plan_ids_.emplace((static_cast<std::uint64_t>(config) << 32) | event_id, plan_index);
  return plan_index;
}

std::uint32_t CompiledMachine::plan_for(std::uint32_t config, std::uint32_t event_id) {
  const std::uint64_t key = (static_cast<std::uint64_t>(config) << 32) | event_id;
  auto it = plan_ids_.find(key);
  if (it != plan_ids_.end()) return it->second;
  return build_plan(config, event_id);
}

// --- AOT seeding --------------------------------------------------------------------

void CompiledMachine::build_start_program() {
  EntrySim sim;
  sim.bits.assign(words_, 0);
  sim.out = &steps_;
  start_first_step_ = static_cast<std::uint32_t>(steps_.size());
  sim_default_enter(sim, 0);
  if (sim.dynamic) {
    steps_.resize(start_first_step_);
    start_dynamic_ = true;
  }
  start_step_count_ = static_cast<std::uint32_t>(steps_.size()) - start_first_step_;
}

namespace {

void apply_steps_to_bits(const std::vector<CompiledMachine::Step>& steps, std::uint32_t first,
                         std::uint32_t count, std::vector<std::uint64_t>& bits) {
  using Op = CompiledMachine::Op;
  for (std::uint32_t i = first; i < first + count; ++i) {
    const CompiledMachine::Step& step = steps[i];
    switch (step.op) {
      case Op::kExitState:
      case Op::kClearFinal:
        bits[step.a >> 6] &= ~(std::uint64_t{1} << (step.a & 63));
        break;
      case Op::kEnterState:
      case Op::kEnterFinal:
        bits[step.a >> 6] |= std::uint64_t{1} << (step.a & 63);
        break;
      case Op::kTerminate:
        std::fill(bits.begin(), bits.end(), 0);
        break;
      case Op::kRecordShallow:
      case Op::kRecordDeep:
      case Op::kEffect:
        break;
    }
  }
}

}  // namespace

void CompiledMachine::seed_reachable_plans() {
  if (start_dynamic_) return;  // History on the default path: lazy only.

  // Intern every trigger up front; the seed alphabet is then every known
  // event id (0 is completion).
  for (const TransitionRow& row : tinfo_) {
    if (!row.completion) (void)intern_event(row.origin->trigger());
  }
  const std::uint32_t alphabet_size = static_cast<std::uint32_t>(event_names_.size());

  std::vector<std::uint64_t> start_bits(words_, 0);
  apply_steps_to_bits(steps_, start_first_step_, start_step_count_, start_bits);
  const std::uint32_t start_config = intern_config(start_bits.data());

  std::deque<std::uint32_t> worklist{start_config};
  std::unordered_set<std::uint32_t> seen{start_config};
  std::vector<std::uint64_t> claimed(words_);
  std::vector<std::uint64_t> successor(words_);

  while (!worklist.empty()) {
    if (plans_.size() >= kSeedMaxPlans || configs_.size() >= kSeedMaxConfigs) break;
    const std::uint32_t config = worklist.front();
    worklist.pop_front();
    for (std::uint32_t event_id = 0; event_id < alphabet_size; ++event_id) {
      if (plans_.size() >= kSeedMaxPlans) break;
      const std::uint32_t plan_index = plan_for(config, event_id);
      const Plan plan = plans_[plan_index];
      // Guards-open greedy selection (the maximal conflict-free set the
      // runtime would pick when every guard passes).
      std::fill(claimed.begin(), claimed.end(), 0);
      std::vector<std::uint32_t> chosen;
      bool dynamic_any = false;
      for (std::uint32_t i = 0; i < plan.candidate_count; ++i) {
        const Candidate& candidate = candidates_[plan.first_candidate + i];
        const std::uint64_t* claim = &claim_pool_[candidate.claim_offset];
        bool conflict = false;
        for (std::uint32_t w = 0; w < words_ && !conflict; ++w) {
          if (claim[w] & claimed[w]) conflict = true;
        }
        if (conflict) continue;
        for (std::uint32_t w = 0; w < words_; ++w) claimed[w] |= claim[w];
        chosen.push_back(plan.first_candidate + i);
        if (candidate.dynamic_entry) dynamic_any = true;
      }
      if (chosen.empty() || dynamic_any) continue;
      const std::uint64_t* config_bits = &config_bits_pool_[configs_[config].bits_offset];
      std::copy(config_bits, config_bits + words_, successor.begin());
      for (const std::uint32_t index : chosen) {
        const Candidate& candidate = candidates_[index];
        if (!candidate.internal) {
          apply_steps_to_bits(steps_, candidate.first_step, candidate.step_count, successor);
        }
      }
      const std::uint32_t next = intern_config(successor.data());
      if (seen.insert(next).second && configs_.size() < kSeedMaxConfigs) {
        worklist.push_back(next);
      }
    }
  }
}

std::unique_ptr<CompiledMachine> compile(const StateMachine& machine,
                                         support::DiagnosticSink& sink) {
  std::unique_ptr<CompiledMachine> compiled(new CompiledMachine(machine));
  if (!compiled->check_supported(sink)) return nullptr;
  compiled->build_start_program();
  compiled->seed_reachable_plans();
  return compiled;
}

// --- Runtime: lifecycle -------------------------------------------------------------

std::uint32_t CompiledMachine::current_config() {
  config_id_ = intern_config(bits_.data());
  return config_id_;
}

void CompiledMachine::start() {
  if (started_) return;
  started_ = true;
  ActionContext context{*this, nullptr};
  if (start_dynamic_) {
    rt_default_enter(0, context);
  } else {
    execute_steps(start_first_step_, start_step_count_, context);
  }
  run_completions();
  run_to_quiescence();
}

void CompiledMachine::post(Event event) { queue_.push_back(std::move(event)); }

bool CompiledMachine::dispatch(Event event) {
  if (terminated_) return false;
  const std::uint64_t fired_before = transitions_fired_;
  post(std::move(event));
  if (started_) run_to_quiescence();
  return transitions_fired_ != fired_before;
}

void CompiledMachine::post_error(Event event) {
  ++errors_raised_;
  queue_.push_front(std::move(event));
}

bool CompiledMachine::dispatch_error(Event event) {
  if (terminated_) return false;
  const std::uint64_t fired_before = transitions_fired_;
  post_error(std::move(event));
  if (started_) run_to_quiescence();
  const bool handled = transitions_fired_ != fired_before;
  if (!handled) ++errors_unhandled_;
  return handled;
}

bool CompiledMachine::can_react(const Event& event) {
  if (!started_ || terminated_) return false;
  if (!queue_.empty()) return true;  // Queued work runs regardless of `event`.
  // The plan is built lazily if this (configuration, event) pair was never
  // dispatched — exactly the work dispatch() would do — then cached, so
  // repeated queries are a hash probe. Guards are deliberately ignored:
  // a guarded candidate means "might react", which is the conservative
  // answer this query is allowed to give.
  const std::uint32_t plan_index = plan_for(current_config(), intern_event(event.name));
  const Plan& plan = plans_[plan_index];
  return plan.candidate_count != 0 || plan.defer_if_unfired;
}

void CompiledMachine::run_to_quiescence() {
  while (!queue_.empty()) {
    Event event = std::move(queue_.front());
    queue_.pop_front();
    ++events_processed_;
    const std::size_t fired = rtc_step(event);
    // A configuration change recalls deferred events ahead of newer queue
    // entries (UML deferral semantics, matching the interpreter).
    if (fired > 0 && !deferred_pool_.empty()) {
      for (auto it = deferred_pool_.rbegin(); it != deferred_pool_.rend(); ++it) {
        queue_.push_front(std::move(*it));
      }
      deferred_pool_.clear();
    }
  }
}

// --- Runtime: plan execution --------------------------------------------------------

std::size_t CompiledMachine::select_and_fire(std::uint32_t plan_index, ActionContext& context) {
  const Plan plan = plans_[plan_index];
  selected_scratch_.clear();
  std::fill(claimed_scratch_.begin(), claimed_scratch_.end(), 0);
  for (std::uint32_t i = 0; i < plan.candidate_count; ++i) {
    const std::uint32_t index = plan.first_candidate + i;
    const Candidate& candidate = candidates_[index];
    if (candidate.has_guard) {
      const Guard& guard = tinfo_[candidate.transition].origin->guard();
      if (guard.fn != nullptr && !guard.fn(context)) continue;
    }
    const std::uint64_t* claim = &claim_pool_[candidate.claim_offset];
    bool conflict = false;
    for (std::uint32_t w = 0; w < words_ && !conflict; ++w) {
      if (claim[w] & claimed_scratch_[w]) conflict = true;
    }
    if (conflict) continue;
    for (std::uint32_t w = 0; w < words_; ++w) claimed_scratch_[w] |= claim[w];
    selected_scratch_.push_back(index);
  }
  if (selected_scratch_.empty()) return 0;

  std::size_t fired = 0;
  for (std::size_t i = 0; i < selected_scratch_.size(); ++i) {
    const Candidate candidate = candidates_[selected_scratch_[i]];
    // An earlier firing in the same step may have exited this source.
    const std::uint32_t source = tinfo_[candidate.transition].source;
    if (vinfo_[source].kind == VertexKind::kState && !bit(bits_, source)) continue;
    execute_candidate(candidate, context);
    ++fired;
  }
  return fired;
}

std::size_t CompiledMachine::rtc_step(const Event& event) {
  const std::uint32_t event_id = intern_event(event.name);
  const std::uint32_t plan_index = plan_for(current_config(), event_id);
  ActionContext context{*this, &event};

  // Mirror the interpreter's control flow: deferral applies only when the
  // selection (not the firing) is empty.
  const std::size_t fired = select_and_fire(plan_index, context);
  if (selected_scratch_.empty()) {
    if (plans_[plan_index].defer_if_unfired) deferred_pool_.push_back(event);
    return 0;
  }
  run_completions();
  return fired;
}

void CompiledMachine::run_completions() {
  ActionContext context{*this, nullptr};
  for (int microsteps = 0;; ++microsteps) {
    if (microsteps > kMaxMicrosteps) {
      throw std::runtime_error("state machine '" + machine_->name() +
                               "': completion livelock (more than " +
                               std::to_string(kMaxMicrosteps) + " microsteps)");
    }
    const std::uint32_t plan_index = plan_for(current_config(), 0);
    (void)select_and_fire(plan_index, context);
    if (selected_scratch_.empty()) return;
  }
}

void CompiledMachine::execute_candidate(const Candidate& candidate, ActionContext& context) {
  if (candidate.internal) {
    const Behavior& effect = tinfo_[candidate.transition].origin->effect();
    if (effect.fn != nullptr) effect.fn(context);
    ++transitions_fired_;
    return;
  }
  execute_steps(candidate.first_step, candidate.step_count, context);
  if (candidate.dynamic_entry) {
    rt_enter_target(candidate.entry_target, candidate.entry_scope, context);
  }
  ++transitions_fired_;
}

void CompiledMachine::do_terminate() {
  // UML terminate: the machine ceases immediately; no exit actions run.
  terminated_ = true;
  queue_.clear();
  std::fill(bits_.begin(), bits_.end(), 0);
}

void CompiledMachine::execute_steps(std::uint32_t first, std::uint32_t count,
                                    ActionContext& context) {
  for (std::uint32_t i = first; i < first + count; ++i) {
    const Step step = steps_[i];
    switch (step.op) {
      case Op::kRecordShallow:
        shallow_slot_[step.a] = static_cast<std::int32_t>(step.b);
        break;
      case Op::kRecordDeep: {
        deep_set_[step.a] = 1;
        const std::uint32_t count_leaves = leaf_pool_[step.b];
        deep_slot_[step.a].assign(leaf_pool_.begin() + step.b + 1,
                                  leaf_pool_.begin() + step.b + 1 + count_leaves);
        break;
      }
      case Op::kExitState: {
        const State* state = vinfo_[step.a].state;
        const Behavior& exit = state->exit_behavior();
        if (!exit.empty() && exit.fn != nullptr) exit.fn(context);
        clear_bit(bits_, step.a);
        if (listener_ != nullptr) listener_(*state, false);
        break;
      }
      case Op::kClearFinal:
        clear_bit(bits_, step.a);
        break;
      case Op::kEffect: {
        const Behavior& effect = tinfo_[step.a].origin->effect();
        if (effect.fn != nullptr) effect.fn(context);
        break;
      }
      case Op::kEnterState: {
        if (bit(bits_, step.a)) break;
        set_bit(bits_, step.a);
        const State* state = vinfo_[step.a].state;
        const Behavior& entry = state->entry();
        if (!entry.empty() && entry.fn != nullptr) entry.fn(context);
        const Behavior& activity = state->do_activity();
        if (!activity.empty() && activity.fn != nullptr) activity.fn(context);
        if (listener_ != nullptr) listener_(*state, true);
        break;
      }
      case Op::kEnterFinal:
        set_bit(bits_, step.a);
        break;
      case Op::kTerminate:
        do_terminate();
        break;
    }
  }
}

// --- Runtime: generic (history) entry walk ------------------------------------------

bool CompiledMachine::rt_region_active(std::uint32_t region) const {
  for (const std::uint32_t final_index : rinfo_[region].finals) {
    if (bit(bits_, final_index)) return true;
  }
  for (const std::uint32_t child : rinfo_[region].child_states) {
    if (bit(bits_, child)) return true;
  }
  return false;
}

void CompiledMachine::rt_enter_single(std::uint32_t state, ActionContext& context) {
  if (bit(bits_, state)) return;
  set_bit(bits_, state);
  const State* model_state = vinfo_[state].state;
  const Behavior& entry = model_state->entry();
  if (!entry.empty() && entry.fn != nullptr) entry.fn(context);
  const Behavior& activity = model_state->do_activity();
  if (!activity.empty() && activity.fn != nullptr) activity.fn(context);
  if (!vinfo_[state].regions.empty()) pending_composites_.push_back(state);
  if (listener_ != nullptr) listener_(*model_state, true);
}

void CompiledMachine::rt_default_enter(std::uint32_t region, ActionContext& context) {
  const Transition* transition = rinfo_[region].initial;
  if (transition == nullptr) return;
  if (transition->effect().fn != nullptr) transition->effect().fn(context);
  rt_enter_target(tinfo_[transition_index_.at(transition)].target, region, context);
}

void CompiledMachine::rt_enter_target(std::uint32_t vertex, std::uint32_t scope,
                                      ActionContext& context) {
  ++entry_depth_;
  if (vinfo_[vertex].container != scope) {
    std::uint32_t chain[64];
    std::size_t chain_length = 0;
    for (std::int32_t ancestor = vinfo_[vertex].parent_state; ancestor >= 0;
         ancestor = vinfo_[ancestor].parent_state) {
      chain[chain_length++] = static_cast<std::uint32_t>(ancestor);
      if (vinfo_[ancestor].container == scope || chain_length == 64) break;
    }
    for (std::size_t i = chain_length; i-- > 0;) rt_enter_single(chain[i], context);
  }

  switch (vinfo_[vertex].kind) {
    case VertexKind::kState:
      rt_enter_single(vertex, context);
      break;
    case VertexKind::kFinal:
      set_bit(bits_, vertex);
      break;
    case VertexKind::kShallowHistory: {
      const std::uint32_t region = vinfo_[vertex].container;
      if (shallow_slot_[region] >= 0) {
        rt_enter_target(static_cast<std::uint32_t>(shallow_slot_[region]), region, context);
      } else if (!vertex_list_[vertex]->outgoing().empty()) {
        const Transition& fallback = *vertex_list_[vertex]->outgoing().front();
        if (fallback.effect().fn != nullptr) fallback.effect().fn(context);
        rt_enter_target(tinfo_[transition_index_.at(&fallback)].target, region, context);
      } else {
        rt_default_enter(region, context);
      }
      break;
    }
    case VertexKind::kDeepHistory: {
      const std::uint32_t region = vinfo_[vertex].container;
      if (deep_set_[region]) {
        // The slot is only written by exit-phase records, never by entry,
        // so iterating it while entering is safe.
        for (const std::uint32_t leaf : deep_slot_[region]) {
          rt_enter_target(leaf, region, context);
        }
      } else if (!vertex_list_[vertex]->outgoing().empty()) {
        const Transition& fallback = *vertex_list_[vertex]->outgoing().front();
        if (fallback.effect().fn != nullptr) fallback.effect().fn(context);
        rt_enter_target(tinfo_[transition_index_.at(&fallback)].target, region, context);
      } else {
        rt_default_enter(region, context);
      }
      break;
    }
    case VertexKind::kTerminate:
      do_terminate();
      break;
    case VertexKind::kInitial:
    case VertexKind::kChoice:
    case VertexKind::kJunction:
      break;  // Rejected by check_supported.
  }

  --entry_depth_;
  if (entry_depth_ != 0) return;
  // Sweep (outermost call only): default-enter regions of entered
  // composites that are still empty, FIFO like the interpreter.
  while (!pending_composites_.empty()) {
    const std::uint32_t composite = pending_composites_.front();
    pending_composites_.pop_front();
    for (const std::uint32_t region : vinfo_[composite].regions) {
      if (!rt_region_active(region)) rt_default_enter(region, context);
    }
  }
}

// --- Introspection ------------------------------------------------------------------

bool CompiledMachine::is_in(std::string_view state_name) const {
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t word = bits_[w];
    while (word != 0) {
      const std::uint32_t index = w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (vinfo_[index].kind == VertexKind::kState &&
          vertex_list_[index]->name() == state_name) {
        return true;
      }
    }
  }
  return false;
}

std::vector<std::string> CompiledMachine::active_leaf_names() const {
  std::vector<std::uint32_t> active;
  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t word = bits_[w];
    while (word != 0) {
      const std::uint32_t index = w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (vinfo_[index].kind == VertexKind::kState) active.push_back(index);
    }
  }
  std::vector<std::uint8_t> has_active_descendant(vinfo_.size(), 0);
  for (const std::uint32_t state : active) {
    for (std::int32_t parent = vinfo_[state].parent_state; parent >= 0;
         parent = vinfo_[parent].parent_state) {
      has_active_descendant[static_cast<std::uint32_t>(parent)] = 1;
    }
  }
  std::vector<std::string> names;
  for (const std::uint32_t state : active) {
    if (!has_active_descendant[state]) names.push_back(vertex_list_[state]->name());
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool CompiledMachine::is_in_final_state() const {
  for (const std::uint32_t final_index : rinfo_[0].finals) {
    if (bit(bits_, final_index)) return true;
  }
  return false;
}

std::int64_t CompiledMachine::variable(const std::string& name) const {
  auto it = variables_.find(name);
  return it == variables_.end() ? 0 : it->second;
}

void CompiledMachine::set_variable(const std::string& name, std::int64_t value) {
  variables_[name] = value;
}

std::size_t CompiledMachine::table_bytes() const {
  return steps_.size() * sizeof(Step) + candidates_.size() * sizeof(Candidate) +
         plans_.size() * sizeof(Plan) + tinfo_.size() * sizeof(TransitionRow) +
         claim_pool_.size() * sizeof(std::uint64_t) +
         leaf_pool_.size() * sizeof(std::uint32_t) +
         config_bits_pool_.size() * sizeof(std::uint64_t) +
         config_member_pool_.size() * sizeof(std::uint32_t) +
         config_slots_.size() * sizeof(std::uint32_t) + configs_.size() * sizeof(ConfigRec) +
         plan_ids_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
}

// --- Checkpoint / restore -----------------------------------------------------------

InstanceSnapshot CompiledMachine::capture() const {
  InstanceSnapshot snapshot;
  capture_into(snapshot);
  return snapshot;
}

void CompiledMachine::capture_into(InstanceSnapshot& snapshot) const {
  snapshot.started = started_;
  snapshot.terminated = terminated_;
  snapshot.active_states.clear();
  snapshot.active_finals.clear();
  snapshot.shallow_history.clear();
  snapshot.deep_history.clear();
  snapshot.queue.clear();
  snapshot.deferred.clear();

  for (std::uint32_t w = 0; w < words_; ++w) {
    std::uint64_t word = bits_[w];
    while (word != 0) {
      const std::uint32_t index = w * 64 + static_cast<std::uint32_t>(std::countr_zero(word));
      word &= word - 1;
      if (vinfo_[index].kind == VertexKind::kState) {
        snapshot.active_states.push_back(index);
      } else {
        snapshot.active_finals.push_back(index);
      }
    }
  }

  for (std::uint32_t region = 0; region < shallow_slot_.size(); ++region) {
    if (shallow_slot_[region] >= 0) {
      snapshot.shallow_history.emplace_back(region,
                                            static_cast<std::uint32_t>(shallow_slot_[region]));
    }
  }
  for (std::uint32_t region = 0; region < deep_set_.size(); ++region) {
    if (deep_set_[region]) snapshot.deep_history.emplace_back(region, deep_slot_[region]);
  }

  snapshot.variables.assign(variables_.begin(), variables_.end());
  std::sort(snapshot.variables.begin(), snapshot.variables.end());

  for (const Event& event : queue_) snapshot.queue.push_back(record_event(event));
  for (const Event& event : deferred_pool_) snapshot.deferred.push_back(record_event(event));

  snapshot.events_processed = events_processed_;
  snapshot.transitions_fired = transitions_fired_;
  snapshot.errors_raised = errors_raised_;
  snapshot.errors_unhandled = errors_unhandled_;
}

bool CompiledMachine::restore(const InstanceSnapshot& snapshot, support::DiagnosticSink& sink) {
  auto subject = [this] { return "statechart " + machine_->name(); };
  auto is_state = [this](std::uint32_t index) {
    return index < vinfo_.size() && vinfo_[index].kind == VertexKind::kState;
  };

  // Validate everything before touching execution state.
  for (const std::uint32_t index : snapshot.active_states) {
    if (!is_state(index)) {
      sink.error(subject(), "snapshot active-state index " + std::to_string(index) +
                                " does not name a state in this machine");
      return false;
    }
  }
  for (const std::uint32_t index : snapshot.active_finals) {
    if (index >= vinfo_.size() || vinfo_[index].kind != VertexKind::kFinal) {
      sink.error(subject(), "snapshot final-state index " + std::to_string(index) +
                                " does not name a final state in this machine");
      return false;
    }
  }
  for (const auto& [region, state] : snapshot.shallow_history) {
    if (region >= rinfo_.size() || !is_state(state)) {
      sink.error(subject(), "snapshot shallow-history entry (" + std::to_string(region) + ", " +
                                std::to_string(state) + ") is out of range");
      return false;
    }
  }
  for (const auto& [region, leaves] : snapshot.deep_history) {
    if (region >= rinfo_.size()) {
      sink.error(subject(), "snapshot deep-history region index " + std::to_string(region) +
                                " is out of range");
      return false;
    }
    for (const std::uint32_t leaf : leaves) {
      if (!is_state(leaf)) {
        sink.error(subject(), "snapshot deep-history leaf index " + std::to_string(leaf) +
                                  " does not name a state in this machine");
        return false;
      }
    }
  }
  if (snapshot.terminated && !snapshot.active_states.empty()) {
    sink.error(subject(), "snapshot is terminated but lists active states");
    return false;
  }

  // Apply.
  started_ = snapshot.started;
  terminated_ = snapshot.terminated;
  std::fill(bits_.begin(), bits_.end(), 0);
  for (const std::uint32_t index : snapshot.active_states) set_bit(bits_, index);
  for (const std::uint32_t index : snapshot.active_finals) set_bit(bits_, index);
  std::fill(shallow_slot_.begin(), shallow_slot_.end(), -1);
  for (const auto& [region, state] : snapshot.shallow_history) {
    shallow_slot_[region] = static_cast<std::int32_t>(state);
  }
  std::fill(deep_set_.begin(), deep_set_.end(), 0);
  for (auto& slot : deep_slot_) slot.clear();
  for (const auto& [region, leaves] : snapshot.deep_history) {
    deep_set_[region] = 1;
    deep_slot_[region] = leaves;
  }
  variables_.clear();
  variables_.insert(snapshot.variables.begin(), snapshot.variables.end());
  queue_.clear();
  for (const auto& record : snapshot.queue) queue_.push_back(make_event(record));
  deferred_pool_.clear();
  for (const auto& record : snapshot.deferred) deferred_pool_.push_back(make_event(record));
  pending_composites_.clear();
  entry_depth_ = 0;
  events_processed_ = snapshot.events_processed;
  transitions_fired_ = snapshot.transitions_fired;
  errors_raised_ = snapshot.errors_raised;
  errors_unhandled_ = snapshot.errors_unhandled;
  config_id_ = intern_config(bits_.data());
  return true;
}

}  // namespace umlsoc::statechart
