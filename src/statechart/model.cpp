#include "statechart/model.hpp"

namespace umlsoc::statechart {

std::string_view to_string(VertexKind kind) {
  switch (kind) {
    case VertexKind::kState:
      return "state";
    case VertexKind::kFinal:
      return "final";
    case VertexKind::kInitial:
      return "initial";
    case VertexKind::kChoice:
      return "choice";
    case VertexKind::kJunction:
      return "junction";
    case VertexKind::kShallowHistory:
      return "shallowHistory";
    case VertexKind::kDeepHistory:
      return "deepHistory";
    case VertexKind::kTerminate:
      return "terminate";
  }
  return "vertex";
}

// --- Vertex ------------------------------------------------------------------

State* Vertex::containing_state() const { return container_->owner_state(); }

std::size_t Vertex::depth() const {
  std::size_t depth = 0;
  for (State* ancestor = containing_state(); ancestor != nullptr;
       ancestor = ancestor->containing_state()) {
    ++depth;
  }
  return depth;
}

std::string Vertex::qualified_name() const {
  std::string out = name_;
  for (State* ancestor = containing_state(); ancestor != nullptr;
       ancestor = ancestor->containing_state()) {
    out = ancestor->name() + "." + out;
  }
  return container_->machine().name() + "." + out;
}

// --- State -------------------------------------------------------------------

Region& State::add_region(std::string name) {
  regions_.push_back(std::make_unique<Region>(std::move(name), container()->machine(), this));
  return *regions_.back();
}

bool State::is_within(const State& ancestor) const {
  for (const State* current = this; current != nullptr;
       current = current->containing_state()) {
    if (current == &ancestor) return true;
  }
  return false;
}

// --- Transition ----------------------------------------------------------------

std::string Transition::str() const {
  std::string out = source_->name() + " -> " + target_->name();
  if (!trigger_.empty()) out += " on " + trigger_;
  if (!guard_.text.empty()) out += " [" + guard_.text + "]";
  if (!effect_.text.empty()) out += " / " + effect_.text;
  return out;
}

// --- Region --------------------------------------------------------------------

State& Region::add_state(std::string name) {
  auto state = std::make_unique<State>(std::move(name), *this);
  State& ref = *state;
  vertices_.push_back(std::move(state));
  return ref;
}

FinalState& Region::add_final(std::string name) {
  auto final_state = std::make_unique<FinalState>(std::move(name), *this);
  FinalState& ref = *final_state;
  vertices_.push_back(std::move(final_state));
  return ref;
}

Pseudostate& Region::add_pseudostate(VertexKind kind, std::string name) {
  if (name.empty()) name = std::string(to_string(kind));
  auto pseudostate = std::make_unique<Pseudostate>(std::move(name), *this, kind);
  Pseudostate& ref = *pseudostate;
  vertices_.push_back(std::move(pseudostate));
  return ref;
}

Transition& Region::add_transition(Vertex& source, Vertex& target) {
  auto transition = std::make_unique<Transition>(source, target);
  Transition& ref = *transition;
  source.outgoing_.push_back(&ref);
  target.incoming_.push_back(&ref);
  transitions_.push_back(std::move(transition));
  return ref;
}

Pseudostate* Region::initial() const {
  for (const auto& vertex : vertices_) {
    if (vertex->vertex_kind() == VertexKind::kInitial) {
      return static_cast<Pseudostate*>(vertex.get());
    }
  }
  return nullptr;
}

Vertex* Region::find_vertex(std::string_view name) const {
  for (const auto& vertex : vertices_) {
    if (vertex->name() == name) return vertex.get();
  }
  return nullptr;
}

State* Region::find_state(std::string_view name) const {
  for (const auto& vertex : vertices_) {
    if (auto* state = dynamic_cast<State*>(vertex.get())) {
      if (state->name() == name) return state;
      for (const auto& region : state->regions()) {
        if (State* found = region->find_state(name)) return found;
      }
    }
  }
  return nullptr;
}

// --- StateMachine -----------------------------------------------------------------

StateMachine::StateMachine(std::string name) : name_(std::move(name)) {
  top_ = std::make_unique<Region>("top", *this, nullptr);
}

namespace {

void collect_states(const Region& region, std::vector<const State*>& states,
                    std::vector<const Transition*>* transitions) {
  if (transitions != nullptr) {
    for (const auto& transition : region.transitions()) transitions->push_back(transition.get());
  }
  for (const auto& vertex : region.vertices()) {
    if (const auto* state = dynamic_cast<const State*>(vertex.get())) {
      states.push_back(state);
      for (const auto& subregion : state->regions()) {
        collect_states(*subregion, states, transitions);
      }
    }
  }
}

}  // namespace

std::vector<const State*> StateMachine::all_states() const {
  std::vector<const State*> states;
  collect_states(*top_, states, nullptr);
  return states;
}

std::vector<const Transition*> StateMachine::all_transitions() const {
  std::vector<const State*> states;
  std::vector<const Transition*> transitions;
  collect_states(*top_, states, &transitions);
  return transitions;
}

namespace {

void collect_vertices(const Region& region, std::vector<const Vertex*>& vertices) {
  for (const auto& vertex : region.vertices()) {
    vertices.push_back(vertex.get());
    if (const auto* state = dynamic_cast<const State*>(vertex.get())) {
      for (const auto& subregion : state->regions()) collect_vertices(*subregion, vertices);
    }
  }
}

void collect_regions(const Region& region, std::vector<const Region*>& regions) {
  regions.push_back(&region);
  for (const auto& vertex : region.vertices()) {
    if (const auto* state = dynamic_cast<const State*>(vertex.get())) {
      for (const auto& subregion : state->regions()) collect_regions(*subregion, regions);
    }
  }
}

}  // namespace

std::vector<const Vertex*> StateMachine::all_vertices() const {
  std::vector<const Vertex*> vertices;
  collect_vertices(*top_, vertices);
  return vertices;
}

std::vector<const Region*> StateMachine::all_regions() const {
  std::vector<const Region*> regions;
  collect_regions(*top_, regions);
  return regions;
}

}  // namespace umlsoc::statechart
