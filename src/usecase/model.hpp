// Use case metamodel (paper §2: "behavioral specification in the UML at the
// highest level often starts by the identification of the use cases ...
// described in terms of involved actors").
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace umlsoc::interaction {
class Interaction;
}

namespace umlsoc::usecase {

class UseCase;

class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Actor generalization (e.g. Maintainer specializes Operator).
  void add_generalization(Actor& general) { generals_.push_back(&general); }
  [[nodiscard]] const std::vector<Actor*>& generals() const { return generals_; }

 private:
  std::string name_;
  std::vector<Actor*> generals_;
};

class UseCase {
 public:
  explicit UseCase(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  void add_actor(Actor& actor) { actors_.push_back(&actor); }
  [[nodiscard]] const std::vector<Actor*>& actors() const { return actors_; }

  void add_include(UseCase& included) { includes_.push_back(&included); }
  [[nodiscard]] const std::vector<UseCase*>& includes() const { return includes_; }

  void add_extend(UseCase& extended, std::string condition = "") {
    extends_.push_back(Extend{&extended, std::move(condition)});
  }
  struct Extend {
    UseCase* extended;
    std::string condition;
  };
  [[nodiscard]] const std::vector<Extend>& extends() const { return extends_; }

  void add_generalization(UseCase& general) { generals_.push_back(&general); }
  [[nodiscard]] const std::vector<UseCase*>& generals() const { return generals_; }

  /// Interactions that realize (scenario-cover) this use case.
  void add_scenario(const interaction::Interaction& scenario) {
    scenarios_.push_back(&scenario);
  }
  [[nodiscard]] const std::vector<const interaction::Interaction*>& scenarios() const {
    return scenarios_;
  }

 private:
  std::string name_;
  std::vector<Actor*> actors_;
  std::vector<UseCase*> includes_;
  std::vector<Extend> extends_;
  std::vector<UseCase*> generals_;
  std::vector<const interaction::Interaction*> scenarios_;
};

/// The use case view of one system.
class UseCaseModel {
 public:
  explicit UseCaseModel(std::string system_name) : system_name_(std::move(system_name)) {}
  UseCaseModel(const UseCaseModel&) = delete;
  UseCaseModel& operator=(const UseCaseModel&) = delete;

  [[nodiscard]] const std::string& system_name() const { return system_name_; }

  Actor& add_actor(std::string name);
  UseCase& add_use_case(std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<Actor>>& actors() const { return actors_; }
  [[nodiscard]] const std::vector<std::unique_ptr<UseCase>>& use_cases() const {
    return use_cases_;
  }
  [[nodiscard]] Actor* find_actor(std::string_view name) const;
  [[nodiscard]] UseCase* find_use_case(std::string_view name) const;

 private:
  std::string system_name_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::vector<std::unique_ptr<UseCase>> use_cases_;
};

/// Checks: unique names, include-graph acyclicity, every use case reachable
/// by some actor (directly or via generalization/include), extend conditions
/// non-empty (warning otherwise). Returns true when error-free.
bool validate(const UseCaseModel& model, support::DiagnosticSink& sink);

/// Scenario coverage report: use cases with no realizing interaction are
/// reported as warnings; returns the number of uncovered use cases.
std::size_t report_coverage(const UseCaseModel& model, support::DiagnosticSink& sink);

}  // namespace umlsoc::usecase
