#include "usecase/model.hpp"

#include <unordered_map>
#include <unordered_set>

namespace umlsoc::usecase {

Actor& UseCaseModel::add_actor(std::string name) {
  actors_.push_back(std::make_unique<Actor>(std::move(name)));
  return *actors_.back();
}

UseCase& UseCaseModel::add_use_case(std::string name) {
  use_cases_.push_back(std::make_unique<UseCase>(std::move(name)));
  return *use_cases_.back();
}

Actor* UseCaseModel::find_actor(std::string_view name) const {
  for (const auto& actor : actors_) {
    if (actor->name() == name) return actor.get();
  }
  return nullptr;
}

UseCase* UseCaseModel::find_use_case(std::string_view name) const {
  for (const auto& use_case : use_cases_) {
    if (use_case->name() == name) return use_case.get();
  }
  return nullptr;
}

namespace {

/// DFS cycle detection over the include edges.
bool include_cycle_from(const UseCase& start, const UseCase& current,
                        std::unordered_set<const UseCase*>& visiting) {
  if (!visiting.insert(&current).second) return &current == &start;
  for (const UseCase* included : current.includes()) {
    if (included == &start) return true;
    if (include_cycle_from(start, *included, visiting)) return true;
  }
  return false;
}

/// A use case is actor-reachable if it has direct actors, inherits them, or
/// is included/extended by a reachable use case (checked via fixpoint).
std::unordered_set<const UseCase*> actor_reachable(const UseCaseModel& model) {
  std::unordered_set<const UseCase*> reachable;
  for (const auto& use_case : model.use_cases()) {
    if (!use_case->actors().empty()) reachable.insert(use_case.get());
    for (const UseCase* general : use_case->generals()) {
      if (!general->actors().empty()) reachable.insert(use_case.get());
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& use_case : model.use_cases()) {
      if (!reachable.contains(use_case.get())) continue;
      for (const UseCase* included : use_case->includes()) {
        if (reachable.insert(included).second) changed = true;
      }
    }
    for (const auto& use_case : model.use_cases()) {
      for (const UseCase::Extend& extend : use_case->extends()) {
        if (reachable.contains(extend.extended) &&
            reachable.insert(use_case.get()).second) {
          changed = true;
        }
      }
    }
  }
  return reachable;
}

}  // namespace

bool validate(const UseCaseModel& model, support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();

  std::unordered_map<std::string, int> names;
  for (const auto& actor : model.actors()) ++names["actor:" + actor->name()];
  for (const auto& use_case : model.use_cases()) ++names["usecase:" + use_case->name()];
  for (const auto& [name, count] : names) {
    if (count > 1) {
      sink.error(model.system_name(), "duplicate name '" + name + "'");
    }
  }

  for (const auto& use_case : model.use_cases()) {
    std::unordered_set<const UseCase*> visiting;
    for (const UseCase* included : use_case->includes()) {
      if (included == use_case.get() || include_cycle_from(*use_case, *included, visiting)) {
        sink.error(use_case->name(), "include cycle detected");
        break;
      }
    }
    for (const UseCase::Extend& extend : use_case->extends()) {
      if (extend.extended == use_case.get()) {
        sink.error(use_case->name(), "use case extends itself");
      }
      if (extend.condition.empty()) {
        sink.warning(use_case->name(),
                     "extend of '" + extend.extended->name() + "' has no condition");
      }
    }
  }

  std::unordered_set<const UseCase*> reachable = actor_reachable(model);
  for (const auto& use_case : model.use_cases()) {
    if (!reachable.contains(use_case.get())) {
      sink.warning(use_case->name(), "no actor can reach this use case");
    }
  }
  return sink.error_count() == errors_before;
}

std::size_t report_coverage(const UseCaseModel& model, support::DiagnosticSink& sink) {
  std::size_t uncovered = 0;
  for (const auto& use_case : model.use_cases()) {
    if (use_case->scenarios().empty()) {
      ++uncovered;
      sink.warning(use_case->name(), "use case has no realizing interaction");
    }
  }
  return uncovered;
}

}  // namespace umlsoc::usecase
