// XMI-style interchange for behavioral models: state machines and
// activities. Guards, effects and action behaviors are persisted as their
// model-level text (`Behavior::text`, `EdgeGuard::text`); executable
// std::function bindings are a runtime concern and are re-attached by the
// consumer (same split as in UML tools, where opaque behavior bodies travel
// as strings).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "activity/model.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::xmi {

[[nodiscard]] std::string write_state_machine(const statechart::StateMachine& machine);

/// Parses a document produced by write_state_machine. Returns nullptr (with
/// diagnostics) on malformed input or unresolved vertex references.
[[nodiscard]] std::unique_ptr<statechart::StateMachine> read_state_machine(
    std::string_view text, support::DiagnosticSink& sink);

[[nodiscard]] std::string write_activity(const activity::Activity& activity);

[[nodiscard]] std::unique_ptr<activity::Activity> read_activity(
    std::string_view text, support::DiagnosticSink& sink);

}  // namespace umlsoc::xmi
