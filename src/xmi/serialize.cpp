#include "xmi/serialize.hpp"

#include <functional>
#include <unordered_map>

#include "uml/instance.hpp"
#include "uml/visitor.hpp"
#include "xmi/xml.hpp"

namespace umlsoc::xmi {

using namespace uml;

namespace {

// --- Writer ------------------------------------------------------------------

void write_member(const NamedElement& element, XmlNode& parent);

void write_common(const NamedElement& element, XmlNode& node) {
  node.set_attribute("id", element.id().str());
  node.set_attribute("name", element.name());
  if (element.visibility() != Visibility::kPublic) {
    node.set_attribute("visibility", std::string(to_string(element.visibility())));
  }
  if (!element.documentation().empty()) {
    node.set_attribute("documentation", element.documentation());
  }
  for (const StereotypeApplication& application : element.stereotype_applications()) {
    XmlNode& app_node = node.add_child("appliedStereotype");
    app_node.set_attribute("stereotype", application.stereotype->id().str());
    for (const auto& [key, value] : application.tagged_values) {
      XmlNode& tag_node = app_node.add_child("taggedValue");
      tag_node.set_attribute("key", key);
      tag_node.set_attribute("value", value);
    }
  }
}

void write_classifier_common(const Classifier& classifier, XmlNode& node) {
  if (classifier.is_abstract()) node.set_attribute("isAbstract", "true");
  for (const Classifier* general : classifier.generals()) {
    node.add_child("generalization").set_attribute("general", general->id().str());
  }
}

void write_property(const Property& property, XmlNode& parent) {
  XmlNode& node = parent.add_child("Property");
  write_common(property, node);
  if (property.type() != nullptr) node.set_attribute("type", property.type()->id().str());
  if (!(property.multiplicity() == Multiplicity{})) {
    node.set_attribute("lower", std::to_string(property.multiplicity().lower));
    node.set_attribute("upper", std::to_string(property.multiplicity().upper));
  }
  if (property.aggregation() != AggregationKind::kNone) {
    node.set_attribute("aggregation", std::string(to_string(property.aggregation())));
  }
  if (!property.default_value().empty()) {
    node.set_attribute("default", property.default_value());
  }
  if (property.is_read_only()) node.set_attribute("isReadOnly", "true");
  if (property.is_static()) node.set_attribute("isStatic", "true");
}

void write_operation(const Operation& operation, XmlNode& parent) {
  XmlNode& node = parent.add_child("Operation");
  write_common(operation, node);
  if (operation.is_abstract()) node.set_attribute("isAbstract", "true");
  if (operation.is_query()) node.set_attribute("isQuery", "true");
  if (!operation.body().empty()) node.set_attribute("body", operation.body());
  for (const auto& parameter : operation.parameters()) {
    XmlNode& parameter_node = node.add_child("Parameter");
    write_common(*parameter, parameter_node);
    if (parameter->type() != nullptr) {
      parameter_node.set_attribute("type", parameter->type()->id().str());
    }
    if (parameter->direction() != ParameterDirection::kIn) {
      parameter_node.set_attribute("direction", std::string(to_string(parameter->direction())));
    }
    if (!parameter->default_value().empty()) {
      parameter_node.set_attribute("default", parameter->default_value());
    }
  }
}

void write_port(const Port& port, XmlNode& parent) {
  XmlNode& node = parent.add_child("Port");
  write_common(port, node);
  if (port.type() != nullptr) node.set_attribute("type", port.type()->id().str());
  if (port.direction() != PortDirection::kInOut) {
    node.set_attribute("direction", std::string(to_string(port.direction())));
  }
  if (port.width() != 1) node.set_attribute("width", std::to_string(port.width()));
  if (!port.is_service()) node.set_attribute("isService", "false");
  for (const Interface* interface : port.provided()) {
    node.add_child("provides").set_attribute("interface", interface->id().str());
  }
  for (const Interface* interface : port.required()) {
    node.add_child("requires").set_attribute("interface", interface->id().str());
  }
}

void write_class_content(const Class& cls, XmlNode& node) {
  write_classifier_common(cls, node);
  if (cls.is_active()) node.set_attribute("isActive", "true");
  for (const Interface* contract : cls.interface_realizations()) {
    node.add_child("interfaceRealization").set_attribute("contract", contract->id().str());
  }
  for (const auto& property : cls.properties()) write_property(*property, node);
  for (const auto& operation : cls.operations()) write_operation(*operation, node);
  for (const auto& port : cls.ports()) write_port(*port, node);
  for (const auto& connector : cls.connectors()) {
    XmlNode& connector_node = node.add_child("Connector");
    write_common(*connector, connector_node);
    for (const ConnectorEnd& end : connector->ends()) {
      XmlNode& end_node = connector_node.add_child("end");
      if (end.part != nullptr) end_node.set_attribute("part", end.part->id().str());
      if (end.port != nullptr) end_node.set_attribute("port", end.port->id().str());
    }
  }
}

void write_member(const NamedElement& element, XmlNode& parent) {
  switch (element.kind()) {
    case ElementKind::kPackage:
    case ElementKind::kProfile:
    case ElementKind::kModel: {
      XmlNode& node = parent.add_child(std::string(to_string(element.kind())));
      write_common(element, node);
      for (const auto& member : static_cast<const Package&>(element).members()) {
        write_member(*member, node);
      }
      if (element.kind() == ElementKind::kModel) {
        for (const Profile* profile : static_cast<const Model&>(element).applied_profiles()) {
          node.add_child("profileApplication")
              .set_attribute("appliedProfile", profile->id().str());
        }
      }
      break;
    }
    case ElementKind::kStereotype: {
      const auto& stereotype = static_cast<const Stereotype&>(element);
      XmlNode& node = parent.add_child("Stereotype");
      write_common(stereotype, node);
      for (ElementKind extended : stereotype.extended_metaclasses()) {
        node.add_child("extends").set_attribute("metaclass", std::string(to_string(extended)));
      }
      for (const auto& tag : stereotype.tag_definitions()) {
        XmlNode& tag_node = node.add_child("tagDefinition");
        tag_node.set_attribute("name", tag.name);
        if (!tag.default_value.empty()) tag_node.set_attribute("default", tag.default_value);
      }
      break;
    }
    case ElementKind::kClass:
    case ElementKind::kComponent: {
      const auto& cls = static_cast<const Class&>(element);
      XmlNode& node = parent.add_child(std::string(to_string(element.kind())));
      write_common(cls, node);
      write_class_content(cls, node);
      if (element.kind() == ElementKind::kComponent) {
        const auto& component = static_cast<const Component&>(element);
        for (const Interface* interface : component.provided()) {
          node.add_child("provides").set_attribute("interface", interface->id().str());
        }
        for (const Interface* interface : component.required()) {
          node.add_child("requires").set_attribute("interface", interface->id().str());
        }
      }
      break;
    }
    case ElementKind::kInterface: {
      const auto& interface = static_cast<const Interface&>(element);
      XmlNode& node = parent.add_child("Interface");
      write_common(interface, node);
      write_classifier_common(interface, node);
      for (const auto& operation : interface.operations()) write_operation(*operation, node);
      break;
    }
    case ElementKind::kDataType: {
      XmlNode& node = parent.add_child("DataType");
      write_common(element, node);
      write_classifier_common(static_cast<const Classifier&>(element), node);
      break;
    }
    case ElementKind::kPrimitiveType: {
      const auto& primitive = static_cast<const PrimitiveType&>(element);
      XmlNode& node = parent.add_child("PrimitiveType");
      write_common(primitive, node);
      if (primitive.bit_width() != 0) {
        node.set_attribute("bitWidth", std::to_string(primitive.bit_width()));
      }
      break;
    }
    case ElementKind::kEnumeration: {
      const auto& enumeration = static_cast<const Enumeration&>(element);
      XmlNode& node = parent.add_child("Enumeration");
      write_common(enumeration, node);
      for (const std::string& literal : enumeration.literals()) {
        node.add_child("literal").set_attribute("name", literal);
      }
      break;
    }
    case ElementKind::kSignal: {
      const auto& signal = static_cast<const Signal&>(element);
      XmlNode& node = parent.add_child("Signal");
      write_common(signal, node);
      write_classifier_common(signal, node);
      for (const auto& property : signal.properties()) write_property(*property, node);
      break;
    }
    case ElementKind::kAssociation: {
      const auto& association = static_cast<const Association&>(element);
      XmlNode& node = parent.add_child("Association");
      write_common(association, node);
      for (const auto& end : association.ends()) write_property(*end, node);
      break;
    }
    case ElementKind::kDependency: {
      const auto& dependency = static_cast<const Dependency&>(element);
      XmlNode& node = parent.add_child("Dependency");
      write_common(dependency, node);
      if (dependency.client() != nullptr) {
        node.set_attribute("client", dependency.client()->id().str());
      }
      if (dependency.supplier() != nullptr) {
        node.set_attribute("supplier", dependency.supplier()->id().str());
      }
      if (dependency.dependency_kind() != DependencyKind::kUse) {
        node.set_attribute("kind", std::string(to_string(dependency.dependency_kind())));
      }
      break;
    }
    case ElementKind::kInstanceSpecification: {
      const auto& instance = static_cast<const InstanceSpecification&>(element);
      XmlNode& node = parent.add_child("InstanceSpecification");
      write_common(instance, node);
      if (instance.classifier() != nullptr) {
        node.set_attribute("classifier", instance.classifier()->id().str());
      }
      for (const Slot& slot : instance.slots()) {
        XmlNode& slot_node = node.add_child("slot");
        if (slot.defining_feature != nullptr) {
          slot_node.set_attribute("feature", slot.defining_feature->id().str());
        }
        if (!slot.value.empty()) slot_node.set_attribute("value", slot.value);
        if (slot.reference != nullptr) {
          slot_node.set_attribute("reference", slot.reference->id().str());
        }
      }
      break;
    }
    case ElementKind::kProperty:
    case ElementKind::kOperation:
    case ElementKind::kParameter:
    case ElementKind::kPort:
    case ElementKind::kConnector:
      // Features are always written by their owner; never as package members.
      break;
  }
}

// --- Reader ------------------------------------------------------------------

int to_int(const std::string& text, int fallback) {
  try {
    return std::stoi(text);
  } catch (...) {
    return fallback;
  }
}

Visibility visibility_from(std::string_view text) {
  if (text == "protected") return Visibility::kProtected;
  if (text == "private") return Visibility::kPrivate;
  if (text == "package") return Visibility::kPackage;
  return Visibility::kPublic;
}

AggregationKind aggregation_from(std::string_view text) {
  if (text == "shared") return AggregationKind::kShared;
  if (text == "composite") return AggregationKind::kComposite;
  return AggregationKind::kNone;
}

ParameterDirection parameter_direction_from(std::string_view text) {
  if (text == "inout") return ParameterDirection::kInOut;
  if (text == "out") return ParameterDirection::kOut;
  if (text == "return") return ParameterDirection::kReturn;
  return ParameterDirection::kIn;
}

PortDirection port_direction_from(std::string_view text) {
  if (text == "in") return PortDirection::kIn;
  if (text == "out") return PortDirection::kOut;
  return PortDirection::kInOut;
}

DependencyKind dependency_kind_from(std::string_view text) {
  if (text == "realize") return DependencyKind::kRealize;
  if (text == "allocate") return DependencyKind::kAllocate;
  if (text == "trace") return DependencyKind::kTrace;
  return DependencyKind::kUse;
}

std::optional<ElementKind> element_kind_from(std::string_view text) {
  static const std::unordered_map<std::string_view, ElementKind> kMap = {
      {"Model", ElementKind::kModel},
      {"Package", ElementKind::kPackage},
      {"Profile", ElementKind::kProfile},
      {"Stereotype", ElementKind::kStereotype},
      {"Class", ElementKind::kClass},
      {"Component", ElementKind::kComponent},
      {"Interface", ElementKind::kInterface},
      {"DataType", ElementKind::kDataType},
      {"PrimitiveType", ElementKind::kPrimitiveType},
      {"Enumeration", ElementKind::kEnumeration},
      {"Signal", ElementKind::kSignal},
      {"Property", ElementKind::kProperty},
      {"Operation", ElementKind::kOperation},
      {"Parameter", ElementKind::kParameter},
      {"Port", ElementKind::kPort},
      {"Association", ElementKind::kAssociation},
      {"Connector", ElementKind::kConnector},
      {"Dependency", ElementKind::kDependency},
      {"InstanceSpecification", ElementKind::kInstanceSpecification},
  };
  auto it = kMap.find(text);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

class Reader {
 public:
  explicit Reader(support::DiagnosticSink& sink) : sink_(sink) {}

  std::unique_ptr<Model> read(const XmlNode& root) {
    const XmlNode* model_node = root.name() == "Model" ? &root : root.child("Model");
    if (model_node == nullptr) {
      sink_.error("xmi", "document has no <Model> element");
      return nullptr;
    }
    auto model = std::make_unique<Model>(model_node->attribute_or("name", ""));
    register_node(*model_node, *model);
    read_common(*model_node, *model);
    for (const auto& child : model_node->children()) read_member(*model, *child);

    // Profile applications reference profiles read above.
    for (const XmlNode* application : model_node->children_named("profileApplication")) {
      std::string profile_id = application->attribute_or("appliedProfile", "");
      Model* model_ptr = model.get();
      fixups_.push_back([this, model_ptr, profile_id] {
        if (auto* profile = resolve<Profile>(profile_id, "profileApplication")) {
          model_ptr->apply_profile(*profile);
        }
      });
    }

    for (const auto& fixup : fixups_) fixup();
    if (sink_.has_errors()) return nullptr;
    return model;
  }

 private:
  void register_node(const XmlNode& node, Element& element) {
    std::string file_id = node.attribute_or("id", "");
    if (file_id.empty()) {
      sink_.error("xmi", "<" + node.name() + "> element without id");
      return;
    }
    if (!by_id_.emplace(file_id, &element).second) {
      sink_.error("xmi", "duplicate element id '" + file_id + "'");
    }
  }

  template <typename T>
  T* resolve(const std::string& file_id, const char* context) {
    if (file_id.empty()) return nullptr;
    auto it = by_id_.find(file_id);
    if (it == by_id_.end()) {
      sink_.error("xmi", std::string(context) + ": unresolved reference '" + file_id + "'");
      return nullptr;
    }
    T* typed = dynamic_cast<T*>(it->second);
    if (typed == nullptr) {
      sink_.error("xmi", std::string(context) + ": reference '" + file_id +
                             "' has unexpected metaclass " +
                             std::string(to_string(it->second->kind())));
    }
    return typed;
  }

  void read_common(const XmlNode& node, NamedElement& element) {
    element.set_visibility(visibility_from(node.attribute_or("visibility", "public")));
    element.set_documentation(node.attribute_or("documentation", ""));
    for (const XmlNode* application : node.children_named("appliedStereotype")) {
      std::string stereotype_id = application->attribute_or("stereotype", "");
      std::vector<std::pair<std::string, std::string>> tags;
      for (const XmlNode* tagged : application->children_named("taggedValue")) {
        tags.emplace_back(tagged->attribute_or("key", ""), tagged->attribute_or("value", ""));
      }
      NamedElement* target = &element;
      fixups_.push_back([this, target, stereotype_id, tags = std::move(tags)] {
        auto* stereotype = resolve<Stereotype>(stereotype_id, "appliedStereotype");
        if (stereotype == nullptr) return;
        target->apply_stereotype(*stereotype);
        for (const auto& [key, value] : tags) {
          target->set_tagged_value(*stereotype, key, value);
        }
      });
    }
  }

  void read_classifier_common(const XmlNode& node, Classifier& classifier) {
    if (node.attribute_or("isAbstract", "false") == "true") classifier.set_abstract(true);
    for (const XmlNode* generalization : node.children_named("generalization")) {
      std::string general_id = generalization->attribute_or("general", "");
      Classifier* target = &classifier;
      fixups_.push_back([this, target, general_id] {
        if (auto* general = resolve<Classifier>(general_id, "generalization")) {
          target->add_generalization(*general);
        }
      });
    }
  }

  void read_property_attrs(const XmlNode& node, Property& property) {
    read_common(node, property);
    std::string type_id = node.attribute_or("type", "");
    if (!type_id.empty()) {
      Property* target = &property;
      fixups_.push_back([this, target, type_id] {
        if (auto* type = resolve<Classifier>(type_id, "property type")) target->set_type(*type);
      });
    }
    if (node.attribute("lower") != nullptr) {
      Multiplicity multiplicity;
      multiplicity.lower = to_int(node.attribute_or("lower", "1"), 1);
      multiplicity.upper = to_int(node.attribute_or("upper", "1"), 1);
      property.set_multiplicity(multiplicity);
    }
    property.set_aggregation(aggregation_from(node.attribute_or("aggregation", "none")));
    property.set_default_value(node.attribute_or("default", ""));
    if (node.attribute_or("isReadOnly", "false") == "true") property.set_read_only(true);
    if (node.attribute_or("isStatic", "false") == "true") property.set_static(true);
  }

  void read_operation(const XmlNode& node, Operation& operation) {
    register_node(node, operation);
    read_common(node, operation);
    if (node.attribute_or("isAbstract", "false") == "true") operation.set_abstract(true);
    if (node.attribute_or("isQuery", "false") == "true") operation.set_query(true);
    operation.set_body(node.attribute_or("body", ""));
    for (const XmlNode* parameter_node : node.children_named("Parameter")) {
      Parameter& parameter = operation.add_parameter(parameter_node->attribute_or("name", ""));
      register_node(*parameter_node, parameter);
      read_common(*parameter_node, parameter);
      parameter.set_direction(
          parameter_direction_from(parameter_node->attribute_or("direction", "in")));
      parameter.set_default_value(parameter_node->attribute_or("default", ""));
      std::string type_id = parameter_node->attribute_or("type", "");
      if (!type_id.empty()) {
        Parameter* target = &parameter;
        fixups_.push_back([this, target, type_id] {
          if (auto* type = resolve<Classifier>(type_id, "parameter type")) {
            target->set_type(*type);
          }
        });
      }
    }
  }

  void read_interface_lists(const XmlNode& node, std::function<void(Interface&)> add_provided,
                            std::function<void(Interface&)> add_required) {
    for (const XmlNode* provides : node.children_named("provides")) {
      std::string interface_id = provides->attribute_or("interface", "");
      fixups_.push_back([this, add_provided, interface_id] {
        if (auto* interface = resolve<Interface>(interface_id, "provides")) {
          add_provided(*interface);
        }
      });
    }
    for (const XmlNode* requires_node : node.children_named("requires")) {
      std::string interface_id = requires_node->attribute_or("interface", "");
      fixups_.push_back([this, add_required, interface_id] {
        if (auto* interface = resolve<Interface>(interface_id, "requires")) {
          add_required(*interface);
        }
      });
    }
  }

  void read_class_content(const XmlNode& node, Class& cls) {
    read_common(node, cls);
    read_classifier_common(node, cls);
    if (node.attribute_or("isActive", "false") == "true") cls.set_active(true);
    for (const XmlNode* realization : node.children_named("interfaceRealization")) {
      std::string contract_id = realization->attribute_or("contract", "");
      Class* target = &cls;
      fixups_.push_back([this, target, contract_id] {
        if (auto* contract = resolve<Interface>(contract_id, "interfaceRealization")) {
          target->add_interface_realization(*contract);
        }
      });
    }
    for (const auto& child : node.children()) {
      if (child->name() == "Property") {
        Property& property = cls.add_property(child->attribute_or("name", ""));
        register_node(*child, property);
        read_property_attrs(*child, property);
      } else if (child->name() == "Operation") {
        read_operation(*child, cls.add_operation(child->attribute_or("name", "")));
      } else if (child->name() == "Port") {
        Port& port = cls.add_port(child->attribute_or("name", ""));
        register_node(*child, port);
        read_common(*child, port);
        port.set_direction(port_direction_from(child->attribute_or("direction", "inout")));
        port.set_width(to_int(child->attribute_or("width", "1"), 1));
        port.set_service(child->attribute_or("isService", "true") == "true");
        std::string type_id = child->attribute_or("type", "");
        if (!type_id.empty()) {
          Port* target = &port;
          fixups_.push_back([this, target, type_id] {
            if (auto* type = resolve<Classifier>(type_id, "port type")) target->set_type(*type);
          });
        }
        read_interface_lists(
            *child, [&port](Interface& i) { port.add_provided(i); },
            [&port](Interface& i) { port.add_required(i); });
      } else if (child->name() == "Connector") {
        Connector& connector = cls.add_connector(child->attribute_or("name", ""));
        register_node(*child, connector);
        read_common(*child, connector);
        for (const XmlNode* end_node : child->children_named("end")) {
          std::string part_id = end_node->attribute_or("part", "");
          std::string port_id = end_node->attribute_or("port", "");
          Connector* target = &connector;
          fixups_.push_back([this, target, part_id, port_id] {
            ConnectorEnd end;
            if (!part_id.empty()) end.part = resolve<Property>(part_id, "connector end part");
            if (!port_id.empty()) end.port = resolve<Port>(port_id, "connector end port");
            target->add_end(end);
          });
        }
      }
    }
  }

  void read_member(Package& package, const XmlNode& node) {
    std::optional<ElementKind> kind = element_kind_from(node.name());
    if (!kind.has_value()) return;  // Role nodes handled by their owner.
    std::string name = node.attribute_or("name", "");
    switch (*kind) {
      case ElementKind::kPackage: {
        Package& child = package.add_package(name);
        register_node(node, child);
        read_common(node, child);
        for (const auto& grandchild : node.children()) read_member(child, *grandchild);
        break;
      }
      case ElementKind::kProfile: {
        auto* model = dynamic_cast<Model*>(&package);
        if (model == nullptr) {
          sink_.error("xmi", "profile '" + name + "' must be owned by the model root");
          return;
        }
        Profile& profile = model->add_profile(name);
        register_node(node, profile);
        read_common(node, profile);
        for (const auto& grandchild : node.children()) read_member(profile, *grandchild);
        break;
      }
      case ElementKind::kStereotype: {
        auto* profile = dynamic_cast<Profile*>(&package);
        if (profile == nullptr) {
          sink_.error("xmi", "stereotype '" + name + "' must be owned by a profile");
          return;
        }
        Stereotype& stereotype = profile->add_stereotype(name);
        register_node(node, stereotype);
        read_common(node, stereotype);
        for (const XmlNode* extends : node.children_named("extends")) {
          std::optional<ElementKind> metaclass =
              element_kind_from(extends->attribute_or("metaclass", ""));
          if (metaclass.has_value()) stereotype.add_extended_metaclass(*metaclass);
        }
        for (const XmlNode* tag : node.children_named("tagDefinition")) {
          stereotype.add_tag_definition(tag->attribute_or("name", ""),
                                        tag->attribute_or("default", ""));
        }
        break;
      }
      case ElementKind::kClass: {
        Class& cls = package.add_class(name);
        register_node(node, cls);
        read_class_content(node, cls);
        break;
      }
      case ElementKind::kComponent: {
        Component& component = package.add_component(name);
        register_node(node, component);
        read_class_content(node, component);
        read_interface_lists(
            node, [&component](Interface& i) { component.add_provided(i); },
            [&component](Interface& i) { component.add_required(i); });
        break;
      }
      case ElementKind::kInterface: {
        Interface& interface = package.add_interface(name);
        register_node(node, interface);
        read_common(node, interface);
        read_classifier_common(node, interface);
        for (const XmlNode* operation_node : node.children_named("Operation")) {
          read_operation(*operation_node, interface.add_operation(
                                              operation_node->attribute_or("name", "")));
        }
        break;
      }
      case ElementKind::kDataType: {
        DataType& data_type = package.add_data_type(name);
        register_node(node, data_type);
        read_common(node, data_type);
        read_classifier_common(node, data_type);
        break;
      }
      case ElementKind::kPrimitiveType: {
        PrimitiveType& primitive =
            package.add_primitive_type(name, to_int(node.attribute_or("bitWidth", "0"), 0));
        register_node(node, primitive);
        read_common(node, primitive);
        break;
      }
      case ElementKind::kEnumeration: {
        Enumeration& enumeration = package.add_enumeration(name);
        register_node(node, enumeration);
        read_common(node, enumeration);
        for (const XmlNode* literal : node.children_named("literal")) {
          enumeration.add_literal(literal->attribute_or("name", ""));
        }
        break;
      }
      case ElementKind::kSignal: {
        Signal& signal = package.add_signal(name);
        register_node(node, signal);
        read_common(node, signal);
        read_classifier_common(node, signal);
        for (const XmlNode* property_node : node.children_named("Property")) {
          Property& property = signal.add_property(property_node->attribute_or("name", ""));
          register_node(*property_node, property);
          read_property_attrs(*property_node, property);
        }
        break;
      }
      case ElementKind::kAssociation: {
        Association& association = package.add_association(name);
        register_node(node, association);
        read_common(node, association);
        for (const XmlNode* end_node : node.children_named("Property")) {
          Property& end = association.add_end(end_node->attribute_or("name", ""));
          register_node(*end_node, end);
          read_property_attrs(*end_node, end);
        }
        break;
      }
      case ElementKind::kDependency: {
        Dependency& dependency = package.add_dependency(name);
        register_node(node, dependency);
        read_common(node, dependency);
        dependency.set_dependency_kind(dependency_kind_from(node.attribute_or("kind", "use")));
        std::string client_id = node.attribute_or("client", "");
        std::string supplier_id = node.attribute_or("supplier", "");
        Dependency* target = &dependency;
        fixups_.push_back([this, target, client_id, supplier_id] {
          if (auto* client = resolve<NamedElement>(client_id, "dependency client")) {
            target->set_client(*client);
          }
          if (auto* supplier = resolve<NamedElement>(supplier_id, "dependency supplier")) {
            target->set_supplier(*supplier);
          }
        });
        break;
      }
      case ElementKind::kInstanceSpecification: {
        InstanceSpecification& instance = package.add_instance(name);
        register_node(node, instance);
        read_common(node, instance);
        std::string classifier_id = node.attribute_or("classifier", "");
        InstanceSpecification* target = &instance;
        if (!classifier_id.empty()) {
          fixups_.push_back([this, target, classifier_id] {
            if (auto* classifier = resolve<Classifier>(classifier_id, "instance classifier")) {
              target->set_classifier(*classifier);
            }
          });
        }
        for (const XmlNode* slot_node : node.children_named("slot")) {
          std::string feature_id = slot_node->attribute_or("feature", "");
          std::string value = slot_node->attribute_or("value", "");
          std::string reference_id = slot_node->attribute_or("reference", "");
          fixups_.push_back([this, target, feature_id, value, reference_id] {
            auto* feature = resolve<Property>(feature_id, "slot feature");
            if (feature == nullptr) return;
            if (!reference_id.empty()) {
              if (auto* reference =
                      resolve<InstanceSpecification>(reference_id, "slot reference")) {
                target->set_slot_reference(*feature, *reference);
              }
            } else {
              target->set_slot(*feature, value);
            }
          });
        }
        break;
      }
      case ElementKind::kModel:
      case ElementKind::kProperty:
      case ElementKind::kOperation:
      case ElementKind::kParameter:
      case ElementKind::kPort:
      case ElementKind::kConnector:
        sink_.error("xmi", "<" + node.name() + "> cannot be a package member");
        break;
    }
  }

  support::DiagnosticSink& sink_;
  std::unordered_map<std::string, Element*> by_id_;
  std::vector<std::function<void()>> fixups_;
};

}  // namespace

std::string write_model(const Model& model) {
  XmlNode root("XMI");
  root.set_attribute("version", "2.1");
  root.set_attribute("xmlns:xmi", "http://schema.omg.org/spec/XMI/2.1");
  write_member(model, root);
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += root.str();
  return out;
}

std::unique_ptr<Model> read_model(std::string_view text, support::DiagnosticSink& sink) {
  std::unique_ptr<XmlNode> document = parse_xml(text, sink);
  if (document == nullptr) return nullptr;
  Reader reader(sink);
  return reader.read(*document);
}

}  // namespace umlsoc::xmi
