// Minimal XML document model, writer and parser — just enough for XMI-style
// model interchange (elements, attributes, text, comments, declarations,
// the five predefined entities). Not a general-purpose XML library.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/diagnostics.hpp"

namespace umlsoc::xmi {

class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Attributes keep insertion order so output is deterministic.
  void set_attribute(std::string key, std::string value);
  [[nodiscard]] const std::string* attribute(std::string_view key) const;
  [[nodiscard]] std::string attribute_or(std::string_view key, std::string fallback) const;
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }

  XmlNode& add_child(std::string name);
  void adopt_child(std::unique_ptr<XmlNode> child) { children_.push_back(std::move(child)); }
  [[nodiscard]] const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  /// First child with the given element name, or nullptr.
  [[nodiscard]] const XmlNode* child(std::string_view name) const;
  [[nodiscard]] std::vector<const XmlNode*> children_named(std::string_view name) const;

  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  /// Serializes this subtree as indented XML (two-space indent).
  [[nodiscard]] std::string str(int indent_level = 0) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  std::string text_;
};

/// Parser limits. The depth bound turns adversarial deeply-nested input
/// (<a><a><a>... tens of thousands deep) into a diagnostic instead of a
/// stack overflow: parse_element recurses once per nesting level.
struct XmlParseOptions {
  std::size_t max_depth = 256;
};

/// Parses one XML document; returns nullptr and reports through `sink` on
/// malformed input. A leading `<?xml ...?>` declaration and comments are
/// accepted and skipped; element content may contain CDATA sections and
/// numeric character references (&#38; / &#x26;) alongside the five
/// predefined entities. Diagnostics carry "xml:line L:col C" subjects.
[[nodiscard]] std::unique_ptr<XmlNode> parse_xml(std::string_view input,
                                                 support::DiagnosticSink& sink);

/// Same, with explicit limits.
[[nodiscard]] std::unique_ptr<XmlNode> parse_xml(std::string_view input,
                                                 support::DiagnosticSink& sink,
                                                 const XmlParseOptions& options);

}  // namespace umlsoc::xmi
