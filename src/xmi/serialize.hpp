// XMI-style model interchange: Model -> XML text -> Model.
//
// The dialect is self-contained (see DESIGN.md substitution table): element
// tags are metaclass names, cross-references use the producer's element ids,
// and consumers re-assign fresh ids while preserving structure. Round-trips
// are structurally lossless (uml::structurally_equal).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"
#include "uml/package.hpp"

namespace umlsoc::xmi {

/// Serializes the whole model as an XMI-style XML document.
[[nodiscard]] std::string write_model(const uml::Model& model);

/// Parses a document produced by write_model. Returns nullptr on malformed
/// input or unresolvable references; problems are reported through `sink`.
[[nodiscard]] std::unique_ptr<uml::Model> read_model(std::string_view text,
                                                     support::DiagnosticSink& sink);

}  // namespace umlsoc::xmi
