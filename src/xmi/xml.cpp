#include "xmi/xml.hpp"

#include <cctype>
#include <cstdint>

#include "support/strings.hpp"

namespace umlsoc::xmi {

// --- XmlNode -----------------------------------------------------------------

void XmlNode::set_attribute(std::string key, std::string value) {
  for (auto& [existing_key, existing_value] : attributes_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

const std::string* XmlNode::attribute(std::string_view key) const {
  for (const auto& [existing_key, value] : attributes_) {
    if (existing_key == key) return &value;
  }
  return nullptr;
}

std::string XmlNode::attribute_or(std::string_view key, std::string fallback) const {
  const std::string* value = attribute(key);
  return value != nullptr ? *value : std::move(fallback);
}

XmlNode& XmlNode::add_child(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  return *children_.back();
}

const XmlNode* XmlNode::child(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::string XmlNode::str(int indent_level) const {
  const std::string pad(static_cast<std::size_t>(indent_level) * 2, ' ');
  std::string out = pad + "<" + name_;
  for (const auto& [key, value] : attributes_) {
    out += " " + key + "=\"" + support::xml_escape(value) + "\"";
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return out;
  }
  out += ">";
  if (!text_.empty()) out += support::xml_escape(text_);
  if (!children_.empty()) {
    out += "\n";
    for (const auto& child : children_) out += child->str(indent_level + 1);
    out += pad;
  }
  out += "</" + name_ + ">\n";
  return out;
}

// --- Parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view input, support::DiagnosticSink& sink, const XmlParseOptions& options)
      : input_(input), sink_(sink), options_(options) {}

  std::unique_ptr<XmlNode> parse_document() {
    const std::size_t errors_before = sink_.error_count();
    skip_prolog();
    std::unique_ptr<XmlNode> root = parse_element();
    if (root == nullptr) return nullptr;
    skip_whitespace_and_comments();
    if (!at_end()) {
      error("trailing content after root element");
      return nullptr;
    }
    // Recovered-from problems (e.g. unknown entities) still fail the parse.
    if (sink_.error_count() != errors_before) return nullptr;
    return root;
  }

 private:
  [[nodiscard]] bool at_end() const { return position_ >= input_.size(); }
  [[nodiscard]] char peek() const { return input_[position_]; }
  char advance() { return input_[position_++]; }

  [[nodiscard]] bool match(std::string_view expected) {
    if (input_.substr(position_, expected.size()) != expected) return false;
    position_ += expected.size();
    return true;
  }

  void error(std::string message) {
    // Incremental line/column: the parse position only moves forward, so each
    // error continues the newline scan from where the previous one stopped
    // instead of rescanning from the start (which made a pathological input
    // with many recovered errors quadratic in document size).
    const std::size_t stop = std::min(position_, input_.size());
    for (; scanned_ < stop; ++scanned_) {
      if (input_[scanned_] == '\n') {
        ++line_;
        line_start_ = scanned_ + 1;
      }
    }
    const std::size_t column = stop - line_start_ + 1;
    sink_.error("xml:line " + std::to_string(line_) + ":col " + std::to_string(column),
                std::move(message));
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())) != 0) ++position_;
  }

  void skip_whitespace_and_comments() {
    for (;;) {
      skip_whitespace();
      if (input_.substr(position_, 4) == "<!--") {
        std::size_t end = input_.find("-->", position_ + 4);
        if (end == std::string_view::npos) {
          error("unterminated comment");
          position_ = input_.size();
          return;
        }
        position_ = end + 3;
      } else {
        return;
      }
    }
  }

  void skip_prolog() {
    skip_whitespace();
    if (match("<?xml")) {
      std::size_t end = input_.find("?>", position_);
      if (end == std::string_view::npos) {
        error("unterminated XML declaration");
        position_ = input_.size();
        return;
      }
      position_ = end + 2;
    }
    skip_whitespace_and_comments();
  }

  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '-' ||
           c == ':' || c == '.';
  }

  std::string parse_name() {
    std::string name;
    while (!at_end() && is_name_char(peek())) name += advance();
    return name;
  }

  /// Decodes a numeric character reference body ("#38" or "#x26") and
  /// appends its UTF-8 encoding. False on malformed digits or a code point
  /// XML forbids (NUL, surrogates, beyond U+10FFFF).
  static bool append_char_reference(std::string_view body, std::string& out) {
    std::uint32_t code = 0;
    std::string_view digits = body.substr(1);  // Past '#'.
    int base = 10;
    if (!digits.empty() && (digits.front() == 'x' || digits.front() == 'X')) {
      base = 16;
      digits.remove_prefix(1);
    }
    if (digits.empty()) return false;
    for (char c : digits) {
      std::uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (base == 16 && c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (base == 16 && c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
      code = code * static_cast<std::uint32_t>(base) + digit;
      if (code > 0x10FFFF) return false;
    }
    if (code == 0 || (code >= 0xD800 && code <= 0xDFFF)) return false;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return true;
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      std::size_t semicolon = raw.find(';', i);
      std::string_view entity =
          semicolon == std::string_view::npos ? raw.substr(i + 1) : raw.substr(i + 1, semicolon - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity.front() == '#' &&
                 semicolon != std::string_view::npos) {
        if (!append_char_reference(entity, out)) {
          error("invalid character reference '&" + std::string(entity) + ";'");
          out += '&';
          continue;
        }
      } else {
        error("unknown entity '&" + std::string(entity) + ";'");
        out += '&';
        continue;
      }
      i = semicolon == std::string_view::npos ? raw.size() : semicolon;
    }
    return out;
  }

  bool parse_attributes(XmlNode& node) {
    for (;;) {
      skip_whitespace();
      if (at_end()) {
        error("unexpected end of input in element tag");
        return false;
      }
      if (peek() == '>' || peek() == '/' || peek() == '?') return true;
      std::string key = parse_name();
      if (key.empty()) {
        error("expected attribute name");
        return false;
      }
      skip_whitespace();
      if (at_end() || advance() != '=') {
        error("expected '=' after attribute name '" + key + "'");
        return false;
      }
      skip_whitespace();
      if (at_end() || (peek() != '"' && peek() != '\'')) {
        error("expected quoted attribute value for '" + key + "'");
        return false;
      }
      char quote = advance();
      std::size_t start = position_;
      while (!at_end() && peek() != quote) ++position_;
      if (at_end()) {
        error("unterminated attribute value for '" + key + "'");
        return false;
      }
      std::string value = decode_entities(input_.substr(start, position_ - start));
      advance();  // Closing quote.
      node.set_attribute(std::move(key), std::move(value));
    }
  }

  std::unique_ptr<XmlNode> parse_element() {
    skip_whitespace_and_comments();
    if (at_end() || peek() != '<') {
      error("expected element start '<'");
      return nullptr;
    }
    // parse_element recurses once per nesting level; the bound keeps
    // adversarial <a><a><a>... input from overflowing the call stack.
    if (depth_ >= options_.max_depth) {
      error("element nesting exceeds maximum depth " + std::to_string(options_.max_depth));
      return nullptr;
    }
    ++depth_;
    std::unique_ptr<XmlNode> node = parse_element_body();
    --depth_;
    return node;
  }

  std::unique_ptr<XmlNode> parse_element_body() {
    advance();  // '<' (checked by parse_element).
    std::string name = parse_name();
    if (name.empty()) {
      error("expected element name");
      return nullptr;
    }
    auto node = std::make_unique<XmlNode>(name);
    if (!parse_attributes(*node)) return nullptr;

    if (match("/>")) return node;
    if (!match(">")) {
      error("expected '>' to close tag <" + name + ">");
      return nullptr;
    }

    // Content: interleaved text / child elements / comments / CDATA. Markup
    // text is decoded per chunk so CDATA content can be appended verbatim
    // (a literal "&amp;" inside CDATA stays "&amp;").
    std::string text;
    std::string raw;
    const auto flush_raw = [&] {
      if (raw.empty()) return;
      text += decode_entities(raw);
      raw.clear();
    };
    for (;;) {
      if (at_end()) {
        error("unterminated element <" + name + ">");
        return nullptr;
      }
      if (peek() == '<') {
        if (input_.substr(position_, 4) == "<!--") {
          skip_whitespace_and_comments();
          continue;
        }
        if (input_.substr(position_, 9) == "<![CDATA[") {
          const std::size_t end = input_.find("]]>", position_ + 9);
          if (end == std::string_view::npos) {
            error("unterminated CDATA section");
            return nullptr;
          }
          flush_raw();
          text += input_.substr(position_ + 9, end - (position_ + 9));
          position_ = end + 3;
          continue;
        }
        if (input_.substr(position_, 2) == "</") {
          position_ += 2;
          std::string closing = parse_name();
          skip_whitespace();
          if (closing != name) {
            error("mismatched closing tag </" + closing + "> for <" + name + ">");
            return nullptr;
          }
          if (at_end() || advance() != '>') {
            error("expected '>' after closing tag");
            return nullptr;
          }
          flush_raw();
          node->set_text(std::string(support::trim(text)));
          return node;
        }
        std::unique_ptr<XmlNode> child = parse_element();
        if (child == nullptr) return nullptr;
        node->adopt_child(std::move(child));
      } else {
        raw += advance();
      }
    }
  }

  std::string_view input_;
  std::size_t position_ = 0;
  support::DiagnosticSink& sink_;
  XmlParseOptions options_;
  std::size_t depth_ = 0;
  // error() line/column scan cache (position_ is monotone).
  std::size_t scanned_ = 0;
  std::size_t line_ = 1;
  std::size_t line_start_ = 0;
};

}  // namespace

std::unique_ptr<XmlNode> parse_xml(std::string_view input, support::DiagnosticSink& sink) {
  return parse_xml(input, sink, XmlParseOptions{});
}

std::unique_ptr<XmlNode> parse_xml(std::string_view input, support::DiagnosticSink& sink,
                                   const XmlParseOptions& options) {
  Parser parser(input, sink, options);
  return parser.parse_document();
}

}  // namespace umlsoc::xmi
