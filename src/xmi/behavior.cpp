#include "xmi/behavior.hpp"

#include <unordered_map>

#include "xmi/xml.hpp"

namespace umlsoc::xmi {

namespace {

using statechart::Region;
using statechart::StateMachine;
using statechart::Transition;
using statechart::Vertex;
using statechart::VertexKind;

// --- State machine writer -------------------------------------------------------

class MachineWriter {
 public:
  std::string write(const StateMachine& machine) {
    XmlNode root("StateMachine");
    root.set_attribute("name", machine.name());
    assign_ids(machine.top());
    write_region(machine.top(), root);
    return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.str();
  }

 private:
  void assign_ids(const Region& region) {
    for (const auto& vertex : region.vertices()) {
      ids_[vertex.get()] = ids_.size();
      if (const auto* state = dynamic_cast<const statechart::State*>(vertex.get())) {
        for (const auto& subregion : state->regions()) assign_ids(*subregion);
      }
    }
  }

  void write_region(const Region& region, XmlNode& parent) {
    XmlNode& node = parent.add_child("Region");
    node.set_attribute("name", region.name());
    for (const auto& vertex : region.vertices()) write_vertex(*vertex, node);
    for (const auto& transition : region.transitions()) {
      XmlNode& edge = node.add_child("Transition");
      edge.set_attribute("source", std::to_string(ids_.at(&transition->source())));
      edge.set_attribute("target", std::to_string(ids_.at(&transition->target())));
      if (!transition->trigger().empty()) edge.set_attribute("trigger", transition->trigger());
      if (!transition->guard().text.empty()) {
        edge.set_attribute("guard", transition->guard().text);
      }
      if (!transition->effect().text.empty()) {
        edge.set_attribute("effect", transition->effect().text);
      }
      if (transition->is_internal()) edge.set_attribute("kind", "internal");
    }
  }

  void write_vertex(const Vertex& vertex, XmlNode& parent) {
    switch (vertex.vertex_kind()) {
      case VertexKind::kState: {
        const auto& state = static_cast<const statechart::State&>(vertex);
        XmlNode& node = parent.add_child("State");
        node.set_attribute("id", std::to_string(ids_.at(&vertex)));
        node.set_attribute("name", state.name());
        if (!state.entry().text.empty()) node.set_attribute("entry", state.entry().text);
        if (!state.exit_behavior().text.empty()) {
          node.set_attribute("exit", state.exit_behavior().text);
        }
        if (!state.do_activity().text.empty()) {
          node.set_attribute("doActivity", state.do_activity().text);
        }
        if (!state.deferred().empty()) {
          std::string deferred;
          for (const std::string& event : state.deferred()) {
            if (!deferred.empty()) deferred += ',';
            deferred += event;
          }
          node.set_attribute("defer", deferred);
        }
        for (const auto& region : state.regions()) write_region(*region, node);
        break;
      }
      case VertexKind::kFinal: {
        XmlNode& node = parent.add_child("Final");
        node.set_attribute("id", std::to_string(ids_.at(&vertex)));
        node.set_attribute("name", vertex.name());
        break;
      }
      default: {
        XmlNode& node = parent.add_child("Pseudostate");
        node.set_attribute("id", std::to_string(ids_.at(&vertex)));
        node.set_attribute("name", vertex.name());
        node.set_attribute("kind", std::string(to_string(vertex.vertex_kind())));
        break;
      }
    }
  }

  std::unordered_map<const Vertex*, std::size_t> ids_;
};

VertexKind pseudostate_kind_from(std::string_view text) {
  if (text == "initial") return VertexKind::kInitial;
  if (text == "choice") return VertexKind::kChoice;
  if (text == "junction") return VertexKind::kJunction;
  if (text == "shallowHistory") return VertexKind::kShallowHistory;
  if (text == "deepHistory") return VertexKind::kDeepHistory;
  if (text == "terminate") return VertexKind::kTerminate;
  return VertexKind::kInitial;
}

// --- State machine reader -----------------------------------------------------------

class MachineReader {
 public:
  explicit MachineReader(support::DiagnosticSink& sink) : sink_(sink) {}

  std::unique_ptr<StateMachine> read(const XmlNode& root) {
    if (root.name() != "StateMachine") {
      sink_.error("xmi", "document root is not <StateMachine>");
      return nullptr;
    }
    auto machine = std::make_unique<StateMachine>(root.attribute_or("name", ""));
    const XmlNode* top = root.child("Region");
    if (top == nullptr) {
      sink_.error("xmi", "state machine has no top region");
      return nullptr;
    }
    read_region(*top, machine->top());
    for (const auto& [node, region] : pending_transitions_) {
      resolve_transition(*node, *region);
    }
    if (sink_.has_errors()) return nullptr;
    return machine;
  }

 private:
  void read_region(const XmlNode& node, Region& region) {
    for (const auto& child : node.children()) {
      if (child->name() == "State") {
        statechart::State& state = region.add_state(child->attribute_or("name", ""));
        register_vertex(*child, state);
        if (const std::string* entry = child->attribute("entry")) {
          state.set_entry(statechart::Behavior{*entry, nullptr});
        }
        if (const std::string* exit = child->attribute("exit")) {
          state.set_exit(statechart::Behavior{*exit, nullptr});
        }
        if (const std::string* do_activity = child->attribute("doActivity")) {
          state.set_do_activity(statechart::Behavior{*do_activity, nullptr});
        }
        if (const std::string* deferred = child->attribute("defer")) {
          std::size_t start = 0;
          while (start <= deferred->size()) {
            std::size_t comma = deferred->find(',', start);
            if (comma == std::string::npos) comma = deferred->size();
            if (comma > start) state.add_deferred(deferred->substr(start, comma - start));
            start = comma + 1;
          }
        }
        for (const XmlNode* subregion : child->children_named("Region")) {
          read_region(*subregion, state.add_region(subregion->attribute_or("name", "")));
        }
      } else if (child->name() == "Final") {
        register_vertex(*child, region.add_final(child->attribute_or("name", "final")));
      } else if (child->name() == "Pseudostate") {
        register_vertex(*child,
                        region.add_pseudostate(
                            pseudostate_kind_from(child->attribute_or("kind", "initial")),
                            child->attribute_or("name", "")));
      } else if (child->name() == "Transition") {
        pending_transitions_.emplace_back(child.get(), &region);
      }
    }
  }

  void register_vertex(const XmlNode& node, Vertex& vertex) {
    const std::string id = node.attribute_or("id", "");
    if (id.empty()) {
      sink_.error("xmi", "vertex '" + vertex.name() + "' has no id");
      return;
    }
    if (!vertices_.emplace(id, &vertex).second) {
      sink_.error("xmi", "duplicate vertex id '" + id + "'");
    }
  }

  void resolve_transition(const XmlNode& node, Region& region) {
    Vertex* source = resolve(node.attribute_or("source", ""));
    Vertex* target = resolve(node.attribute_or("target", ""));
    if (source == nullptr || target == nullptr) return;
    Transition& transition = region.add_transition(*source, *target);
    transition.set_trigger(node.attribute_or("trigger", ""));
    if (const std::string* guard = node.attribute("guard")) {
      transition.set_guard(statechart::Guard{*guard, nullptr});
    }
    if (const std::string* effect = node.attribute("effect")) {
      transition.set_effect(statechart::Behavior{*effect, nullptr});
    }
    if (node.attribute_or("kind", "") == "internal") transition.set_internal(true);
  }

  Vertex* resolve(const std::string& id) {
    auto it = vertices_.find(id);
    if (it == vertices_.end()) {
      sink_.error("xmi", "unresolved vertex reference '" + id + "'");
      return nullptr;
    }
    return it->second;
  }

  support::DiagnosticSink& sink_;
  std::unordered_map<std::string, Vertex*> vertices_;
  std::vector<std::pair<const XmlNode*, Region*>> pending_transitions_;
};

}  // namespace

std::string write_state_machine(const statechart::StateMachine& machine) {
  return MachineWriter().write(machine);
}

std::unique_ptr<statechart::StateMachine> read_state_machine(std::string_view text,
                                                             support::DiagnosticSink& sink) {
  std::unique_ptr<XmlNode> document = parse_xml(text, sink);
  if (document == nullptr) return nullptr;
  return MachineReader(sink).read(*document);
}

// --- Activities ----------------------------------------------------------------------

namespace {

activity::NodeKind activity_kind_from(std::string_view text) {
  using activity::NodeKind;
  if (text == "initial") return NodeKind::kInitial;
  if (text == "activityFinal") return NodeKind::kActivityFinal;
  if (text == "flowFinal") return NodeKind::kFlowFinal;
  if (text == "decision") return NodeKind::kDecision;
  if (text == "merge") return NodeKind::kMerge;
  if (text == "fork") return NodeKind::kFork;
  if (text == "join") return NodeKind::kJoin;
  if (text == "buffer") return NodeKind::kBuffer;
  return NodeKind::kAction;
}

}  // namespace

std::string write_activity(const activity::Activity& activity) {
  XmlNode root("Activity");
  root.set_attribute("name", activity.name());
  for (const auto& node : activity.nodes()) {
    XmlNode& child = root.add_child("Node");
    child.set_attribute("name", node->name());
    child.set_attribute("kind", std::string(to_string(node->node_kind())));
    if (node->node_kind() == activity::NodeKind::kAction) {
      child.set_attribute("swLatency", std::to_string(node->sw_latency()));
      child.set_attribute("hwLatency", std::to_string(node->hw_latency()));
      child.set_attribute("hwArea", std::to_string(node->hw_area()));
      if (!node->script().empty()) child.set_attribute("script", node->script());
    }
  }
  for (const auto& edge : activity.edges()) {
    XmlNode& child = root.add_child("Edge");
    child.set_attribute("source", edge->source().name());
    child.set_attribute("target", edge->target().name());
    if (edge->is_object_flow()) child.set_attribute("objectFlow", "true");
    if (!edge->guard().text.empty()) child.set_attribute("guard", edge->guard().text);
    if (edge->weight() != 1) child.set_attribute("weight", std::to_string(edge->weight()));
  }
  return "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" + root.str();
}

std::unique_ptr<activity::Activity> read_activity(std::string_view text,
                                                  support::DiagnosticSink& sink) {
  std::unique_ptr<XmlNode> document = parse_xml(text, sink);
  if (document == nullptr) return nullptr;
  if (document->name() != "Activity") {
    sink.error("xmi", "document root is not <Activity>");
    return nullptr;
  }
  auto result = std::make_unique<activity::Activity>(document->attribute_or("name", ""));

  auto to_double = [](const std::string& value, double fallback) {
    try {
      return std::stod(value);
    } catch (...) {
      return fallback;
    }
  };
  for (const XmlNode* node : document->children_named("Node")) {
    activity::ActivityNode& created = result->add_node(
        activity_kind_from(node->attribute_or("kind", "action")),
        node->attribute_or("name", ""));
    created.set_sw_latency(to_double(node->attribute_or("swLatency", "1"), 1.0));
    created.set_hw_latency(to_double(node->attribute_or("hwLatency", "1"), 1.0));
    created.set_hw_area(to_double(node->attribute_or("hwArea", "1"), 1.0));
    created.set_script(node->attribute_or("script", ""));
  }
  for (const XmlNode* edge : document->children_named("Edge")) {
    activity::ActivityNode* source = result->find_node(edge->attribute_or("source", ""));
    activity::ActivityNode* target = result->find_node(edge->attribute_or("target", ""));
    if (source == nullptr || target == nullptr) {
      sink.error("xmi", "edge references unknown node ('" + edge->attribute_or("source", "") +
                            "' -> '" + edge->attribute_or("target", "") + "')");
      continue;
    }
    activity::ActivityEdge& created =
        result->add_edge(*source, *target, edge->attribute_or("objectFlow", "false") == "true");
    if (const std::string* guard = edge->attribute("guard")) {
      created.set_guard(activity::EdgeGuard{*guard, nullptr});
    }
    int weight = 1;
    try {
      weight = std::stoi(edge->attribute_or("weight", "1"));
    } catch (...) {
    }
    created.set_weight(weight);
  }
  if (sink.has_errors()) return nullptr;
  return result;
}

}  // namespace umlsoc::xmi
