// Tokenizer for the Action Specification Language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace umlsoc::asl {

enum class TokenKind {
  kEnd,
  kInt,
  kString,
  kIdent,
  // Keywords.
  kIf, kElse, kWhile, kReturn, kSend, kSelf, kTrue, kFalse, kAnd, kOr, kNot,
  // Punctuation / operators.
  kAssign,      // :=
  kSemicolon, kComma, kDot,
  kLParen, kRParen, kLBrace, kRBrace,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAmpAmp, kPipePipe, kBang,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // Identifier / string contents.
  std::int64_t int_value = 0;
  int line = 1;
};

/// Tokenizes `source`; on lexical errors reports through `sink` and returns
/// the tokens recognized so far (terminated by kEnd).
[[nodiscard]] std::vector<Token> tokenize(std::string_view source,
                                          support::DiagnosticSink& sink);

}  // namespace umlsoc::asl
