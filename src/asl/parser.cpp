#include "asl/parser.hpp"

#include "asl/lexer.hpp"

namespace umlsoc::asl {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, support::DiagnosticSink& sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  std::optional<Program> parse_program() {
    Program program;
    while (!check(TokenKind::kEnd)) {
      StmtPtr statement = parse_statement();
      if (statement == nullptr) return std::nullopt;
      program.statements.push_back(std::move(statement));
    }
    return program;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[position_]; }
  /// Clamped lookahead; the token stream always ends with kEnd.
  [[nodiscard]] const Token& look(std::size_t offset) const {
    std::size_t index = position_ + offset;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[position_ < tokens_.size() - 1 ? position_++ : position_]; }

  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }

  bool expect(TokenKind kind, const char* context) {
    if (match(kind)) return true;
    error(std::string("expected '") + std::string(to_string(kind)) + "' " + context +
          ", found '" + std::string(to_string(peek().kind)) + "'");
    return false;
  }

  void error(std::string message) {
    sink_.error("asl:line " + std::to_string(peek().line), std::move(message));
  }

  // --- Statements -------------------------------------------------------------

  StmtPtr parse_statement() {
    const int line = peek().line;
    if (check(TokenKind::kIf)) return parse_if();
    if (check(TokenKind::kWhile)) return parse_while();
    if (check(TokenKind::kReturn)) return parse_return();
    if (check(TokenKind::kSend)) return parse_send();
    if (check(TokenKind::kLBrace)) {
      auto block = std::make_unique<Stmt>();
      block->kind = StmtKind::kBlock;
      block->line = line;
      if (!parse_block(block->body)) return nullptr;
      return block;
    }

    // Assignment or expression statement. Disambiguate by scanning:
    //   IDENT ":=" ...               local assignment
    //   "self" "." IDENT ":=" ...    attribute assignment
    if (check(TokenKind::kIdent) && look(1).kind == TokenKind::kAssign) {
      auto assign = std::make_unique<Stmt>();
      assign->kind = StmtKind::kAssign;
      assign->line = line;
      assign->target = advance().text;
      advance();  // :=
      assign->value = parse_expression();
      if (assign->value == nullptr || !expect(TokenKind::kSemicolon, "after assignment")) {
        return nullptr;
      }
      return assign;
    }
    if (check(TokenKind::kSelf) && look(1).kind == TokenKind::kDot &&
        look(2).kind == TokenKind::kIdent && look(3).kind == TokenKind::kAssign) {
      auto assign = std::make_unique<Stmt>();
      assign->kind = StmtKind::kAssign;
      assign->line = line;
      assign->self_target = true;
      advance();  // self
      advance();  // .
      assign->target = advance().text;
      advance();  // :=
      assign->value = parse_expression();
      if (assign->value == nullptr || !expect(TokenKind::kSemicolon, "after assignment")) {
        return nullptr;
      }
      return assign;
    }

    auto statement = std::make_unique<Stmt>();
    statement->kind = StmtKind::kExpr;
    statement->line = line;
    statement->value = parse_expression();
    if (statement->value == nullptr ||
        !expect(TokenKind::kSemicolon, "after expression statement")) {
      return nullptr;
    }
    return statement;
  }

  bool parse_block(std::vector<StmtPtr>& out) {
    if (!expect(TokenKind::kLBrace, "to open block")) return false;
    while (!check(TokenKind::kRBrace)) {
      if (check(TokenKind::kEnd)) {
        error("unterminated block");
        return false;
      }
      StmtPtr statement = parse_statement();
      if (statement == nullptr) return false;
      out.push_back(std::move(statement));
    }
    advance();  // }
    return true;
  }

  StmtPtr parse_if() {
    auto statement = std::make_unique<Stmt>();
    statement->kind = StmtKind::kIf;
    statement->line = peek().line;
    advance();  // if
    if (!expect(TokenKind::kLParen, "after 'if'")) return nullptr;
    statement->value = parse_expression();
    if (statement->value == nullptr || !expect(TokenKind::kRParen, "after condition")) {
      return nullptr;
    }
    if (!parse_block(statement->body)) return nullptr;
    if (match(TokenKind::kElse)) {
      if (check(TokenKind::kIf)) {
        StmtPtr nested = parse_if();
        if (nested == nullptr) return nullptr;
        statement->else_body.push_back(std::move(nested));
      } else if (!parse_block(statement->else_body)) {
        return nullptr;
      }
    }
    return statement;
  }

  StmtPtr parse_while() {
    auto statement = std::make_unique<Stmt>();
    statement->kind = StmtKind::kWhile;
    statement->line = peek().line;
    advance();  // while
    if (!expect(TokenKind::kLParen, "after 'while'")) return nullptr;
    statement->value = parse_expression();
    if (statement->value == nullptr || !expect(TokenKind::kRParen, "after condition")) {
      return nullptr;
    }
    if (!parse_block(statement->body)) return nullptr;
    return statement;
  }

  StmtPtr parse_return() {
    auto statement = std::make_unique<Stmt>();
    statement->kind = StmtKind::kReturn;
    statement->line = peek().line;
    advance();  // return
    if (!check(TokenKind::kSemicolon)) {
      statement->value = parse_expression();
      if (statement->value == nullptr) return nullptr;
    }
    if (!expect(TokenKind::kSemicolon, "after return")) return nullptr;
    return statement;
  }

  StmtPtr parse_send() {
    auto statement = std::make_unique<Stmt>();
    statement->kind = StmtKind::kSend;
    statement->line = peek().line;
    advance();  // send
    if (!check(TokenKind::kIdent) && !check(TokenKind::kSelf)) {
      error("expected signal target after 'send'");
      return nullptr;
    }
    statement->send_target = check(TokenKind::kSelf) ? "self" : peek().text;
    advance();
    if (!expect(TokenKind::kDot, "after send target")) return nullptr;
    if (!check(TokenKind::kIdent)) {
      error("expected signal name");
      return nullptr;
    }
    statement->signal = advance().text;
    if (!expect(TokenKind::kLParen, "after signal name")) return nullptr;
    if (!check(TokenKind::kRParen)) {
      do {
        ExprPtr argument = parse_expression();
        if (argument == nullptr) return nullptr;
        statement->arguments.push_back(std::move(argument));
      } while (match(TokenKind::kComma));
    }
    if (!expect(TokenKind::kRParen, "after signal arguments")) return nullptr;
    if (!expect(TokenKind::kSemicolon, "after send")) return nullptr;
    return statement;
  }

  // --- Expressions (Pratt) ------------------------------------------------------

  static int binding_power(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPipePipe:
      case TokenKind::kOr:
        return 10;
      case TokenKind::kAmpAmp:
      case TokenKind::kAnd:
        return 20;
      case TokenKind::kEq:
      case TokenKind::kNe:
        return 30;
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return 40;
      case TokenKind::kPlus:
      case TokenKind::kMinus:
        return 50;
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent:
        return 60;
      default:
        return 0;
    }
  }

  static BinaryOp binary_op_for(TokenKind kind) {
    switch (kind) {
      case TokenKind::kPlus: return BinaryOp::kAdd;
      case TokenKind::kMinus: return BinaryOp::kSub;
      case TokenKind::kStar: return BinaryOp::kMul;
      case TokenKind::kSlash: return BinaryOp::kDiv;
      case TokenKind::kPercent: return BinaryOp::kMod;
      case TokenKind::kEq: return BinaryOp::kEq;
      case TokenKind::kNe: return BinaryOp::kNe;
      case TokenKind::kLt: return BinaryOp::kLt;
      case TokenKind::kLe: return BinaryOp::kLe;
      case TokenKind::kGt: return BinaryOp::kGt;
      case TokenKind::kGe: return BinaryOp::kGe;
      case TokenKind::kAmpAmp:
      case TokenKind::kAnd:
        return BinaryOp::kAnd;
      default:
        return BinaryOp::kOr;
    }
  }

  ExprPtr parse_expression(int min_power = 1) {
    ExprPtr left = parse_unary();
    if (left == nullptr) return nullptr;
    for (;;) {
      int power = binding_power(peek().kind);
      if (power < min_power) return left;
      TokenKind op = advance().kind;
      ExprPtr right = parse_expression(power + 1);
      if (right == nullptr) return nullptr;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->line = left->line;
      node->binary_op = binary_op_for(op);
      node->lhs = std::move(left);
      node->rhs = std::move(right);
      left = std::move(node);
    }
  }

  ExprPtr parse_unary() {
    const int line = peek().line;
    if (match(TokenKind::kMinus)) {
      ExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = line;
      node->unary_op = UnaryOp::kNeg;
      node->lhs = std::move(operand);
      return node;
    }
    if (match(TokenKind::kBang) || match(TokenKind::kNot)) {
      ExprPtr operand = parse_unary();
      if (operand == nullptr) return nullptr;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = line;
      node->unary_op = UnaryOp::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr base = parse_primary();
    if (base == nullptr) return nullptr;
    while (check(TokenKind::kDot)) {
      advance();
      if (!check(TokenKind::kIdent)) {
        error("expected member name after '.'");
        return nullptr;
      }
      Token member = advance();
      if (match(TokenKind::kLParen)) {
        auto call = std::make_unique<Expr>();
        call->kind = ExprKind::kCall;
        call->line = member.line;
        call->name = member.text;
        call->lhs = std::move(base);
        if (!check(TokenKind::kRParen)) {
          do {
            ExprPtr argument = parse_expression();
            if (argument == nullptr) return nullptr;
            call->arguments.push_back(std::move(argument));
          } while (match(TokenKind::kComma));
        }
        if (!expect(TokenKind::kRParen, "after call arguments")) return nullptr;
        base = std::move(call);
      } else {
        auto attr = std::make_unique<Expr>();
        attr->kind = ExprKind::kSelfAttr;
        attr->line = member.line;
        attr->name = member.text;
        attr->lhs = std::move(base);
        base = std::move(attr);
      }
    }
    return base;
  }

  ExprPtr parse_primary() {
    const Token token = peek();
    switch (token.kind) {
      case TokenKind::kInt: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kLiteral;
        node->line = token.line;
        node->literal = Value{token.int_value};
        return node;
      }
      case TokenKind::kString: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kLiteral;
        node->line = token.line;
        node->literal = Value{token.text};
        return node;
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kLiteral;
        node->line = token.line;
        node->literal = Value{token.kind == TokenKind::kTrue};
        return node;
      }
      case TokenKind::kSelf: {
        advance();
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kName;
        node->line = token.line;
        node->name = "self";
        return node;
      }
      case TokenKind::kIdent: {
        advance();
        if (match(TokenKind::kLParen)) {
          // Bare call: treated as self-operation call.
          auto call = std::make_unique<Expr>();
          call->kind = ExprKind::kCall;
          call->line = token.line;
          call->name = token.text;
          if (!check(TokenKind::kRParen)) {
            do {
              ExprPtr argument = parse_expression();
              if (argument == nullptr) return nullptr;
              call->arguments.push_back(std::move(argument));
            } while (match(TokenKind::kComma));
          }
          if (!expect(TokenKind::kRParen, "after call arguments")) return nullptr;
          return call;
        }
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::kName;
        node->line = token.line;
        node->name = token.text;
        return node;
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expression();
        if (inner == nullptr || !expect(TokenKind::kRParen, "after parenthesized expression")) {
          return nullptr;
        }
        return inner;
      }
      default:
        error("unexpected token '" + std::string(to_string(token.kind)) + "' in expression");
        return nullptr;
    }
  }

  std::vector<Token> tokens_;
  std::size_t position_ = 0;
  support::DiagnosticSink& sink_;
};

}  // namespace

std::optional<Program> parse(std::string_view source, support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();
  std::vector<Token> tokens = tokenize(source, sink);
  if (sink.error_count() != errors_before) return std::nullopt;
  Parser parser(std::move(tokens), sink);
  std::optional<Program> program = parser.parse_program();
  if (sink.error_count() != errors_before) return std::nullopt;
  return program;
}

}  // namespace umlsoc::asl
