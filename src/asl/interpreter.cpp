#include "asl/interpreter.hpp"

#include <stdexcept>

#include "asl/parser.hpp"

namespace umlsoc::asl {

Value Environment::local(const std::string& name) const {
  auto it = locals_.find(name);
  if (it != locals_.end()) return it->second;
  return self_->get_attribute(name);
}

std::optional<Value> Interpreter::execute(const Program& program, Environment& environment) {
  return_value_.reset();
  run_block(program.statements, environment);
  return return_value_;
}

Interpreter::Flow Interpreter::run_block(const std::vector<StmtPtr>& statements,
                                         Environment& environment) {
  for (const StmtPtr& statement : statements) {
    if (run_statement(*statement, environment) == Flow::kReturn) return Flow::kReturn;
  }
  return Flow::kNormal;
}

Interpreter::Flow Interpreter::run_statement(const Stmt& statement, Environment& environment) {
  if (++stats_.statements_executed > max_steps_) {
    throw std::runtime_error("ASL: step budget exceeded (line " +
                             std::to_string(statement.line) + ")");
  }
  switch (statement.kind) {
    case StmtKind::kAssign: {
      Value value = evaluate(*statement.value, environment);
      if (statement.self_target) {
        environment.self().set_attribute(statement.target, std::move(value));
      } else {
        environment.set_local(statement.target, std::move(value));
      }
      return Flow::kNormal;
    }
    case StmtKind::kExpr:
      evaluate(*statement.value, environment);
      return Flow::kNormal;
    case StmtKind::kIf: {
      if (evaluate(*statement.value, environment).as_bool()) {
        return run_block(statement.body, environment);
      }
      return run_block(statement.else_body, environment);
    }
    case StmtKind::kWhile: {
      while (evaluate(*statement.value, environment).as_bool()) {
        if (run_block(statement.body, environment) == Flow::kReturn) return Flow::kReturn;
        if (stats_.statements_executed > max_steps_) {
          throw std::runtime_error("ASL: step budget exceeded in loop (line " +
                                   std::to_string(statement.line) + ")");
        }
        ++stats_.statements_executed;  // Charge each iteration.
      }
      return Flow::kNormal;
    }
    case StmtKind::kReturn: {
      return_value_ =
          statement.value != nullptr ? evaluate(*statement.value, environment) : Value{};
      return Flow::kReturn;
    }
    case StmtKind::kSend: {
      std::vector<Value> arguments;
      arguments.reserve(statement.arguments.size());
      for (const ExprPtr& argument : statement.arguments) {
        arguments.push_back(evaluate(*argument, environment));
      }
      environment.self().send_signal(statement.send_target, statement.signal, arguments);
      return Flow::kNormal;
    }
    case StmtKind::kBlock:
      return run_block(statement.body, environment);
  }
  return Flow::kNormal;
}

namespace {

[[noreturn]] void type_error(const char* what, int line) {
  throw std::runtime_error("ASL: " + std::string(what) + " (line " + std::to_string(line) + ")");
}

Value apply_binary(BinaryOp op, const Value& left, const Value& right, int line) {
  switch (op) {
    case BinaryOp::kAdd:
      if (left.is_string() || right.is_string()) return Value{left.str() + right.str()};
      return Value{left.as_int() + right.as_int()};
    case BinaryOp::kSub:
      return Value{left.as_int() - right.as_int()};
    case BinaryOp::kMul:
      return Value{left.as_int() * right.as_int()};
    case BinaryOp::kDiv:
      if (right.as_int() == 0) type_error("division by zero", line);
      return Value{left.as_int() / right.as_int()};
    case BinaryOp::kMod:
      if (right.as_int() == 0) type_error("modulo by zero", line);
      return Value{left.as_int() % right.as_int()};
    case BinaryOp::kEq:
      return Value{left == right};
    case BinaryOp::kNe:
      return Value{!(left == right)};
    case BinaryOp::kLt:
      return Value{left.as_int() < right.as_int()};
    case BinaryOp::kLe:
      return Value{left.as_int() <= right.as_int()};
    case BinaryOp::kGt:
      return Value{left.as_int() > right.as_int()};
    case BinaryOp::kGe:
      return Value{left.as_int() >= right.as_int()};
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
      break;  // Short-circuit handled by caller.
  }
  type_error("unsupported binary operator", line);
}

}  // namespace

Value Interpreter::evaluate(const Expr& expression, Environment& environment) {
  ++stats_.expressions_evaluated;
  switch (expression.kind) {
    case ExprKind::kLiteral:
      return expression.literal;
    case ExprKind::kName:
      if (expression.name == "self") return Value{std::string("self")};
      return environment.local(expression.name);
    case ExprKind::kSelfAttr: {
      // Base must denote self; attributes of other objects are not in the
      // supported subset (signals are the cross-object mechanism).
      if (expression.lhs != nullptr && expression.lhs->kind == ExprKind::kName &&
          expression.lhs->name == "self") {
        return environment.self().get_attribute(expression.name);
      }
      type_error("attribute access is only supported on 'self'", expression.line);
    }
    case ExprKind::kUnary: {
      Value operand = evaluate(*expression.lhs, environment);
      if (expression.unary_op == UnaryOp::kNeg) return Value{-operand.as_int()};
      return Value{!operand.as_bool()};
    }
    case ExprKind::kBinary: {
      if (expression.binary_op == BinaryOp::kAnd) {
        if (!evaluate(*expression.lhs, environment).as_bool()) return Value{false};
        return Value{evaluate(*expression.rhs, environment).as_bool()};
      }
      if (expression.binary_op == BinaryOp::kOr) {
        if (evaluate(*expression.lhs, environment).as_bool()) return Value{true};
        return Value{evaluate(*expression.rhs, environment).as_bool()};
      }
      Value left = evaluate(*expression.lhs, environment);
      Value right = evaluate(*expression.rhs, environment);
      return apply_binary(expression.binary_op, left, right, expression.line);
    }
    case ExprKind::kCall: {
      // Bare calls f(x) and self.f(x) both dispatch to self's operations.
      if (expression.lhs != nullptr &&
          !(expression.lhs->kind == ExprKind::kName && expression.lhs->name == "self")) {
        type_error("operation calls are only supported on 'self'", expression.line);
      }
      std::vector<Value> arguments;
      arguments.reserve(expression.arguments.size());
      for (const ExprPtr& argument : expression.arguments) {
        arguments.push_back(evaluate(*argument, environment));
      }
      return environment.self().call(expression.name, arguments);
    }
  }
  type_error("unknown expression kind", expression.line);
}

std::optional<Value> run_asl(std::string_view source, ObjectContext& self,
                             std::uint64_t max_steps) {
  support::DiagnosticSink sink;
  std::optional<Program> program = parse(source, sink);
  if (!program.has_value()) {
    throw std::runtime_error("ASL syntax error:\n" + sink.str());
  }
  Environment environment(self);
  Interpreter interpreter(max_steps);
  return interpreter.execute(*program, environment);
}

}  // namespace umlsoc::asl
