// Declarative well-formedness constraints over UML models, written as ASL
// boolean expressions (filling OCL's role in the paper's "semantics must be
// given to the domain subset" argument). Each constraint is evaluated once
// per matching element; a falsy result is a violation.
//
// The expression sees the element through an ObjectContext:
//   attributes: name, kind, qualified_name, owner_kind,
//               is_abstract / is_active       (classifiers / classes)
//               bit_width                     (primitive types)
//               lower / upper                 (properties; upper -1 = "*")
//               direction / width             (ports)
//   operations: property_count(), operation_count(), port_count(),
//               literal_count(), member_count(), parameter_count(),
//               has_stereotype("S"), tagged("S", "key")
//
// Example:
//   set.add("hw-needs-clock", uml::ElementKind::kClass,
//           "not has_stereotype(\"HwModule\") or port_count() > 0");
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asl/interpreter.hpp"
#include "support/diagnostics.hpp"
#include "uml/package.hpp"

namespace umlsoc::asl {

/// Read-only ObjectContext view of one model element.
class ElementContext : public ObjectContext {
 public:
  explicit ElementContext(const uml::Element& element) : element_(element) {}

  Value get_attribute(const std::string& name) override;
  void set_attribute(const std::string& name, Value value) override;
  Value call(const std::string& operation, const std::vector<Value>& arguments) override;
  void send_signal(const std::string& target, const std::string& signal,
                   const std::vector<Value>& arguments) override;

 private:
  const uml::Element& element_;
};

class ConstraintSet {
 public:
  /// Adds a constraint over elements of `kind` (nullopt = every element).
  /// The expression must be a single ASL expression (no statements).
  /// Returns false (with diagnostics) when the expression does not parse.
  bool add(std::string name, std::optional<uml::ElementKind> kind, std::string expression,
           support::DiagnosticSink& sink);

  [[nodiscard]] std::size_t size() const { return constraints_.size(); }

  /// Evaluates every constraint over every matching element in `model`.
  /// Violations are errors ("constraint 'x' violated"); evaluation faults
  /// (type errors etc.) are also errors. Returns true when clean.
  bool check(uml::Model& model, support::DiagnosticSink& sink) const;

 private:
  struct Constraint {
    std::string name;
    std::optional<uml::ElementKind> kind;
    std::string expression_text;
    Program program;  // Single `return <expr>;` statement.
  };
  std::vector<Constraint> constraints_;
};

}  // namespace umlsoc::asl
