#include "asl/value.hpp"

#include <stdexcept>

namespace umlsoc::asl {

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(data_);
  if (is_bool()) return std::get<bool>(data_) ? 1 : 0;
  throw std::runtime_error("ASL: string value used as integer: '" +
                           std::get<std::string>(data_) + "'");
}

bool Value::as_bool() const {
  if (is_bool()) return std::get<bool>(data_);
  if (is_int()) return std::get<std::int64_t>(data_) != 0;
  return !std::get<std::string>(data_).empty();
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("ASL: value is not a string");
  return std::get<std::string>(data_);
}

std::string Value::str() const {
  if (is_int()) return std::to_string(std::get<std::int64_t>(data_));
  if (is_bool()) return std::get<bool>(data_) ? "true" : "false";
  return std::get<std::string>(data_);
}

Value MapObject::get_attribute(const std::string& name) {
  auto it = attributes_.find(name);
  return it == attributes_.end() ? Value{} : it->second;
}

void MapObject::set_attribute(const std::string& name, Value value) {
  attributes_[name] = std::move(value);
}

Value MapObject::call(const std::string& operation, const std::vector<Value>& arguments) {
  auto it = operations_.find(operation);
  if (it == operations_.end()) {
    throw std::runtime_error("ASL: unknown operation '" + operation + "'");
  }
  return it->second(arguments);
}

void MapObject::send_signal(const std::string& target, const std::string& signal,
                            const std::vector<Value>& arguments) {
  sent_signals_.push_back(SentSignal{target, signal, arguments});
}

void MapObject::define_operation(std::string name, Operation body) {
  operations_[std::move(name)] = std::move(body);
}

}  // namespace umlsoc::asl
