// Tree-walking interpreter for ASL programs.
#pragma once

#include <optional>
#include <unordered_map>

#include "asl/ast.hpp"
#include "asl/value.hpp"

namespace umlsoc::asl {

/// Execution environment: local variables layered over an object context.
/// Reading an unknown local falls through to the object's attributes.
class Environment {
 public:
  explicit Environment(ObjectContext& self) : self_(&self) {}

  [[nodiscard]] ObjectContext& self() const { return *self_; }

  void set_local(const std::string& name, Value value) { locals_[name] = std::move(value); }
  [[nodiscard]] bool has_local(const std::string& name) const { return locals_.contains(name); }
  [[nodiscard]] Value local(const std::string& name) const;

 private:
  ObjectContext* self_;
  std::unordered_map<std::string, Value> locals_;
};

struct InterpreterStats {
  std::uint64_t statements_executed = 0;
  std::uint64_t expressions_evaluated = 0;
};

/// Executes a program. Throws std::runtime_error on dynamic errors (type
/// mismatch, division by zero, unknown operation, step budget exceeded).
class Interpreter {
 public:
  /// `max_steps` bounds executed statements (loop runaway guard).
  explicit Interpreter(std::uint64_t max_steps = 1u << 20) : max_steps_(max_steps) {}

  /// Runs the program; returns the value of an executed `return`, if any.
  std::optional<Value> execute(const Program& program, Environment& environment);

  /// Evaluates a single expression (used by guard bindings).
  Value evaluate(const Expr& expression, Environment& environment);

  [[nodiscard]] const InterpreterStats& stats() const { return stats_; }

 private:
  enum class Flow { kNormal, kReturn };

  Flow run_block(const std::vector<StmtPtr>& statements, Environment& environment);
  Flow run_statement(const Stmt& statement, Environment& environment);

  std::uint64_t max_steps_;
  InterpreterStats stats_;
  std::optional<Value> return_value_;
};

/// Convenience: parse + execute `source` against `self`. Throws on syntax
/// errors (message contains the diagnostics).
std::optional<Value> run_asl(std::string_view source, ObjectContext& self,
                             std::uint64_t max_steps = 1u << 20);

}  // namespace umlsoc::asl
