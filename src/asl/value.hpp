// Runtime values of the Action Specification Language (DESIGN.md, module
// `asl`): integers, booleans and strings, plus the object context an action
// executes against.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace umlsoc::asl {

class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : data_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(bool v) : data_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(data_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(data_); }

  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] bool as_bool() const;   // Truthiness: 0/false/"" are false.
  [[nodiscard]] const std::string& as_string() const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }

 private:
  std::variant<std::int64_t, bool, std::string> data_;
};

/// The world an ASL program talks to: its owning object's attributes,
/// callable operations, and outgoing signals. Implementations adapt model
/// instances (uml::InstanceSpecification), state machine variables, or the
/// simulation kernel.
class ObjectContext {
 public:
  virtual ~ObjectContext() = default;

  virtual Value get_attribute(const std::string& name) = 0;
  virtual void set_attribute(const std::string& name, Value value) = 0;
  virtual Value call(const std::string& operation, const std::vector<Value>& arguments) = 0;
  virtual void send_signal(const std::string& target, const std::string& signal,
                           const std::vector<Value>& arguments) = 0;
};

/// Map-backed context for tests and simple executions: attributes in a map,
/// calls dispatched to registered std::functions, signals recorded.
class MapObject : public ObjectContext {
 public:
  using Operation = std::function<Value(const std::vector<Value>&)>;

  Value get_attribute(const std::string& name) override;
  void set_attribute(const std::string& name, Value value) override;
  Value call(const std::string& operation, const std::vector<Value>& arguments) override;
  void send_signal(const std::string& target, const std::string& signal,
                   const std::vector<Value>& arguments) override;

  void define_operation(std::string name, Operation body);

  struct SentSignal {
    std::string target;
    std::string signal;
    std::vector<Value> arguments;
  };
  [[nodiscard]] const std::vector<SentSignal>& sent_signals() const { return sent_signals_; }
  [[nodiscard]] const std::map<std::string, Value>& attributes() const { return attributes_; }

 private:
  std::map<std::string, Value> attributes_;
  std::map<std::string, Operation> operations_;
  std::vector<SentSignal> sent_signals_;
};

}  // namespace umlsoc::asl
