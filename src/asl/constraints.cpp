#include "asl/constraints.hpp"

#include <stdexcept>

#include "asl/parser.hpp"
#include "uml/instance.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::asl {

namespace {

const uml::NamedElement* as_named(const uml::Element& element) {
  return dynamic_cast<const uml::NamedElement*>(&element);
}

}  // namespace

Value ElementContext::get_attribute(const std::string& name) {
  if (name == "name") {
    const uml::NamedElement* named = as_named(element_);
    return Value{named != nullptr ? named->name() : std::string{}};
  }
  if (name == "qualified_name") {
    const uml::NamedElement* named = as_named(element_);
    return Value{named != nullptr ? named->qualified_name() : std::string{}};
  }
  if (name == "kind") return Value{std::string(to_string(element_.kind()))};
  if (name == "owner_kind") {
    return Value{element_.owner() != nullptr
                     ? std::string(to_string(element_.owner()->kind()))
                     : std::string{}};
  }
  if (name == "is_abstract") {
    const auto* classifier = dynamic_cast<const uml::Classifier*>(&element_);
    return Value{classifier != nullptr && classifier->is_abstract()};
  }
  if (name == "is_active") {
    const auto* cls = dynamic_cast<const uml::Class*>(&element_);
    return Value{cls != nullptr && cls->is_active()};
  }
  if (name == "bit_width") {
    const auto* primitive = dynamic_cast<const uml::PrimitiveType*>(&element_);
    return Value{primitive != nullptr ? primitive->bit_width() : 0};
  }
  if (name == "lower" || name == "upper") {
    const auto* property = dynamic_cast<const uml::Property*>(&element_);
    if (property == nullptr) return Value{0};
    return Value{name == "lower" ? property->multiplicity().lower
                                 : property->multiplicity().upper};
  }
  if (name == "direction") {
    const auto* port = dynamic_cast<const uml::Port*>(&element_);
    return Value{port != nullptr ? std::string(to_string(port->direction()))
                                 : std::string{}};
  }
  if (name == "width") {
    const auto* port = dynamic_cast<const uml::Port*>(&element_);
    return Value{port != nullptr ? port->width() : 0};
  }
  return Value{};
}

void ElementContext::set_attribute(const std::string& name, Value) {
  throw std::runtime_error("constraints are read-only (attempted write to '" + name + "')");
}

Value ElementContext::call(const std::string& operation,
                           const std::vector<Value>& arguments) {
  if (operation == "has_stereotype") {
    if (arguments.size() != 1) throw std::runtime_error("has_stereotype expects 1 argument");
    return Value{element_.has_stereotype(arguments[0].as_string())};
  }
  if (operation == "tagged") {
    if (arguments.size() != 2) throw std::runtime_error("tagged expects 2 arguments");
    for (const uml::StereotypeApplication& application :
         element_.stereotype_applications()) {
      if (application.stereotype->name() != arguments[0].as_string()) continue;
      auto it = application.tagged_values.find(arguments[1].as_string());
      if (it != application.tagged_values.end()) return Value{it->second};
    }
    return Value{std::string{}};
  }
  if (operation == "property_count") {
    if (const auto* cls = dynamic_cast<const uml::Class*>(&element_)) {
      return Value{static_cast<std::int64_t>(cls->properties().size())};
    }
    if (const auto* signal = dynamic_cast<const uml::Signal*>(&element_)) {
      return Value{static_cast<std::int64_t>(signal->properties().size())};
    }
    return Value{0};
  }
  if (operation == "operation_count") {
    if (const auto* cls = dynamic_cast<const uml::Class*>(&element_)) {
      return Value{static_cast<std::int64_t>(cls->operations().size())};
    }
    if (const auto* interface = dynamic_cast<const uml::Interface*>(&element_)) {
      return Value{static_cast<std::int64_t>(interface->operations().size())};
    }
    return Value{0};
  }
  if (operation == "port_count") {
    const auto* cls = dynamic_cast<const uml::Class*>(&element_);
    return Value{cls != nullptr ? static_cast<std::int64_t>(cls->ports().size()) : 0};
  }
  if (operation == "literal_count") {
    const auto* enumeration = dynamic_cast<const uml::Enumeration*>(&element_);
    return Value{enumeration != nullptr
                     ? static_cast<std::int64_t>(enumeration->literals().size())
                     : 0};
  }
  if (operation == "member_count") {
    const auto* package = dynamic_cast<const uml::Package*>(&element_);
    return Value{package != nullptr ? static_cast<std::int64_t>(package->members().size())
                                    : 0};
  }
  if (operation == "parameter_count") {
    const auto* op = dynamic_cast<const uml::Operation*>(&element_);
    return Value{op != nullptr ? static_cast<std::int64_t>(op->parameters().size()) : 0};
  }
  throw std::runtime_error("unknown constraint operation '" + operation + "'");
}

void ElementContext::send_signal(const std::string&, const std::string&,
                                 const std::vector<Value>&) {
  throw std::runtime_error("constraints cannot send signals");
}

bool ConstraintSet::add(std::string name, std::optional<uml::ElementKind> kind,
                        std::string expression, support::DiagnosticSink& sink) {
  std::optional<Program> program = parse("return " + expression + ";", sink);
  if (!program.has_value()) {
    sink.error("constraint '" + name + "'", "expression does not parse");
    return false;
  }
  constraints_.push_back(
      Constraint{std::move(name), kind, std::move(expression), std::move(*program)});
  return true;
}

bool ConstraintSet::check(uml::Model& model, support::DiagnosticSink& sink) const {
  const std::size_t errors_before = sink.error_count();

  std::vector<uml::Element*> elements;
  std::vector<uml::Element*> stack{&model};
  while (!stack.empty()) {
    uml::Element* element = stack.back();
    stack.pop_back();
    elements.push_back(element);
    for (uml::Element* child : element->owned_elements()) stack.push_back(child);
  }

  for (const Constraint& constraint : constraints_) {
    for (uml::Element* element : elements) {
      if (constraint.kind.has_value() && element->kind() != *constraint.kind) continue;
      ElementContext context(*element);
      Environment environment(context);
      Interpreter interpreter;
      std::string subject = "element#" + element->id().str();
      if (const uml::NamedElement* named = as_named(*element)) {
        subject = named->qualified_name();
      }
      try {
        std::optional<Value> result = interpreter.execute(constraint.program, environment);
        if (!result.has_value() || !result->as_bool()) {
          sink.error(subject, "constraint '" + constraint.name + "' violated: " +
                                  constraint.expression_text);
        }
      } catch (const std::exception& fault) {
        sink.error(subject,
                   "constraint '" + constraint.name + "' faulted: " + fault.what());
      }
    }
  }
  return sink.error_count() == errors_before;
}

}  // namespace umlsoc::asl
