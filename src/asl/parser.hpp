// Recursive-descent / Pratt parser for the Action Specification Language.
#pragma once

#include <optional>
#include <string_view>

#include "asl/ast.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::asl {

/// Parses an ASL program. Returns nullopt (with diagnostics in `sink`) on
/// syntax errors.
[[nodiscard]] std::optional<Program> parse(std::string_view source,
                                           support::DiagnosticSink& sink);

}  // namespace umlsoc::asl
