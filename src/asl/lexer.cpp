#include "asl/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace umlsoc::asl {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kInt: return "<int>";
    case TokenKind::kString: return "<string>";
    case TokenKind::kIdent: return "<ident>";
    case TokenKind::kIf: return "if";
    case TokenKind::kElse: return "else";
    case TokenKind::kWhile: return "while";
    case TokenKind::kReturn: return "return";
    case TokenKind::kSend: return "send";
    case TokenKind::kSelf: return "self";
    case TokenKind::kTrue: return "true";
    case TokenKind::kFalse: return "false";
    case TokenKind::kAnd: return "and";
    case TokenKind::kOr: return "or";
    case TokenKind::kNot: return "not";
    case TokenKind::kAssign: return ":=";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kComma: return ",";
    case TokenKind::kDot: return ".";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kAmpAmp: return "&&";
    case TokenKind::kPipePipe: return "||";
    case TokenKind::kBang: return "!";
  }
  return "<token>";
}

std::vector<Token> tokenize(std::string_view source, support::DiagnosticSink& sink) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"if", TokenKind::kIf},       {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile}, {"return", TokenKind::kReturn},
      {"send", TokenKind::kSend},   {"self", TokenKind::kSelf},
      {"true", TokenKind::kTrue},   {"false", TokenKind::kFalse},
      {"and", TokenKind::kAnd},     {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},
  };

  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  auto push = [&](TokenKind kind) { tokens.push_back(Token{kind, "", 0, line}); };

  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Comments: // to end of line.
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::int64_t value = 0;
      while (i < source.size() && std::isdigit(static_cast<unsigned char>(source[i])) != 0) {
        value = value * 10 + (source[i] - '0');
        ++i;
      }
      tokens.push_back(Token{TokenKind::kInt, "", value, line});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < source.size() && (std::isalnum(static_cast<unsigned char>(source[i])) != 0 ||
                                   source[i] == '_')) {
        ++i;
      }
      std::string_view word = source.substr(start, i - start);
      auto it = kKeywords.find(word);
      if (it != kKeywords.end()) {
        push(it->second);
      } else {
        tokens.push_back(Token{TokenKind::kIdent, std::string(word), 0, line});
      }
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (source[i] == '\\' && i + 1 < source.size()) {
          ++i;
          switch (source[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            default: text += source[i];
          }
        } else {
          if (source[i] == '\n') ++line;
          text += source[i];
        }
        ++i;
      }
      if (!closed) {
        sink.error("asl:line " + std::to_string(line), "unterminated string literal");
      }
      tokens.push_back(Token{TokenKind::kString, std::move(text), 0, line});
      continue;
    }

    auto two = [&](char second, TokenKind twoKind, TokenKind oneKind) {
      if (i + 1 < source.size() && source[i + 1] == second) {
        push(twoKind);
        i += 2;
      } else {
        push(oneKind);
        ++i;
      }
    };

    switch (c) {
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          push(TokenKind::kAssign);
          i += 2;
        } else {
          sink.error("asl:line " + std::to_string(line), "expected ':=' after ':'");
          ++i;
        }
        break;
      case ';': push(TokenKind::kSemicolon); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case '.': push(TokenKind::kDot); ++i; break;
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case '{': push(TokenKind::kLBrace); ++i; break;
      case '}': push(TokenKind::kRBrace); ++i; break;
      case '+': push(TokenKind::kPlus); ++i; break;
      case '-': push(TokenKind::kMinus); ++i; break;
      case '*': push(TokenKind::kStar); ++i; break;
      case '/': push(TokenKind::kSlash); ++i; break;
      case '%': push(TokenKind::kPercent); ++i; break;
      case '=': two('=', TokenKind::kEq, TokenKind::kEq);  // Lone '=' tolerated as '=='.
        break;
      case '!': two('=', TokenKind::kNe, TokenKind::kBang); break;
      case '<': two('=', TokenKind::kLe, TokenKind::kLt); break;
      case '>': two('=', TokenKind::kGe, TokenKind::kGt); break;
      case '&': two('&', TokenKind::kAmpAmp, TokenKind::kAmpAmp); break;
      case '|': two('|', TokenKind::kPipePipe, TokenKind::kPipePipe); break;
      default:
        sink.error("asl:line " + std::to_string(line),
                   std::string("unexpected character '") + c + "'");
        ++i;
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, line});
  return tokens;
}

}  // namespace umlsoc::asl
