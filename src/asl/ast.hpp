// Abstract syntax of the Action Specification Language.
//
// Grammar (concrete syntax, ASL-flavoured):
//   program    := statement*
//   statement  := lvalue ":=" expr ";"
//               | "if" "(" expr ")" block ("else" (block | if-stmt))?
//               | "while" "(" expr ")" block
//               | "return" expr? ";"
//               | "send" IDENT "." IDENT "(" args? ")" ";"
//               | expr ";"                       // expression statement
//   block      := "{" statement* "}"
//   lvalue     := IDENT | "self" "." IDENT
//   expr       := Pratt expression over literals, names, self.attr,
//                 calls base.op(args), unary -/!/not, binary */ /%, +/-,
//                 comparisons, ==/!=, &&/and, ||/or
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "asl/value.hpp"

namespace umlsoc::asl {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind { kLiteral, kName, kSelfAttr, kUnary, kBinary, kCall };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot };

struct Expr {
  ExprKind kind;
  int line = 0;

  // kLiteral
  Value literal;
  // kName / kSelfAttr / kCall (member or operation name)
  std::string name;
  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  ExprPtr lhs;  // Also unary operand and call receiver ("self" when null).
  ExprPtr rhs;
  // kCall
  std::vector<ExprPtr> arguments;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind { kAssign, kExpr, kIf, kWhile, kReturn, kSend, kBlock };

struct Stmt {
  StmtKind kind;
  int line = 0;

  // kAssign: target name; self_target distinguishes "self.x" from local "x".
  std::string target;
  bool self_target = false;
  ExprPtr value;  // Assign value / expr-stmt / condition / return value.

  // kIf / kWhile
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  // kSend
  std::string send_target;
  std::string signal;
  std::vector<ExprPtr> arguments;
};

/// A parsed ASL program (the body of an operation or transition effect).
struct Program {
  std::vector<StmtPtr> statements;
};

}  // namespace umlsoc::asl
