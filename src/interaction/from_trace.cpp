#include "interaction/from_trace.hpp"

namespace umlsoc::interaction {

std::optional<ParsedLabel> parse_label(const std::string& label) {
  const std::size_t arrow = label.find("->");
  if (arrow == std::string::npos || arrow == 0) return std::nullopt;
  const std::size_t colon = label.find(':', arrow + 2);
  if (colon == std::string::npos || colon == arrow + 2 || colon + 1 >= label.size()) {
    return std::nullopt;
  }
  ParsedLabel parsed;
  parsed.from = label.substr(0, arrow);
  parsed.to = label.substr(arrow + 2, colon - arrow - 2);
  parsed.message = label.substr(colon + 1);
  return parsed;
}

std::unique_ptr<Interaction> interaction_from_trace(const std::string& name,
                                                    const Trace& trace,
                                                    std::size_t* skipped) {
  auto diagram = std::make_unique<Interaction>(name);
  std::size_t skip_count = 0;
  for (const std::string& label : trace) {
    std::optional<ParsedLabel> parsed = parse_label(label);
    if (!parsed.has_value()) {
      ++skip_count;
      continue;
    }
    Lifeline* from = diagram->find_lifeline(parsed->from);
    if (from == nullptr) from = &diagram->add_lifeline(parsed->from);
    Lifeline* to = diagram->find_lifeline(parsed->to);
    if (to == nullptr) to = &diagram->add_lifeline(parsed->to);
    diagram->add_message(*from, *to, parsed->message);
  }
  if (skipped != nullptr) *skipped = skip_count;
  return diagram;
}

}  // namespace umlsoc::interaction
