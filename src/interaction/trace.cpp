#include "interaction/trace.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace umlsoc::interaction {

namespace {

// --- Enumeration ----------------------------------------------------------------

class Enumerator {
 public:
  explicit Enumerator(const EnumerateOptions& options) : options_(options) {}

  [[nodiscard]] bool truncated() const { return truncated_; }

  std::vector<Trace> list(const std::vector<std::unique_ptr<Fragment>>& fragments) {
    std::vector<Trace> acc{{}};
    for (const auto& fragment : fragments) {
      acc = concat_product(acc, one(*fragment));
    }
    return acc;
  }

 private:
  std::vector<Trace> one(const Fragment& fragment) {
    if (fragment.fragment_kind() == FragmentKind::kMessage) {
      return {{fragment.label()}};
    }
    switch (fragment.combined_operator()) {
      case InteractionOperator::kAlt: {
        std::vector<Trace> acc;
        for (const auto& operand : fragment.operands()) {
          append_capped(acc, list(operand->fragments()));
        }
        return acc;
      }
      case InteractionOperator::kOpt: {
        std::vector<Trace> acc{{}};
        if (!fragment.operands().empty()) {
          append_capped(acc, list(fragment.operands().front()->fragments()));
        }
        return acc;
      }
      case InteractionOperator::kStrict: {
        std::vector<Trace> acc{{}};
        for (const auto& operand : fragment.operands()) {
          acc = concat_product(acc, list(operand->fragments()));
        }
        return acc;
      }
      case InteractionOperator::kLoop: {
        if (fragment.operands().empty()) return {{}};
        std::vector<Trace> body = list(fragment.operands().front()->fragments());
        int lo = std::max(0, fragment.loop_min());
        int hi = fragment.loop_max() < 0 ? std::max(lo, options_.loop_unroll)
                                         : fragment.loop_max();
        std::vector<Trace> acc;
        std::vector<Trace> power{{}};  // body^k, growing k.
        for (int k = 0; k <= hi; ++k) {
          if (k >= lo) append_capped(acc, power);
          if (k < hi) power = concat_product(power, body);
        }
        return acc;
      }
      case InteractionOperator::kPar: {
        std::vector<Trace> acc{{}};
        for (const auto& operand : fragment.operands()) {
          std::vector<Trace> operand_traces = list(operand->fragments());
          std::vector<Trace> merged;
          for (const Trace& left : acc) {
            for (const Trace& right : operand_traces) {
              interleave(left, right, merged);
              if (merged.size() >= options_.max_traces) truncated_ = true;
            }
          }
          dedup(merged);
          acc = std::move(merged);
          if (acc.size() > options_.max_traces) {
            acc.resize(options_.max_traces);
            truncated_ = true;
          }
        }
        return acc;
      }
    }
    return {{}};
  }

  std::vector<Trace> concat_product(const std::vector<Trace>& left,
                                    const std::vector<Trace>& right) {
    std::vector<Trace> out;
    out.reserve(std::min(left.size() * right.size(), options_.max_traces));
    for (const Trace& a : left) {
      for (const Trace& b : right) {
        if (out.size() >= options_.max_traces) {
          truncated_ = true;
          return out;
        }
        Trace joined = a;
        joined.insert(joined.end(), b.begin(), b.end());
        out.push_back(std::move(joined));
      }
    }
    return out;
  }

  void append_capped(std::vector<Trace>& acc, const std::vector<Trace>& more) {
    for (const Trace& trace : more) {
      if (acc.size() >= options_.max_traces) {
        truncated_ = true;
        return;
      }
      acc.push_back(trace);
    }
  }

  void interleave(const Trace& left, const Trace& right, std::vector<Trace>& out) {
    Trace current;
    current.reserve(left.size() + right.size());
    interleave_rec(left, 0, right, 0, current, out);
  }

  void interleave_rec(const Trace& left, std::size_t i, const Trace& right, std::size_t j,
                      Trace& current, std::vector<Trace>& out) {
    if (out.size() >= options_.max_traces) {
      truncated_ = true;
      return;
    }
    if (i == left.size() && j == right.size()) {
      out.push_back(current);
      return;
    }
    if (i < left.size()) {
      current.push_back(left[i]);
      interleave_rec(left, i + 1, right, j, current, out);
      current.pop_back();
    }
    if (j < right.size()) {
      current.push_back(right[j]);
      interleave_rec(left, i, right, j + 1, current, out);
      current.pop_back();
    }
  }

  static void dedup(std::vector<Trace>& traces) {
    std::sort(traces.begin(), traces.end());
    traces.erase(std::unique(traces.begin(), traces.end()), traces.end());
  }

  const EnumerateOptions& options_;
  bool truncated_ = false;
};

// --- Conformance matcher -----------------------------------------------------------

using Positions = std::set<std::size_t>;

class Matcher {
 public:
  Matcher(const Trace& trace, bool prefix_mode) : trace_(trace), prefix_(prefix_mode) {}

  Positions list(const std::vector<std::unique_ptr<Fragment>>& fragments, Positions in) {
    for (const auto& fragment : fragments) {
      if (in.empty()) return in;
      in = one(*fragment, in);
    }
    return in;
  }

 private:
  [[nodiscard]] std::size_t n() const { return trace_.size(); }

  Positions one(const Fragment& fragment, const Positions& in) {
    if (fragment.fragment_kind() == FragmentKind::kMessage) {
      Positions out;
      const std::string label = fragment.label();
      for (std::size_t p : in) {
        if (p == n()) {
          if (prefix_) out.insert(n());  // Beyond the observed prefix.
        } else if (trace_[p] == label) {
          out.insert(p + 1);
        }
      }
      return out;
    }
    switch (fragment.combined_operator()) {
      case InteractionOperator::kAlt: {
        Positions out;
        for (const auto& operand : fragment.operands()) {
          Positions branch = list(operand->fragments(), in);
          out.insert(branch.begin(), branch.end());
        }
        return out;
      }
      case InteractionOperator::kOpt: {
        Positions out = in;
        if (!fragment.operands().empty()) {
          Positions taken = list(fragment.operands().front()->fragments(), in);
          out.insert(taken.begin(), taken.end());
        }
        return out;
      }
      case InteractionOperator::kStrict: {
        Positions out = in;
        for (const auto& operand : fragment.operands()) {
          out = list(operand->fragments(), out);
        }
        return out;
      }
      case InteractionOperator::kLoop: {
        if (fragment.operands().empty()) return in;
        const auto& body = fragment.operands().front()->fragments();
        const int lo = std::max(0, fragment.loop_min());
        const int hi = fragment.loop_max();

        Positions acc;
        if (lo == 0) acc = in;
        Positions current = in;
        Positions previous;
        const int limit = hi < 0 ? lo + static_cast<int>(n()) + 2 : hi;
        for (int iteration = 1; iteration <= limit; ++iteration) {
          previous = current;
          current = list(body, current);
          if (iteration >= lo) acc.insert(current.begin(), current.end());
          if (current.empty()) break;
          if (iteration > lo && current == previous) break;  // Fixpoint.
        }
        return acc;
      }
      case InteractionOperator::kPar: {
        // Bounded local search: enumerate each operand's traces with loops
        // unrolled to the remaining trace length, then check interleavings.
        EnumerateOptions options;
        options.loop_unroll = static_cast<int>(n());
        options.max_traces = 4096;
        Enumerator enumerator(options);
        std::vector<std::vector<Trace>> operand_traces;
        for (const auto& operand : fragment.operands()) {
          operand_traces.push_back(enumerator.list(operand->fragments()));
        }
        Positions out;
        for (std::size_t p : in) {
          match_par(operand_traces, p, out);
        }
        return out;
      }
    }
    return in;
  }

  /// Adds to `out` every position reachable by consuming an interleaving of
  /// one trace per operand, starting at `p`.
  void match_par(const std::vector<std::vector<Trace>>& operand_traces, std::size_t p,
                 Positions& out) {
    for (const auto& traces : operand_traces) {
      if (traces.empty()) return;  // An operand with no traces blocks the par.
    }
    // Choose one trace per operand (product), then DP-match the interleaving.
    std::vector<std::size_t> choice(operand_traces.size(), 0);
    for (;;) {
      std::vector<const Trace*> chosen;
      chosen.reserve(choice.size());
      for (std::size_t i = 0; i < choice.size(); ++i) {
        chosen.push_back(&operand_traces[i][choice[i]]);
      }
      interleaving_match(chosen, p, out);

      // Next combination.
      std::size_t index = 0;
      while (index < choice.size()) {
        if (++choice[index] < operand_traces[index].size()) break;
        choice[index] = 0;
        ++index;
      }
      if (index == choice.size()) return;
      if (operand_traces.empty()) return;
    }
  }

  void interleaving_match(const std::vector<const Trace*>& sequences, std::size_t start,
                          Positions& out) {
    std::set<std::vector<std::size_t>> visited;
    std::vector<std::vector<std::size_t>> frontier{std::vector<std::size_t>(sequences.size(), 0)};
    visited.insert(frontier.front());

    while (!frontier.empty()) {
      std::vector<std::size_t> state = std::move(frontier.back());
      frontier.pop_back();

      std::size_t consumed = 0;
      bool all_done = true;
      for (std::size_t i = 0; i < sequences.size(); ++i) {
        consumed += state[i];
        if (state[i] < sequences[i]->size()) all_done = false;
      }
      std::size_t position = start + consumed;
      if (all_done) {
        out.insert(position);
        continue;
      }
      if (position == n()) {
        if (prefix_) out.insert(n());  // Remaining events lie past the prefix.
        continue;
      }
      for (std::size_t i = 0; i < sequences.size(); ++i) {
        if (state[i] < sequences[i]->size() && (*sequences[i])[state[i]] == trace_[position]) {
          std::vector<std::size_t> next = state;
          ++next[i];
          if (visited.insert(next).second) frontier.push_back(std::move(next));
        }
      }
    }
  }

  const Trace& trace_;
  bool prefix_;
};

}  // namespace

EnumerationResult enumerate_traces(const Interaction& interaction,
                                   const EnumerateOptions& options) {
  Enumerator enumerator(options);
  EnumerationResult result;
  result.traces = enumerator.list(interaction.fragments());
  if (result.traces.size() > options.max_traces) {
    result.traces.resize(options.max_traces);
  }
  result.truncated = enumerator.truncated();
  return result;
}

bool ConformanceChecker::conforms(const Trace& trace) const {
  Matcher matcher(trace, /*prefix_mode=*/false);
  Positions out = matcher.list(interaction_.fragments(), Positions{0});
  return out.contains(trace.size());
}

bool ConformanceChecker::is_prefix(const Trace& trace) const {
  Matcher matcher(trace, /*prefix_mode=*/true);
  Positions out = matcher.list(interaction_.fragments(), Positions{0});
  return out.contains(trace.size());
}

}  // namespace umlsoc::interaction
