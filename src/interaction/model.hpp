// UML 2.0 interaction metamodel: lifelines, messages, combined fragments.
// Paper §2: Sequence Diagrams "extended in UML 2.0 to be comparable to an
// SDL Message Sequence Chart (MSC)" — combined fragments (alt/opt/loop/par/
// strict) are exactly that extension.
//
// Semantics are trace-based (see interaction/trace.hpp): an interaction
// denotes a set of message-label sequences. Sequencing between consecutive
// fragments is strict (MSC-style); `par` provides explicit interleaving.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace umlsoc::uml {
class NamedElement;
}

namespace umlsoc::interaction {

class Interaction;

/// A participant; optionally bound to a model element it represents.
class Lifeline {
 public:
  explicit Lifeline(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] uml::NamedElement* represents() const { return represents_; }
  void set_represents(uml::NamedElement& element) { represents_ = &element; }

 private:
  std::string name_;
  uml::NamedElement* represents_ = nullptr;
};

enum class MessageKind { kSync, kAsync, kReply, kCreate, kDestroy };

[[nodiscard]] std::string_view to_string(MessageKind kind);

enum class FragmentKind { kMessage, kCombined };

enum class InteractionOperator { kAlt, kOpt, kLoop, kPar, kStrict };

[[nodiscard]] std::string_view to_string(InteractionOperator op);

class Fragment;

/// One operand of a combined fragment: a guarded sequence of fragments.
class Operand {
 public:
  explicit Operand(std::string guard = "") : guard_(std::move(guard)) {}
  Operand(const Operand&) = delete;
  Operand& operator=(const Operand&) = delete;

  [[nodiscard]] const std::string& guard() const { return guard_; }

  Fragment& add_message(Lifeline& from, Lifeline& to, std::string name,
                        MessageKind kind = MessageKind::kAsync);
  Fragment& add_combined(InteractionOperator op);

  [[nodiscard]] const std::vector<std::unique_ptr<Fragment>>& fragments() const {
    return fragments_;
  }

 private:
  std::string guard_;
  std::vector<std::unique_ptr<Fragment>> fragments_;
};

/// A message occurrence or a combined fragment, in document order.
class Fragment {
 public:
  Fragment(const Fragment&) = delete;
  Fragment& operator=(const Fragment&) = delete;

  [[nodiscard]] FragmentKind fragment_kind() const { return kind_; }

  // --- Message view ---------------------------------------------------------
  [[nodiscard]] Lifeline* from() const { return from_; }
  [[nodiscard]] Lifeline* to() const { return to_; }
  [[nodiscard]] const std::string& message_name() const { return message_name_; }
  [[nodiscard]] MessageKind message_kind() const { return message_kind_; }
  /// Canonical event label, e.g. "Cpu->Bus:read".
  [[nodiscard]] std::string label() const;

  // --- Combined-fragment view --------------------------------------------------
  [[nodiscard]] InteractionOperator combined_operator() const { return operator_; }
  Operand& add_operand(std::string guard = "");
  [[nodiscard]] const std::vector<std::unique_ptr<Operand>>& operands() const {
    return operands_;
  }
  /// Loop bounds; max < 0 means unbounded ("*").
  void set_loop_bounds(int min, int max) {
    loop_min_ = min;
    loop_max_ = max;
  }
  [[nodiscard]] int loop_min() const { return loop_min_; }
  [[nodiscard]] int loop_max() const { return loop_max_; }

 private:
  friend class Operand;
  friend class Interaction;

  Fragment(Lifeline& from, Lifeline& to, std::string name, MessageKind kind)
      : kind_(FragmentKind::kMessage),
        from_(&from),
        to_(&to),
        message_name_(std::move(name)),
        message_kind_(kind) {}
  explicit Fragment(InteractionOperator op) : kind_(FragmentKind::kCombined), operator_(op) {}

  FragmentKind kind_;
  // Message fields.
  Lifeline* from_ = nullptr;
  Lifeline* to_ = nullptr;
  std::string message_name_;
  MessageKind message_kind_ = MessageKind::kAsync;
  // Combined-fragment fields.
  InteractionOperator operator_ = InteractionOperator::kStrict;
  std::vector<std::unique_ptr<Operand>> operands_;
  int loop_min_ = 0;
  int loop_max_ = -1;
};

/// A sequence diagram.
class Interaction {
 public:
  explicit Interaction(std::string name) : name_(std::move(name)) {}
  Interaction(const Interaction&) = delete;
  Interaction& operator=(const Interaction&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  Lifeline& add_lifeline(std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<Lifeline>>& lifelines() const {
    return lifelines_;
  }
  [[nodiscard]] Lifeline* find_lifeline(std::string_view name) const;

  Fragment& add_message(Lifeline& from, Lifeline& to, std::string name,
                        MessageKind kind = MessageKind::kAsync);
  Fragment& add_combined(InteractionOperator op);
  [[nodiscard]] const std::vector<std::unique_ptr<Fragment>>& fragments() const {
    return fragments_;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Lifeline>> lifelines_;
  std::vector<std::unique_ptr<Fragment>> fragments_;
};

}  // namespace umlsoc::interaction
