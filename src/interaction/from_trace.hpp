// Building sequence diagrams from observed traces (the reverse direction:
// execution -> documentation), and trace-label parsing helpers.
#pragma once

#include <memory>
#include <optional>

#include "interaction/trace.hpp"

namespace umlsoc::interaction {

/// Parsed form of a canonical event label "From->To:message".
struct ParsedLabel {
  std::string from;
  std::string to;
  std::string message;
};

/// Parses "A->B:msg"; nullopt when the label is not in canonical form.
[[nodiscard]] std::optional<ParsedLabel> parse_label(const std::string& label);

/// Converts an observed trace into an Interaction: lifelines are created on
/// first use (in order of appearance), each label becomes one async message.
/// Labels that do not parse are skipped and counted in `skipped` (when
/// non-null). The result trivially satisfies conforms(trace).
[[nodiscard]] std::unique_ptr<Interaction> interaction_from_trace(
    const std::string& name, const Trace& trace, std::size_t* skipped = nullptr);

}  // namespace umlsoc::interaction
