#include "interaction/model.hpp"

namespace umlsoc::interaction {

std::string_view to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kSync:
      return "sync";
    case MessageKind::kAsync:
      return "async";
    case MessageKind::kReply:
      return "reply";
    case MessageKind::kCreate:
      return "create";
    case MessageKind::kDestroy:
      return "destroy";
  }
  return "async";
}

std::string_view to_string(InteractionOperator op) {
  switch (op) {
    case InteractionOperator::kAlt:
      return "alt";
    case InteractionOperator::kOpt:
      return "opt";
    case InteractionOperator::kLoop:
      return "loop";
    case InteractionOperator::kPar:
      return "par";
    case InteractionOperator::kStrict:
      return "strict";
  }
  return "strict";
}

std::string Fragment::label() const {
  return from_->name() + "->" + to_->name() + ":" + message_name_;
}

Operand& Fragment::add_operand(std::string guard) {
  operands_.push_back(std::make_unique<Operand>(std::move(guard)));
  return *operands_.back();
}

Fragment& Operand::add_message(Lifeline& from, Lifeline& to, std::string name,
                               MessageKind kind) {
  fragments_.push_back(
      std::unique_ptr<Fragment>(new Fragment(from, to, std::move(name), kind)));
  return *fragments_.back();
}

Fragment& Operand::add_combined(InteractionOperator op) {
  fragments_.push_back(std::unique_ptr<Fragment>(new Fragment(op)));
  return *fragments_.back();
}

Lifeline& Interaction::add_lifeline(std::string name) {
  lifelines_.push_back(std::make_unique<Lifeline>(std::move(name)));
  return *lifelines_.back();
}

Lifeline* Interaction::find_lifeline(std::string_view name) const {
  for (const auto& lifeline : lifelines_) {
    if (lifeline->name() == name) return lifeline.get();
  }
  return nullptr;
}

Fragment& Interaction::add_message(Lifeline& from, Lifeline& to, std::string name,
                                   MessageKind kind) {
  fragments_.push_back(
      std::unique_ptr<Fragment>(new Fragment(from, to, std::move(name), kind)));
  return *fragments_.back();
}

Fragment& Interaction::add_combined(InteractionOperator op) {
  fragments_.push_back(std::unique_ptr<Fragment>(new Fragment(op)));
  return *fragments_.back();
}

}  // namespace umlsoc::interaction
