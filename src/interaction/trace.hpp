// Trace semantics for interactions: enumeration of the denoted trace set and
// membership checking of observed execution traces (MSC conformance).
#pragma once

#include <string>
#include <vector>

#include "interaction/model.hpp"

namespace umlsoc::interaction {

/// An observed or denoted run: a sequence of message labels ("A->B:msg").
using Trace = std::vector<std::string>;

struct EnumerateOptions {
  /// Hard cap on the number of generated traces; enumeration stops and sets
  /// `truncated` once reached (alt/par nesting is exponential by design —
  /// benchmark E5 measures exactly that blowup).
  std::size_t max_traces = 1024;
  /// Unroll bound for loops whose max is unbounded.
  int loop_unroll = 3;
};

struct EnumerationResult {
  std::vector<Trace> traces;
  bool truncated = false;
};

/// Expands the interaction into its denoted trace set (bounded).
[[nodiscard]] EnumerationResult enumerate_traces(const Interaction& interaction,
                                                 const EnumerateOptions& options = {});

/// Membership check without full enumeration: a position-set (NFA-style)
/// matcher that handles alt/opt/strict and unbounded loops in polynomial
/// time; `par` blocks fall back to bounded interleaving search local to the
/// block. Loops nested inside `par` are unrolled up to the remaining trace
/// length, which is exact for membership purposes.
class ConformanceChecker {
 public:
  explicit ConformanceChecker(const Interaction& interaction) : interaction_(interaction) {}

  /// True when `trace` is one of the interaction's denoted traces.
  [[nodiscard]] bool conforms(const Trace& trace) const;

  /// True when `trace` is a prefix of some denoted trace (useful for
  /// checking unfinished executions).
  [[nodiscard]] bool is_prefix(const Trace& trace) const;

 private:
  const Interaction& interaction_;
};

}  // namespace umlsoc::interaction
