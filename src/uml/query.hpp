// Read-only queries over a model: lookup by qualified name, element
// statistics, and typed collection helpers.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>
#include <vector>

#include "uml/package.hpp"

namespace umlsoc::uml {

/// Resolves "Pkg.Sub.Class" style paths from the model root. The model's own
/// name is not part of the path. Returns nullptr when any segment is missing.
[[nodiscard]] NamedElement* find_by_qualified_name(const Model& model, std::string_view path);

/// Per-metaclass element counts plus aggregate totals.
struct ModelStats {
  static constexpr std::size_t kKindCount = 19;

  std::array<std::size_t, kKindCount> by_kind{};
  std::size_t total = 0;
  std::size_t max_depth = 0;  // Ownership-tree depth; model root = 0.

  [[nodiscard]] std::size_t count(ElementKind kind) const {
    return by_kind[static_cast<std::size_t>(kind)];
  }
};

[[nodiscard]] ModelStats compute_stats(Model& model);

/// All elements of dynamic type T in the ownership tree, pre-order.
template <typename T>
[[nodiscard]] std::vector<T*> collect(Element& root) {
  std::vector<T*> out;
  std::vector<Element*> stack{&root};
  while (!stack.empty()) {
    Element* element = stack.back();
    stack.pop_back();
    if (auto* typed = dynamic_cast<T*>(element)) out.push_back(typed);
    std::vector<Element*> children = element->owned_elements();
    // Push in reverse so traversal order matches pre-order document order.
    for (auto it = children.rbegin(); it != children.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

}  // namespace umlsoc::uml
