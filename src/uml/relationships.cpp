#include "uml/relationships.hpp"

#include "uml/package.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

std::string_view to_string(DependencyKind kind) {
  switch (kind) {
    case DependencyKind::kUse:
      return "use";
    case DependencyKind::kRealize:
      return "realize";
    case DependencyKind::kAllocate:
      return "allocate";
    case DependencyKind::kTrace:
      return "trace";
  }
  return "use";
}

void Association::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Property& Association::add_end(std::string name, Classifier& end_type) {
  Property& ref = add_end(std::move(name));
  ref.set_type(end_type);
  return ref;
}

Property& Association::add_end(std::string name) {
  auto end = std::make_unique<Property>(std::move(name));
  Property& ref = *end;
  model().register_element(ref, *this);
  ends_.push_back(std::move(end));
  return ref;
}

Property* Association::opposite(const Property& end) const {
  if (!is_binary()) return nullptr;
  if (ends_[0].get() == &end) return ends_[1].get();
  if (ends_[1].get() == &end) return ends_[0].get();
  return nullptr;
}

void Association::collect_owned(std::vector<Element*>& out) const {
  for (const auto& end : ends_) out.push_back(end.get());
}

void Dependency::accept(ElementVisitor& visitor) { visitor.visit(*this); }

std::string ConnectorEnd::str() const {
  std::string out;
  if (part != nullptr) out += part->name();
  if (port != nullptr) {
    if (!out.empty()) out += '.';
    out += port->name();
  }
  return out;
}

void Connector::accept(ElementVisitor& visitor) { visitor.visit(*this); }

}  // namespace umlsoc::uml
