// Deterministic synthetic model generator for tests and benchmarks (E1/E2/E7).
#pragma once

#include <cstdint>
#include <memory>

#include "support/rng.hpp"
#include "uml/package.hpp"

namespace umlsoc::uml {

/// Shape parameters of a generated model. Defaults give a small but
/// structurally rich model; benchmarks sweep `packages`/`classes_per_package`.
struct SyntheticSpec {
  std::uint64_t seed = 1;
  std::size_t packages = 4;
  std::size_t classes_per_package = 8;
  std::size_t properties_per_class = 4;
  std::size_t operations_per_class = 3;
  std::size_t parameters_per_operation = 2;
  std::size_t interfaces_per_package = 2;
  std::size_t associations_per_package = 4;
  std::size_t enumerations_per_package = 1;
  /// Probability that a class gets a generalization to an earlier class.
  double generalization_probability = 0.3;
  /// Probability that a class realizes an interface of its package.
  double realization_probability = 0.3;
};

/// Builds a valid model (passes uml::validate) with the requested shape.
/// Same spec => structurally identical model, ids included.
[[nodiscard]] std::unique_ptr<Model> make_synthetic_model(const SyntheticSpec& spec);

}  // namespace umlsoc::uml
