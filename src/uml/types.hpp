// Classifiers and their features: Class, Interface, DataType, Enumeration,
// Signal, Component, Property, Operation, Parameter, Port.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "uml/element.hpp"

namespace umlsoc::uml {

class Class;
class Classifier;
class Connector;
class Interface;
class Operation;
class Port;
class Property;

/// UML multiplicity [lower..upper]; upper == kUnlimited means "*".
struct Multiplicity {
  static constexpr int kUnlimited = -1;

  int lower = 1;
  int upper = 1;

  [[nodiscard]] bool is_valid() const {
    return lower >= 0 && (upper == kUnlimited || upper >= lower);
  }
  [[nodiscard]] bool is_many() const { return upper == kUnlimited || upper > 1; }
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Multiplicity&, const Multiplicity&) = default;
};

enum class AggregationKind { kNone, kShared, kComposite };

[[nodiscard]] std::string_view to_string(AggregationKind kind);

/// Abstract base for everything that can be the type of a Property/Parameter.
class Classifier : public NamedElement {
 public:
  [[nodiscard]] bool is_abstract() const { return is_abstract_; }
  void set_abstract(bool value) { is_abstract_ = value; }

  /// Direct generalizations (this -> more general classifier).
  [[nodiscard]] const std::vector<Classifier*>& generals() const { return generals_; }
  void add_generalization(Classifier& general) { generals_.push_back(&general); }

  /// Reflexive-transitive generalization check; cycle-safe.
  [[nodiscard]] bool conforms_to(const Classifier& other) const;

 protected:
  using NamedElement::NamedElement;

 private:
  bool is_abstract_ = false;
  std::vector<Classifier*> generals_;
};

/// Structural feature of a classifier (attribute or association end / part).
class Property final : public NamedElement {
 public:
  explicit Property(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kProperty; }
  void accept(ElementVisitor& visitor) override;

  [[nodiscard]] Classifier* type() const { return type_; }
  void set_type(Classifier& type) { type_ = &type; }

  [[nodiscard]] const Multiplicity& multiplicity() const { return multiplicity_; }
  void set_multiplicity(Multiplicity m) { multiplicity_ = m; }

  [[nodiscard]] AggregationKind aggregation() const { return aggregation_; }
  void set_aggregation(AggregationKind kind) { aggregation_ = kind; }

  /// Default value as concrete-syntax text, e.g. "0", "true", "IDLE".
  [[nodiscard]] const std::string& default_value() const { return default_value_; }
  void set_default_value(std::string value) { default_value_ = std::move(value); }

  [[nodiscard]] bool is_read_only() const { return is_read_only_; }
  void set_read_only(bool value) { is_read_only_ = value; }

  [[nodiscard]] bool is_static() const { return is_static_; }
  void set_static(bool value) { is_static_ = value; }

  /// True for composite parts of a composite structure (has class type and
  /// composite aggregation); these become sub-module instances in HW.
  [[nodiscard]] bool is_part() const;

 private:
  Classifier* type_ = nullptr;
  Multiplicity multiplicity_;
  AggregationKind aggregation_ = AggregationKind::kNone;
  std::string default_value_;
  bool is_read_only_ = false;
  bool is_static_ = false;
};

enum class ParameterDirection { kIn, kInOut, kOut, kReturn };

[[nodiscard]] std::string_view to_string(ParameterDirection direction);

class Parameter final : public NamedElement {
 public:
  explicit Parameter(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kParameter; }
  void accept(ElementVisitor& visitor) override;

  [[nodiscard]] Classifier* type() const { return type_; }
  void set_type(Classifier& type) { type_ = &type; }

  [[nodiscard]] ParameterDirection direction() const { return direction_; }
  void set_direction(ParameterDirection direction) { direction_ = direction; }

  [[nodiscard]] const std::string& default_value() const { return default_value_; }
  void set_default_value(std::string value) { default_value_ = std::move(value); }

 private:
  Classifier* type_ = nullptr;
  ParameterDirection direction_ = ParameterDirection::kIn;
  std::string default_value_;
};

/// Behavioral feature. The optional `body` holds ASL text (DESIGN.md §2.8)
/// that module `asl` parses to make the model executable (xUML-style).
class Operation final : public NamedElement {
 public:
  explicit Operation(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kOperation; }
  void accept(ElementVisitor& visitor) override;

  Parameter& add_parameter(std::string name, Classifier* type = nullptr,
                           ParameterDirection direction = ParameterDirection::kIn);
  [[nodiscard]] const std::vector<std::unique_ptr<Parameter>>& parameters() const {
    return parameters_;
  }

  /// The return parameter's type, or nullptr for void operations.
  [[nodiscard]] Classifier* return_type() const;
  void set_return_type(Classifier& type);

  [[nodiscard]] bool is_abstract() const { return is_abstract_; }
  void set_abstract(bool value) { is_abstract_ = value; }

  [[nodiscard]] bool is_query() const { return is_query_; }
  void set_query(bool value) { is_query_ = value; }

  [[nodiscard]] const std::string& body() const { return body_; }
  void set_body(std::string body) { body_ = std::move(body); }

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

 private:
  std::vector<std::unique_ptr<Parameter>> parameters_;
  bool is_abstract_ = false;
  bool is_query_ = false;
  std::string body_;
};

/// Hardware-oriented port direction; UML 2.0 ports have no direction, but
/// the SoC profile (module `soc`) gives «HwModule» ports one.
enum class PortDirection { kIn, kOut, kInOut };

[[nodiscard]] std::string_view to_string(PortDirection direction);

/// Interaction point on the boundary of a Class/Component.
class Port final : public NamedElement {
 public:
  explicit Port(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kPort; }
  void accept(ElementVisitor& visitor) override;

  [[nodiscard]] Classifier* type() const { return type_; }
  void set_type(Classifier& type) { type_ = &type; }

  [[nodiscard]] PortDirection direction() const { return direction_; }
  void set_direction(PortDirection direction) { direction_ = direction; }

  void add_provided(Interface& interface) { provided_.push_back(&interface); }
  void add_required(Interface& interface) { required_.push_back(&interface); }
  [[nodiscard]] const std::vector<Interface*>& provided() const { return provided_; }
  [[nodiscard]] const std::vector<Interface*>& required() const { return required_; }

  [[nodiscard]] bool is_service() const { return is_service_; }
  void set_service(bool value) { is_service_ = value; }

  /// Bit width for HW signal ports (1 for plain wires); interpreted by the
  /// RTL generator, ignored elsewhere.
  [[nodiscard]] int width() const { return width_; }
  void set_width(int width) { width_ = width; }

 private:
  Classifier* type_ = nullptr;
  PortDirection direction_ = PortDirection::kInOut;
  std::vector<Interface*> provided_;
  std::vector<Interface*> required_;
  bool is_service_ = true;
  int width_ = 1;
};

/// UML Class, including UML 2.0 composite-structure features (parts via
/// composite Properties, Ports, and owned Connectors).
class Class : public Classifier {
 public:
  // Constructor and destructor are out-of-line: member cleanup needs the
  // complete Connector type (defined in relationships.hpp), which this
  // header only forward-declares.
  explicit Class(std::string name);
  ~Class() override;

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kClass; }
  void accept(ElementVisitor& visitor) override;

  Property& add_property(std::string name, Classifier* type = nullptr);
  Operation& add_operation(std::string name);
  Port& add_port(std::string name, PortDirection direction = PortDirection::kInOut);
  Connector& add_connector(std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<Property>>& properties() const {
    return properties_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Operation>>& operations() const {
    return operations_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<Port>>& ports() const { return ports_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Connector>>& connectors() const {
    return connectors_;
  }

  /// Own and inherited properties, most-derived first.
  [[nodiscard]] std::vector<Property*> all_properties() const;
  /// Own and inherited operations, most-derived first.
  [[nodiscard]] std::vector<Operation*> all_operations() const;

  [[nodiscard]] Property* find_property(std::string_view name) const;
  [[nodiscard]] Operation* find_operation(std::string_view name) const;
  [[nodiscard]] Port* find_port(std::string_view name) const;

  void add_interface_realization(Interface& contract) { realizations_.push_back(&contract); }
  [[nodiscard]] const std::vector<Interface*>& interface_realizations() const {
    return realizations_;
  }

  /// Active classes own a thread of control; state machines attach to them.
  [[nodiscard]] bool is_active() const { return is_active_; }
  void set_active(bool value) { is_active_ = value; }

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

 private:
  std::vector<std::unique_ptr<Property>> properties_;
  std::vector<std::unique_ptr<Operation>> operations_;
  std::vector<std::unique_ptr<Port>> ports_;
  std::vector<std::unique_ptr<Connector>> connectors_;
  std::vector<Interface*> realizations_;
  bool is_active_ = false;
};

/// UML Component: a Class that additionally advertises provided/required
/// interfaces as its external contract (the "IP core" view, paper §4).
class Component final : public Class {
 public:
  explicit Component(std::string name) : Class(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kComponent; }
  void accept(ElementVisitor& visitor) override;

  void add_provided(Interface& interface) { provided_.push_back(&interface); }
  void add_required(Interface& interface) { required_.push_back(&interface); }
  [[nodiscard]] const std::vector<Interface*>& provided() const { return provided_; }
  [[nodiscard]] const std::vector<Interface*>& required() const { return required_; }

 private:
  std::vector<Interface*> provided_;
  std::vector<Interface*> required_;
};

class Interface final : public Classifier {
 public:
  explicit Interface(std::string name) : Classifier(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kInterface; }
  void accept(ElementVisitor& visitor) override;

  Operation& add_operation(std::string name);
  [[nodiscard]] const std::vector<std::unique_ptr<Operation>>& operations() const {
    return operations_;
  }
  [[nodiscard]] Operation* find_operation(std::string_view name) const;

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

 private:
  std::vector<std::unique_ptr<Operation>> operations_;
};

class DataType : public Classifier {
 public:
  explicit DataType(std::string name) : Classifier(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kDataType; }
  void accept(ElementVisitor& visitor) override;
};

/// Built-in value types ("Integer", "Boolean", "Bit", "Bit[N]", ...).
class PrimitiveType final : public DataType {
 public:
  explicit PrimitiveType(std::string name) : DataType(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kPrimitiveType; }
  void accept(ElementVisitor& visitor) override;

  /// Bit width when mapped to hardware (0 = not a synthesizable type).
  [[nodiscard]] int bit_width() const { return bit_width_; }
  void set_bit_width(int width) { bit_width_ = width; }

 private:
  int bit_width_ = 0;
};

class Enumeration final : public DataType {
 public:
  explicit Enumeration(std::string name) : DataType(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kEnumeration; }
  void accept(ElementVisitor& visitor) override;

  void add_literal(std::string literal) { literals_.push_back(std::move(literal)); }
  [[nodiscard]] const std::vector<std::string>& literals() const { return literals_; }
  [[nodiscard]] std::optional<std::size_t> literal_index(std::string_view literal) const;

 private:
  std::vector<std::string> literals_;
};

/// Asynchronous signal type; triggers in state machines reference these.
class Signal final : public Classifier {
 public:
  explicit Signal(std::string name) : Classifier(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kSignal; }
  void accept(ElementVisitor& visitor) override;

  Property& add_property(std::string name, Classifier* type = nullptr);
  [[nodiscard]] const std::vector<std::unique_ptr<Property>>& properties() const {
    return properties_;
  }

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

 private:
  std::vector<std::unique_ptr<Property>> properties_;
};

}  // namespace umlsoc::uml
