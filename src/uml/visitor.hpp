// Visitor over the concrete metaclasses. Default implementations do nothing,
// so passes override only what they care about. `walk` drives a pre-order
// traversal of the ownership tree.
#pragma once

#include "uml/instance.hpp"
#include "uml/package.hpp"

namespace umlsoc::uml {

class ElementVisitor {
 public:
  virtual ~ElementVisitor() = default;

  virtual void visit(Model&) {}
  virtual void visit(Package&) {}
  virtual void visit(Profile&) {}
  virtual void visit(Stereotype&) {}
  virtual void visit(Class&) {}
  virtual void visit(Component&) {}
  virtual void visit(Interface&) {}
  virtual void visit(DataType&) {}
  virtual void visit(PrimitiveType&) {}
  virtual void visit(Enumeration&) {}
  virtual void visit(Signal&) {}
  virtual void visit(Property&) {}
  virtual void visit(Operation&) {}
  virtual void visit(Parameter&) {}
  virtual void visit(Port&) {}
  virtual void visit(Association&) {}
  virtual void visit(Connector&) {}
  virtual void visit(Dependency&) {}
  virtual void visit(InstanceSpecification&) {}
};

/// Pre-order traversal: visits `root`, then all owned elements recursively.
void walk(Element& root, ElementVisitor& visitor);

}  // namespace umlsoc::uml
