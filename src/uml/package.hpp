// Package, Profile/Stereotype, and the Model root (factory + id index).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "uml/relationships.hpp"
#include "uml/types.hpp"

namespace umlsoc::uml {

class InstanceSpecification;
class Model;
class Profile;
class Stereotype;

/// Namespace grouping packageable elements. All factory methods register the
/// created element with the owning Model, which assigns its Id.
class Package : public NamedElement {
 public:
  explicit Package(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kPackage; }
  void accept(ElementVisitor& visitor) override;

  Package& add_package(std::string name);
  Class& add_class(std::string name);
  Component& add_component(std::string name);
  Interface& add_interface(std::string name);
  DataType& add_data_type(std::string name);
  PrimitiveType& add_primitive_type(std::string name, int bit_width = 0);
  Enumeration& add_enumeration(std::string name);
  Signal& add_signal(std::string name);
  Association& add_association(std::string name);
  Dependency& add_dependency(std::string name, NamedElement& client, NamedElement& supplier);
  /// Unresolved variant for deserializers; client/supplier set afterwards.
  Dependency& add_dependency(std::string name);
  InstanceSpecification& add_instance(std::string name, Classifier* classifier = nullptr);

  [[nodiscard]] const std::vector<std::unique_ptr<NamedElement>>& members() const {
    return members_;
  }

  /// First direct member with this name, or nullptr.
  [[nodiscard]] NamedElement* find_member(std::string_view name) const;

  /// Internal: detaches and returns the owning pointer for `member`
  /// (nullptr when it is not a direct member). Callers must also
  /// unregister the subtree from the Model — use uml::remove_member.
  std::unique_ptr<NamedElement> release_member(NamedElement& member);

  /// All direct members of dynamic type T.
  template <typename T>
  [[nodiscard]] std::vector<T*> members_of_type() const {
    std::vector<T*> out;
    for (const auto& member : members_) {
      if (auto* typed = dynamic_cast<T*>(member.get())) out.push_back(typed);
    }
    return out;
  }

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

  /// Registers `element` under this package and returns a typed reference.
  template <typename T>
  T& adopt(std::unique_ptr<T> element);

 private:
  std::vector<std::unique_ptr<NamedElement>> members_;
};

/// A stereotype definition inside a Profile; extends one or more metaclasses
/// and may declare tag attributes with defaults.
class Stereotype final : public NamedElement {
 public:
  explicit Stereotype(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kStereotype; }
  void accept(ElementVisitor& visitor) override;

  void add_extended_metaclass(ElementKind metaclass) { extended_.push_back(metaclass); }
  [[nodiscard]] const std::vector<ElementKind>& extended_metaclasses() const { return extended_; }
  [[nodiscard]] bool extends(ElementKind metaclass) const;

  struct TagDefinition {
    std::string name;
    std::string default_value;
  };
  void add_tag_definition(std::string name, std::string default_value = "");
  [[nodiscard]] const std::vector<TagDefinition>& tag_definitions() const { return tags_; }
  [[nodiscard]] const TagDefinition* find_tag_definition(std::string_view name) const;

 private:
  std::vector<ElementKind> extended_;
  std::vector<TagDefinition> tags_;
};

/// Package of stereotypes tailoring UML to a domain (paper §2: "a UML
/// profile defines a relevant domain-specific UML subset").
class Profile final : public Package {
 public:
  explicit Profile(std::string name) : Package(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kProfile; }
  void accept(ElementVisitor& visitor) override;

  Stereotype& add_stereotype(std::string name);
  [[nodiscard]] Stereotype* find_stereotype(std::string_view name) const;
};

/// Root of the ownership tree; owns the id generator and id -> element index.
class Model final : public Package {
 public:
  explicit Model(std::string name);

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kModel; }
  void accept(ElementVisitor& visitor) override;

  Profile& add_profile(std::string name);

  /// Declares a profile as applied to this model (validation uses this to
  /// check stereotype applications come from applied profiles only).
  void apply_profile(Profile& profile) { applied_profiles_.push_back(&profile); }
  [[nodiscard]] const std::vector<Profile*>& applied_profiles() const {
    return applied_profiles_;
  }

  [[nodiscard]] Element* find(support::Id id) const;
  [[nodiscard]] std::size_t element_count() const { return index_.size(); }

  /// Internal: assigns id/owner/model to a freshly created element. Called
  /// by the factory methods; user code never needs it directly.
  void register_element(Element& element, Element& owner);

  /// Internal: registers with a pre-assigned id (deserialization path).
  void register_element_with_id(Element& element, Element& owner, support::Id id);

  /// Internal: drops `element` from the id index (non-recursive).
  void unregister_element(const Element& element);

  /// Returns the model-wide primitive with this name, creating it inside an
  /// implicitly managed "<primitives>" package on first use.
  PrimitiveType& primitive(std::string_view name, int bit_width = 0);

 private:
  support::IdGenerator id_generator_;
  std::unordered_map<support::Id, Element*> index_;
  std::vector<Profile*> applied_profiles_;
  Package* primitives_package_ = nullptr;
};

}  // namespace umlsoc::uml
