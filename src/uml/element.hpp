// Base classes of the UML 2.0 metamodel subset (DESIGN.md §2, module `uml`).
//
// Ownership follows the UML composition tree: every element is owned by
// exactly one parent through std::unique_ptr; all cross-references
// (types, association ends, generalizations, ...) are raw non-owning
// pointers into the same Model.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/ids.hpp"

namespace umlsoc::uml {

class Element;
class ElementVisitor;
class Model;
class Stereotype;

/// Concrete metaclass tag; used for serialization and fast dispatch.
enum class ElementKind {
  kModel,
  kPackage,
  kProfile,
  kStereotype,
  kClass,
  kComponent,
  kInterface,
  kDataType,
  kPrimitiveType,
  kEnumeration,
  kSignal,
  kProperty,
  kOperation,
  kParameter,
  kPort,
  kAssociation,
  kConnector,
  kDependency,
  kInstanceSpecification,
};

[[nodiscard]] std::string_view to_string(ElementKind kind);

/// UML visibility; defaults to public as in most concrete syntaxes.
enum class Visibility { kPublic, kProtected, kPrivate, kPackage };

[[nodiscard]] std::string_view to_string(Visibility visibility);

/// One stereotype applied to an element plus its tagged values.
struct StereotypeApplication {
  const Stereotype* stereotype = nullptr;
  std::map<std::string, std::string> tagged_values;
};

/// Root of the metamodel. Every element has a model-unique Id, an owner
/// (nullptr only for the Model itself), and may carry applied stereotypes
/// and a documentation comment.
class Element {
 public:
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] virtual ElementKind kind() const = 0;
  virtual void accept(ElementVisitor& visitor) = 0;

  [[nodiscard]] support::Id id() const { return id_; }
  [[nodiscard]] Element* owner() const { return owner_; }
  [[nodiscard]] Model& model() const { return *model_; }

  [[nodiscard]] const std::string& documentation() const { return documentation_; }
  void set_documentation(std::string text) { documentation_ = std::move(text); }

  // --- Profile support (DESIGN.md: `soc` builds on this) ------------------

  /// Applies `stereotype`; repeat applications return the existing record.
  StereotypeApplication& apply_stereotype(const Stereotype& stereotype);
  [[nodiscard]] bool has_stereotype(const Stereotype& stereotype) const;
  [[nodiscard]] bool has_stereotype(std::string_view stereotype_name) const;
  /// Tagged value for `key` under `stereotype`; empty string when unset.
  [[nodiscard]] std::string tagged_value(const Stereotype& stereotype, const std::string& key) const;
  void set_tagged_value(const Stereotype& stereotype, std::string key, std::string value);
  [[nodiscard]] const std::vector<StereotypeApplication>& stereotype_applications() const {
    return applications_;
  }

  /// Direct children in the ownership tree, in a stable order.
  [[nodiscard]] std::vector<Element*> owned_elements() const;

 protected:
  Element() = default;

  /// Appends the children this concrete class owns; subclasses extend.
  virtual void collect_owned(std::vector<Element*>& out) const;

 private:
  friend class Model;  // Assigns id/owner/model at registration time.

  support::Id id_;
  Element* owner_ = nullptr;
  Model* model_ = nullptr;
  std::string documentation_;
  std::vector<StereotypeApplication> applications_;
};

/// Element with a name; nearly everything in the subset is named.
class NamedElement : public Element {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] Visibility visibility() const { return visibility_; }
  void set_visibility(Visibility visibility) { visibility_ = visibility; }

  /// Dot-separated path from the model root, e.g. "Soc.Uart.tx_fifo".
  [[nodiscard]] std::string qualified_name() const;

 protected:
  explicit NamedElement(std::string name) : name_(std::move(name)) {}

 private:
  std::string name_;
  Visibility visibility_ = Visibility::kPublic;
};

}  // namespace umlsoc::uml
