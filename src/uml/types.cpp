#include "uml/types.hpp"

#include <unordered_set>

#include "uml/package.hpp"
#include "uml/relationships.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

std::string Multiplicity::str() const {
  if (lower == 1 && upper == 1) return "1";
  if (lower == 0 && upper == kUnlimited) return "*";
  std::string out = std::to_string(lower) + "..";
  out += upper == kUnlimited ? "*" : std::to_string(upper);
  return out;
}

std::string_view to_string(AggregationKind kind) {
  switch (kind) {
    case AggregationKind::kNone:
      return "none";
    case AggregationKind::kShared:
      return "shared";
    case AggregationKind::kComposite:
      return "composite";
  }
  return "none";
}

std::string_view to_string(ParameterDirection direction) {
  switch (direction) {
    case ParameterDirection::kIn:
      return "in";
    case ParameterDirection::kInOut:
      return "inout";
    case ParameterDirection::kOut:
      return "out";
    case ParameterDirection::kReturn:
      return "return";
  }
  return "in";
}

std::string_view to_string(PortDirection direction) {
  switch (direction) {
    case PortDirection::kIn:
      return "in";
    case PortDirection::kOut:
      return "out";
    case PortDirection::kInOut:
      return "inout";
  }
  return "inout";
}

// --- Classifier -------------------------------------------------------------

bool Classifier::conforms_to(const Classifier& other) const {
  std::unordered_set<const Classifier*> seen;
  std::vector<const Classifier*> stack{this};
  while (!stack.empty()) {
    const Classifier* current = stack.back();
    stack.pop_back();
    if (current == &other) return true;
    if (!seen.insert(current).second) continue;  // Cycle guard.
    for (Classifier* general : current->generals()) stack.push_back(general);
  }
  return false;
}

// --- Property ---------------------------------------------------------------

void Property::accept(ElementVisitor& visitor) { visitor.visit(*this); }

bool Property::is_part() const {
  return aggregation_ == AggregationKind::kComposite && type_ != nullptr &&
         dynamic_cast<const Class*>(type_) != nullptr;
}

// --- Parameter / Operation ---------------------------------------------------

void Parameter::accept(ElementVisitor& visitor) { visitor.visit(*this); }

void Operation::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Parameter& Operation::add_parameter(std::string name, Classifier* type,
                                    ParameterDirection direction) {
  auto parameter = std::make_unique<Parameter>(std::move(name));
  if (type != nullptr) parameter->set_type(*type);
  parameter->set_direction(direction);
  Parameter& ref = *parameter;
  model().register_element(ref, *this);
  parameters_.push_back(std::move(parameter));
  return ref;
}

Classifier* Operation::return_type() const {
  for (const auto& parameter : parameters_) {
    if (parameter->direction() == ParameterDirection::kReturn) return parameter->type();
  }
  return nullptr;
}

void Operation::set_return_type(Classifier& type) {
  for (const auto& parameter : parameters_) {
    if (parameter->direction() == ParameterDirection::kReturn) {
      parameter->set_type(type);
      return;
    }
  }
  add_parameter("return", &type, ParameterDirection::kReturn);
}

void Operation::collect_owned(std::vector<Element*>& out) const {
  for (const auto& parameter : parameters_) out.push_back(parameter.get());
}

// --- Port --------------------------------------------------------------------

void Port::accept(ElementVisitor& visitor) { visitor.visit(*this); }

// --- Class -------------------------------------------------------------------

Class::Class(std::string name) : Classifier(std::move(name)) {}

Class::~Class() = default;

void Class::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Property& Class::add_property(std::string name, Classifier* type) {
  auto property = std::make_unique<Property>(std::move(name));
  if (type != nullptr) property->set_type(*type);
  Property& ref = *property;
  model().register_element(ref, *this);
  properties_.push_back(std::move(property));
  return ref;
}

Operation& Class::add_operation(std::string name) {
  auto operation = std::make_unique<Operation>(std::move(name));
  Operation& ref = *operation;
  model().register_element(ref, *this);
  operations_.push_back(std::move(operation));
  return ref;
}

Port& Class::add_port(std::string name, PortDirection direction) {
  auto port = std::make_unique<Port>(std::move(name));
  port->set_direction(direction);
  Port& ref = *port;
  model().register_element(ref, *this);
  ports_.push_back(std::move(port));
  return ref;
}

Connector& Class::add_connector(std::string name) {
  auto connector = std::make_unique<Connector>(std::move(name));
  Connector& ref = *connector;
  model().register_element(ref, *this);
  connectors_.push_back(std::move(connector));
  return ref;
}

namespace {

// Collects features over the generalization closure, most-derived first,
// skipping classifiers already visited (diamond / cycle safety).
template <typename FeatureT, typename GetterT>
std::vector<FeatureT*> collect_features(const Class& start, GetterT getter) {
  std::vector<FeatureT*> out;
  std::unordered_set<const Classifier*> seen;
  std::vector<const Classifier*> stack{&start};
  while (!stack.empty()) {
    const Classifier* current = stack.back();
    stack.pop_back();
    if (!seen.insert(current).second) continue;
    if (const auto* as_class = dynamic_cast<const Class*>(current)) {
      for (const auto& feature : getter(*as_class)) out.push_back(feature.get());
    }
    for (Classifier* general : current->generals()) stack.push_back(general);
  }
  return out;
}

}  // namespace

std::vector<Property*> Class::all_properties() const {
  return collect_features<Property>(*this, [](const Class& c) -> const auto& {
    return c.properties();
  });
}

std::vector<Operation*> Class::all_operations() const {
  return collect_features<Operation>(*this, [](const Class& c) -> const auto& {
    return c.operations();
  });
}

Property* Class::find_property(std::string_view name) const {
  for (const auto& property : properties_) {
    if (property->name() == name) return property.get();
  }
  return nullptr;
}

Operation* Class::find_operation(std::string_view name) const {
  for (const auto& operation : operations_) {
    if (operation->name() == name) return operation.get();
  }
  return nullptr;
}

Port* Class::find_port(std::string_view name) const {
  for (const auto& port : ports_) {
    if (port->name() == name) return port.get();
  }
  return nullptr;
}

void Class::collect_owned(std::vector<Element*>& out) const {
  for (const auto& property : properties_) out.push_back(property.get());
  for (const auto& operation : operations_) out.push_back(operation.get());
  for (const auto& port : ports_) out.push_back(port.get());
  for (const auto& connector : connectors_) out.push_back(connector.get());
}

// --- Component ----------------------------------------------------------------

void Component::accept(ElementVisitor& visitor) { visitor.visit(*this); }

// --- Interface ------------------------------------------------------------------

void Interface::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Operation& Interface::add_operation(std::string name) {
  auto operation = std::make_unique<Operation>(std::move(name));
  Operation& ref = *operation;
  model().register_element(ref, *this);
  operations_.push_back(std::move(operation));
  return ref;
}

Operation* Interface::find_operation(std::string_view name) const {
  for (const auto& operation : operations_) {
    if (operation->name() == name) return operation.get();
  }
  return nullptr;
}

void Interface::collect_owned(std::vector<Element*>& out) const {
  for (const auto& operation : operations_) out.push_back(operation.get());
}

// --- Data types -------------------------------------------------------------------

void DataType::accept(ElementVisitor& visitor) { visitor.visit(*this); }
void PrimitiveType::accept(ElementVisitor& visitor) { visitor.visit(*this); }
void Enumeration::accept(ElementVisitor& visitor) { visitor.visit(*this); }

std::optional<std::size_t> Enumeration::literal_index(std::string_view literal) const {
  for (std::size_t i = 0; i < literals_.size(); ++i) {
    if (literals_[i] == literal) return i;
  }
  return std::nullopt;
}

// --- Signal ---------------------------------------------------------------------------

void Signal::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Property& Signal::add_property(std::string name, Classifier* type) {
  auto property = std::make_unique<Property>(std::move(name));
  if (type != nullptr) property->set_type(*type);
  Property& ref = *property;
  model().register_element(ref, *this);
  properties_.push_back(std::move(property));
  return ref;
}

void Signal::collect_owned(std::vector<Element*>& out) const {
  for (const auto& property : properties_) out.push_back(property.get());
}

}  // namespace umlsoc::uml
