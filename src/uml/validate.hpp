// Well-formedness validation for the structural model (DESIGN.md §2.2).
//
// One pass reports every violation through the DiagnosticSink; it never
// mutates the model and never stops early.
#pragma once

#include "support/diagnostics.hpp"
#include "uml/package.hpp"

namespace umlsoc::uml {

/// Validates the whole model. Returns true when no errors were reported
/// (warnings/notes do not fail validation).
bool validate(Model& model, support::DiagnosticSink& sink);

}  // namespace umlsoc::uml
