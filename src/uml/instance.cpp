#include "uml/instance.hpp"

#include "uml/visitor.hpp"

namespace umlsoc::uml {

void InstanceSpecification::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Slot& InstanceSpecification::slot_for(const Property& feature) {
  for (Slot& slot : slots_) {
    if (slot.defining_feature == &feature) return slot;
  }
  slots_.push_back(Slot{&feature, {}, nullptr});
  return slots_.back();
}

void InstanceSpecification::set_slot(const Property& feature, std::string value) {
  Slot& slot = slot_for(feature);
  slot.value = std::move(value);
  slot.reference = nullptr;
}

void InstanceSpecification::set_slot_reference(const Property& feature,
                                               InstanceSpecification& reference) {
  Slot& slot = slot_for(feature);
  slot.value.clear();
  slot.reference = &reference;
}

const Slot* InstanceSpecification::find_slot(std::string_view feature_name) const {
  for (const Slot& slot : slots_) {
    if (slot.defining_feature != nullptr && slot.defining_feature->name() == feature_name) {
      return &slot;
    }
  }
  return nullptr;
}

}  // namespace umlsoc::uml
