// Relationship elements: Association, Dependency, Connector.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "uml/types.hpp"

namespace umlsoc::uml {

/// Binary (or n-ary) association. Member-end Properties are owned by the
/// association itself — the common simplification for tool interchange.
class Association final : public NamedElement {
 public:
  explicit Association(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kAssociation; }
  void accept(ElementVisitor& visitor) override;

  /// Adds a member end typed by `end_type` (the classifier at that end).
  Property& add_end(std::string name, Classifier& end_type);
  /// Untyped variant for deserializers; the type is resolved afterwards.
  Property& add_end(std::string name);

  [[nodiscard]] const std::vector<std::unique_ptr<Property>>& ends() const { return ends_; }
  [[nodiscard]] bool is_binary() const { return ends_.size() == 2; }

  /// For a binary association, the end opposite to `end`; nullptr otherwise.
  [[nodiscard]] Property* opposite(const Property& end) const;

 protected:
  void collect_owned(std::vector<Element*>& out) const override;

 private:
  std::vector<std::unique_ptr<Property>> ends_;
};

enum class DependencyKind { kUse, kRealize, kAllocate, kTrace };

[[nodiscard]] std::string_view to_string(DependencyKind kind);

/// Directed supplier/client dependency; «Allocate» dependencies carry the
/// HW/SW allocation decisions of the SoC profile.
class Dependency final : public NamedElement {
 public:
  explicit Dependency(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kDependency; }
  void accept(ElementVisitor& visitor) override;

  [[nodiscard]] NamedElement* client() const { return client_; }
  [[nodiscard]] NamedElement* supplier() const { return supplier_; }
  void set_client(NamedElement& client) { client_ = &client; }
  void set_supplier(NamedElement& supplier) { supplier_ = &supplier; }

  [[nodiscard]] DependencyKind dependency_kind() const { return dependency_kind_; }
  void set_dependency_kind(DependencyKind kind) { dependency_kind_ = kind; }

 private:
  NamedElement* client_ = nullptr;
  NamedElement* supplier_ = nullptr;
  DependencyKind dependency_kind_ = DependencyKind::kUse;
};

/// One attachment point of a connector: a port on a part (`part` null for
/// the containing classifier's own port), or a plain part reference.
struct ConnectorEnd {
  Property* part = nullptr;
  Port* port = nullptr;

  [[nodiscard]] bool is_valid() const { return part != nullptr || port != nullptr; }
  [[nodiscard]] std::string str() const;
};

/// Wiring inside a composite structure (paper §4: "seamless integration of
/// existing IP" — connectors bind IP core ports together).
class Connector final : public NamedElement {
 public:
  explicit Connector(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override { return ElementKind::kConnector; }
  void accept(ElementVisitor& visitor) override;

  void add_end(ConnectorEnd end) { ends_.push_back(end); }
  [[nodiscard]] const std::vector<ConnectorEnd>& ends() const { return ends_; }

 private:
  std::vector<ConnectorEnd> ends_;
};

}  // namespace umlsoc::uml
