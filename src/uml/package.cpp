#include "uml/package.hpp"

#include "uml/instance.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

// --- Package -----------------------------------------------------------------

void Package::accept(ElementVisitor& visitor) { visitor.visit(*this); }

template <typename T>
T& Package::adopt(std::unique_ptr<T> element) {
  T& ref = *element;
  model().register_element(ref, *this);
  members_.push_back(std::move(element));
  return ref;
}

Package& Package::add_package(std::string name) {
  return adopt(std::make_unique<Package>(std::move(name)));
}

Class& Package::add_class(std::string name) {
  return adopt(std::make_unique<Class>(std::move(name)));
}

Component& Package::add_component(std::string name) {
  return adopt(std::make_unique<Component>(std::move(name)));
}

Interface& Package::add_interface(std::string name) {
  return adopt(std::make_unique<Interface>(std::move(name)));
}

DataType& Package::add_data_type(std::string name) {
  return adopt(std::make_unique<DataType>(std::move(name)));
}

PrimitiveType& Package::add_primitive_type(std::string name, int bit_width) {
  PrimitiveType& primitive = adopt(std::make_unique<PrimitiveType>(std::move(name)));
  primitive.set_bit_width(bit_width);
  return primitive;
}

Enumeration& Package::add_enumeration(std::string name) {
  return adopt(std::make_unique<Enumeration>(std::move(name)));
}

Signal& Package::add_signal(std::string name) {
  return adopt(std::make_unique<Signal>(std::move(name)));
}

Association& Package::add_association(std::string name) {
  return adopt(std::make_unique<Association>(std::move(name)));
}

Dependency& Package::add_dependency(std::string name, NamedElement& client,
                                    NamedElement& supplier) {
  Dependency& dependency = add_dependency(std::move(name));
  dependency.set_client(client);
  dependency.set_supplier(supplier);
  return dependency;
}

Dependency& Package::add_dependency(std::string name) {
  return adopt(std::make_unique<Dependency>(std::move(name)));
}

InstanceSpecification& Package::add_instance(std::string name, Classifier* classifier) {
  InstanceSpecification& instance =
      adopt(std::make_unique<InstanceSpecification>(std::move(name)));
  if (classifier != nullptr) instance.set_classifier(*classifier);
  return instance;
}

std::unique_ptr<NamedElement> Package::release_member(NamedElement& member) {
  for (auto it = members_.begin(); it != members_.end(); ++it) {
    if (it->get() == &member) {
      std::unique_ptr<NamedElement> released = std::move(*it);
      members_.erase(it);
      return released;
    }
  }
  return nullptr;
}

NamedElement* Package::find_member(std::string_view name) const {
  for (const auto& member : members_) {
    if (member->name() == name) return member.get();
  }
  return nullptr;
}

void Package::collect_owned(std::vector<Element*>& out) const {
  for (const auto& member : members_) out.push_back(member.get());
}

// --- Stereotype / Profile ------------------------------------------------------

void Stereotype::accept(ElementVisitor& visitor) { visitor.visit(*this); }

bool Stereotype::extends(ElementKind metaclass) const {
  for (ElementKind kind : extended_) {
    if (kind == metaclass) return true;
  }
  return false;
}

void Stereotype::add_tag_definition(std::string name, std::string default_value) {
  tags_.push_back(TagDefinition{std::move(name), std::move(default_value)});
}

const Stereotype::TagDefinition* Stereotype::find_tag_definition(std::string_view name) const {
  for (const TagDefinition& tag : tags_) {
    if (tag.name == name) return &tag;
  }
  return nullptr;
}

void Profile::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Stereotype& Profile::add_stereotype(std::string name) {
  return adopt(std::make_unique<Stereotype>(std::move(name)));
}

Stereotype* Profile::find_stereotype(std::string_view name) const {
  for (const auto& member : members()) {
    if (auto* stereotype = dynamic_cast<Stereotype*>(member.get())) {
      if (stereotype->name() == name) return stereotype;
    }
  }
  return nullptr;
}

// --- Model -----------------------------------------------------------------------

Model::Model(std::string name) : Package(std::move(name)) {
  // The model is its own root: it registers itself so every element,
  // including the root, has a valid id and model pointer.
  model_ = this;
  id_ = id_generator_.next();
  index_.emplace(id_, this);
}

void Model::accept(ElementVisitor& visitor) { visitor.visit(*this); }

Profile& Model::add_profile(std::string name) {
  return adopt(std::make_unique<Profile>(std::move(name)));
}

Element* Model::find(support::Id id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : it->second;
}

void Model::register_element(Element& element, Element& owner) {
  register_element_with_id(element, owner, id_generator_.next());
}

void Model::register_element_with_id(Element& element, Element& owner, support::Id id) {
  element.id_ = id;
  element.owner_ = &owner;
  element.model_ = this;
  id_generator_.reserve(id);
  index_.emplace(id, &element);
}

void Model::unregister_element(const Element& element) { index_.erase(element.id()); }

PrimitiveType& Model::primitive(std::string_view name, int bit_width) {
  if (primitives_package_ == nullptr) {
    // A deserialized model already contains the managed package; reuse it.
    if (auto* existing = dynamic_cast<Package*>(find_member("<primitives>"))) {
      primitives_package_ = existing;
    } else {
      primitives_package_ = &add_package("<primitives>");
    }
  }
  if (auto* existing =
          dynamic_cast<PrimitiveType*>(primitives_package_->find_member(name))) {
    return *existing;
  }
  return primitives_package_->add_primitive_type(std::string(name), bit_width);
}

}  // namespace umlsoc::uml
