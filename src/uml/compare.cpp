#include "uml/compare.hpp"

#include <string>

#include "uml/instance.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

namespace {

class Comparator {
 public:
  explicit Comparator(support::DiagnosticSink& sink) : sink_(sink) {}

  [[nodiscard]] bool equal() const { return equal_; }

  void compare(const NamedElement& left, const NamedElement& right) {
    if (left.kind() != right.kind()) {
      mismatch(left, "kind", std::string(to_string(left.kind())),
               std::string(to_string(right.kind())));
      return;  // Further comparison is meaningless on kind mismatch.
    }
    check(left, "name", left.name(), right.name());
    check(left, "visibility", std::string(to_string(left.visibility())),
          std::string(to_string(right.visibility())));
    check(left, "documentation", left.documentation(), right.documentation());
    compare_stereotypes(left, right);

    switch (left.kind()) {
      case ElementKind::kModel:
        compare_model(static_cast<const Model&>(left), static_cast<const Model&>(right));
        break;
      case ElementKind::kPackage:
      case ElementKind::kProfile:
        compare_package(static_cast<const Package&>(left), static_cast<const Package&>(right));
        break;
      case ElementKind::kStereotype:
        compare_stereotype(static_cast<const Stereotype&>(left),
                           static_cast<const Stereotype&>(right));
        break;
      case ElementKind::kClass:
      case ElementKind::kComponent:
        compare_class(static_cast<const Class&>(left), static_cast<const Class&>(right));
        break;
      case ElementKind::kInterface:
        compare_interface(static_cast<const Interface&>(left),
                          static_cast<const Interface&>(right));
        break;
      case ElementKind::kDataType:
        compare_classifier(static_cast<const Classifier&>(left),
                           static_cast<const Classifier&>(right));
        break;
      case ElementKind::kPrimitiveType:
        check(left, "bit_width",
              std::to_string(static_cast<const PrimitiveType&>(left).bit_width()),
              std::to_string(static_cast<const PrimitiveType&>(right).bit_width()));
        break;
      case ElementKind::kEnumeration:
        compare_enumeration(static_cast<const Enumeration&>(left),
                            static_cast<const Enumeration&>(right));
        break;
      case ElementKind::kSignal:
        compare_signal(static_cast<const Signal&>(left), static_cast<const Signal&>(right));
        break;
      case ElementKind::kProperty:
        compare_property(static_cast<const Property&>(left), static_cast<const Property&>(right));
        break;
      case ElementKind::kOperation:
        compare_operation(static_cast<const Operation&>(left),
                          static_cast<const Operation&>(right));
        break;
      case ElementKind::kParameter:
        compare_parameter(static_cast<const Parameter&>(left),
                          static_cast<const Parameter&>(right));
        break;
      case ElementKind::kPort:
        compare_port(static_cast<const Port&>(left), static_cast<const Port&>(right));
        break;
      case ElementKind::kAssociation:
        compare_association(static_cast<const Association&>(left),
                            static_cast<const Association&>(right));
        break;
      case ElementKind::kConnector:
        compare_connector(static_cast<const Connector&>(left),
                          static_cast<const Connector&>(right));
        break;
      case ElementKind::kDependency:
        compare_dependency(static_cast<const Dependency&>(left),
                           static_cast<const Dependency&>(right));
        break;
      case ElementKind::kInstanceSpecification:
        compare_instance(static_cast<const InstanceSpecification&>(left),
                         static_cast<const InstanceSpecification&>(right));
        break;
    }
  }

 private:
  static std::string ref_name(const NamedElement* element) {
    return element == nullptr ? "<null>" : element->qualified_name();
  }

  void mismatch(const NamedElement& at, std::string_view what, const std::string& left,
                const std::string& right) {
    equal_ = false;
    sink_.error(at.qualified_name(),
                std::string(what) + " differs: '" + left + "' vs '" + right + "'");
  }

  void check(const NamedElement& at, std::string_view what, const std::string& left,
             const std::string& right) {
    if (left != right) mismatch(at, what, left, right);
  }

  template <typename T>
  void compare_children(const NamedElement& at, const std::vector<std::unique_ptr<T>>& left,
                        const std::vector<std::unique_ptr<T>>& right, std::string_view what) {
    if (left.size() != right.size()) {
      mismatch(at, what, std::to_string(left.size()) + " children",
               std::to_string(right.size()) + " children");
      return;
    }
    for (std::size_t i = 0; i < left.size(); ++i) compare(*left[i], *right[i]);
  }

  void compare_stereotypes(const NamedElement& left, const NamedElement& right) {
    const auto& la = left.stereotype_applications();
    const auto& ra = right.stereotype_applications();
    if (la.size() != ra.size()) {
      mismatch(left, "stereotype application count", std::to_string(la.size()),
               std::to_string(ra.size()));
      return;
    }
    for (std::size_t i = 0; i < la.size(); ++i) {
      check(left, "applied stereotype", la[i].stereotype->name(), ra[i].stereotype->name());
      if (la[i].tagged_values != ra[i].tagged_values) {
        mismatch(left, "tagged values of <<" + la[i].stereotype->name() + ">>", "...", "...");
      }
    }
  }

  void compare_classifier(const Classifier& left, const Classifier& right) {
    check(left, "is_abstract", std::to_string(left.is_abstract()),
          std::to_string(right.is_abstract()));
    if (left.generals().size() != right.generals().size()) {
      mismatch(left, "generalization count", std::to_string(left.generals().size()),
               std::to_string(right.generals().size()));
      return;
    }
    for (std::size_t i = 0; i < left.generals().size(); ++i) {
      check(left, "general", ref_name(left.generals()[i]), ref_name(right.generals()[i]));
    }
  }

  void compare_class(const Class& left, const Class& right) {
    compare_classifier(left, right);
    check(left, "is_active", std::to_string(left.is_active()),
          std::to_string(right.is_active()));
    compare_children(left, left.properties(), right.properties(), "properties");
    compare_children(left, left.operations(), right.operations(), "operations");
    compare_children(left, left.ports(), right.ports(), "ports");
    compare_children(left, left.connectors(), right.connectors(), "connectors");
    if (left.interface_realizations().size() != right.interface_realizations().size()) {
      mismatch(left, "realization count",
               std::to_string(left.interface_realizations().size()),
               std::to_string(right.interface_realizations().size()));
    } else {
      for (std::size_t i = 0; i < left.interface_realizations().size(); ++i) {
        check(left, "realized interface", ref_name(left.interface_realizations()[i]),
              ref_name(right.interface_realizations()[i]));
      }
    }
    if (left.kind() == ElementKind::kComponent) {
      const auto& lc = static_cast<const Component&>(left);
      const auto& rc = static_cast<const Component&>(right);
      compare_ref_lists(left, "provided", lc.provided(), rc.provided());
      compare_ref_lists(left, "required", lc.required(), rc.required());
    }
  }

  template <typename T>
  void compare_ref_lists(const NamedElement& at, std::string_view what,
                         const std::vector<T*>& left, const std::vector<T*>& right) {
    if (left.size() != right.size()) {
      mismatch(at, std::string(what) + " count", std::to_string(left.size()),
               std::to_string(right.size()));
      return;
    }
    for (std::size_t i = 0; i < left.size(); ++i) {
      check(at, what, ref_name(left[i]), ref_name(right[i]));
    }
  }

  void compare_interface(const Interface& left, const Interface& right) {
    compare_classifier(left, right);
    compare_children(left, left.operations(), right.operations(), "operations");
  }

  void compare_enumeration(const Enumeration& left, const Enumeration& right) {
    if (left.literals() != right.literals()) {
      mismatch(left, "literals", std::to_string(left.literals().size()) + " literals",
               std::to_string(right.literals().size()) + " literals");
    }
  }

  void compare_signal(const Signal& left, const Signal& right) {
    compare_classifier(left, right);
    compare_children(left, left.properties(), right.properties(), "properties");
  }

  void compare_property(const Property& left, const Property& right) {
    check(left, "type", ref_name(left.type()), ref_name(right.type()));
    check(left, "multiplicity", left.multiplicity().str(), right.multiplicity().str());
    check(left, "aggregation", std::string(to_string(left.aggregation())),
          std::string(to_string(right.aggregation())));
    check(left, "default", left.default_value(), right.default_value());
    check(left, "read_only", std::to_string(left.is_read_only()),
          std::to_string(right.is_read_only()));
    check(left, "static", std::to_string(left.is_static()), std::to_string(right.is_static()));
  }

  void compare_operation(const Operation& left, const Operation& right) {
    check(left, "is_abstract", std::to_string(left.is_abstract()),
          std::to_string(right.is_abstract()));
    check(left, "is_query", std::to_string(left.is_query()), std::to_string(right.is_query()));
    check(left, "body", left.body(), right.body());
    compare_children(left, left.parameters(), right.parameters(), "parameters");
  }

  void compare_parameter(const Parameter& left, const Parameter& right) {
    check(left, "type", ref_name(left.type()), ref_name(right.type()));
    check(left, "direction", std::string(to_string(left.direction())),
          std::string(to_string(right.direction())));
    check(left, "default", left.default_value(), right.default_value());
  }

  void compare_port(const Port& left, const Port& right) {
    check(left, "type", ref_name(left.type()), ref_name(right.type()));
    check(left, "direction", std::string(to_string(left.direction())),
          std::string(to_string(right.direction())));
    check(left, "width", std::to_string(left.width()), std::to_string(right.width()));
    check(left, "service", std::to_string(left.is_service()),
          std::to_string(right.is_service()));
    compare_ref_lists(left, "provided", left.provided(), right.provided());
    compare_ref_lists(left, "required", left.required(), right.required());
  }

  void compare_association(const Association& left, const Association& right) {
    compare_children(left, left.ends(), right.ends(), "ends");
  }

  void compare_connector(const Connector& left, const Connector& right) {
    if (left.ends().size() != right.ends().size()) {
      mismatch(left, "end count", std::to_string(left.ends().size()),
               std::to_string(right.ends().size()));
      return;
    }
    for (std::size_t i = 0; i < left.ends().size(); ++i) {
      check(left, "end", left.ends()[i].str(), right.ends()[i].str());
    }
  }

  void compare_dependency(const Dependency& left, const Dependency& right) {
    check(left, "client", ref_name(left.client()), ref_name(right.client()));
    check(left, "supplier", ref_name(left.supplier()), ref_name(right.supplier()));
    check(left, "dependency kind", std::string(to_string(left.dependency_kind())),
          std::string(to_string(right.dependency_kind())));
  }

  void compare_instance(const InstanceSpecification& left, const InstanceSpecification& right) {
    check(left, "classifier", ref_name(left.classifier()), ref_name(right.classifier()));
    if (left.slots().size() != right.slots().size()) {
      mismatch(left, "slot count", std::to_string(left.slots().size()),
               std::to_string(right.slots().size()));
      return;
    }
    for (std::size_t i = 0; i < left.slots().size(); ++i) {
      const Slot& ls = left.slots()[i];
      const Slot& rs = right.slots()[i];
      check(left, "slot feature", ref_name(ls.defining_feature), ref_name(rs.defining_feature));
      check(left, "slot value", ls.value, rs.value);
      check(left, "slot reference", ref_name(ls.reference), ref_name(rs.reference));
    }
  }

  void compare_stereotype(const Stereotype& left, const Stereotype& right) {
    if (left.extended_metaclasses().size() != right.extended_metaclasses().size()) {
      mismatch(left, "extended metaclass count",
               std::to_string(left.extended_metaclasses().size()),
               std::to_string(right.extended_metaclasses().size()));
    } else {
      for (std::size_t i = 0; i < left.extended_metaclasses().size(); ++i) {
        check(left, "extended metaclass",
              std::string(to_string(left.extended_metaclasses()[i])),
              std::string(to_string(right.extended_metaclasses()[i])));
      }
    }
    if (left.tag_definitions().size() != right.tag_definitions().size()) {
      mismatch(left, "tag definition count", std::to_string(left.tag_definitions().size()),
               std::to_string(right.tag_definitions().size()));
    } else {
      for (std::size_t i = 0; i < left.tag_definitions().size(); ++i) {
        check(left, "tag name", left.tag_definitions()[i].name,
              right.tag_definitions()[i].name);
        check(left, "tag default", left.tag_definitions()[i].default_value,
              right.tag_definitions()[i].default_value);
      }
    }
  }

  void compare_package(const Package& left, const Package& right) {
    compare_children(left, left.members(), right.members(), "members");
  }

  void compare_model(const Model& left, const Model& right) {
    compare_package(left, right);
    compare_ref_lists(left, "applied profile", left.applied_profiles(),
                      right.applied_profiles());
  }

  support::DiagnosticSink& sink_;
  bool equal_ = true;
};

}  // namespace

bool structurally_equal(const Model& left, const Model& right, support::DiagnosticSink& sink) {
  Comparator comparator(sink);
  comparator.compare(left, right);
  return comparator.equal();
}

}  // namespace umlsoc::uml
