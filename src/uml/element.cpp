#include "uml/element.hpp"

#include "uml/package.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

std::string_view to_string(ElementKind kind) {
  switch (kind) {
    case ElementKind::kModel:
      return "Model";
    case ElementKind::kPackage:
      return "Package";
    case ElementKind::kProfile:
      return "Profile";
    case ElementKind::kStereotype:
      return "Stereotype";
    case ElementKind::kClass:
      return "Class";
    case ElementKind::kComponent:
      return "Component";
    case ElementKind::kInterface:
      return "Interface";
    case ElementKind::kDataType:
      return "DataType";
    case ElementKind::kPrimitiveType:
      return "PrimitiveType";
    case ElementKind::kEnumeration:
      return "Enumeration";
    case ElementKind::kSignal:
      return "Signal";
    case ElementKind::kProperty:
      return "Property";
    case ElementKind::kOperation:
      return "Operation";
    case ElementKind::kParameter:
      return "Parameter";
    case ElementKind::kPort:
      return "Port";
    case ElementKind::kAssociation:
      return "Association";
    case ElementKind::kConnector:
      return "Connector";
    case ElementKind::kDependency:
      return "Dependency";
    case ElementKind::kInstanceSpecification:
      return "InstanceSpecification";
  }
  return "Element";
}

std::string_view to_string(Visibility visibility) {
  switch (visibility) {
    case Visibility::kPublic:
      return "public";
    case Visibility::kProtected:
      return "protected";
    case Visibility::kPrivate:
      return "private";
    case Visibility::kPackage:
      return "package";
  }
  return "public";
}

StereotypeApplication& Element::apply_stereotype(const Stereotype& stereotype) {
  for (StereotypeApplication& application : applications_) {
    if (application.stereotype == &stereotype) return application;
  }
  StereotypeApplication application;
  application.stereotype = &stereotype;
  for (const Stereotype::TagDefinition& tag : stereotype.tag_definitions()) {
    application.tagged_values[tag.name] = tag.default_value;
  }
  applications_.push_back(std::move(application));
  return applications_.back();
}

bool Element::has_stereotype(const Stereotype& stereotype) const {
  for (const StereotypeApplication& application : applications_) {
    if (application.stereotype == &stereotype) return true;
  }
  return false;
}

bool Element::has_stereotype(std::string_view stereotype_name) const {
  for (const StereotypeApplication& application : applications_) {
    if (application.stereotype->name() == stereotype_name) return true;
  }
  return false;
}

std::string Element::tagged_value(const Stereotype& stereotype, const std::string& key) const {
  for (const StereotypeApplication& application : applications_) {
    if (application.stereotype == &stereotype) {
      auto it = application.tagged_values.find(key);
      if (it != application.tagged_values.end()) return it->second;
    }
  }
  return {};
}

void Element::set_tagged_value(const Stereotype& stereotype, std::string key, std::string value) {
  apply_stereotype(stereotype).tagged_values[std::move(key)] = std::move(value);
}

std::vector<Element*> Element::owned_elements() const {
  std::vector<Element*> out;
  collect_owned(out);
  return out;
}

void Element::collect_owned(std::vector<Element*>&) const {}

std::string NamedElement::qualified_name() const {
  std::vector<const NamedElement*> chain;
  for (const Element* element = this; element != nullptr; element = element->owner()) {
    if (const auto* named = dynamic_cast<const NamedElement*>(element)) chain.push_back(named);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += (*it)->name();
  }
  return out;
}

void walk(Element& root, ElementVisitor& visitor) {
  root.accept(visitor);
  for (Element* child : root.owned_elements()) walk(*child, visitor);
}

}  // namespace umlsoc::uml
