// Model editing beyond construction: element removal with dangling-
// reference protection. Construction is covered by the factory methods;
// these helpers complete the CRUD story a real modeling tool needs.
#pragma once

#include <string>
#include <vector>

#include "support/diagnostics.hpp"
#include "uml/package.hpp"

namespace umlsoc::uml {

/// Cross-references into `target` or any element it owns: type references,
/// generalizations, realizations, association/connector ends, dependency
/// endpoints, instance classifiers/slots, port interfaces, stereotype
/// applications and profile applications. Each entry names the referring
/// element and the reference kind ("<qname>: <kind>").
[[nodiscard]] std::vector<std::string> find_references(Model& model, const Element& target);

/// Removes `member` from its owning package and unregisters it (and every
/// element it owns) from the model index. The caller must ensure nothing
/// references it — see find_references / safe_remove. Returns false when
/// `member` is not a direct member of `package`.
bool remove_member(Package& package, NamedElement& member);

/// remove_member with a safety check: refuses (reporting every inbound
/// reference as an error) when the element is still referenced elsewhere.
bool safe_remove(Package& package, NamedElement& member, support::DiagnosticSink& sink);

}  // namespace umlsoc::uml
