// Structural equality of two models, independent of element ids. Used by the
// XMI round-trip property tests (DESIGN.md E2): serialize(parse(m)) must be
// structurally identical to m.
#pragma once

#include "support/diagnostics.hpp"
#include "uml/package.hpp"

namespace umlsoc::uml {

/// Compares ownership trees element by element. References (types,
/// generalizations, connector ends, ...) are compared by qualified name,
/// which is unambiguous for models that pass validate(). Differences are
/// reported through `sink` as errors; returns true when none were found.
bool structurally_equal(const Model& left, const Model& right, support::DiagnosticSink& sink);

}  // namespace umlsoc::uml
