#include "uml/edit.hpp"

#include <unordered_set>

#include "uml/instance.hpp"
#include "uml/query.hpp"

namespace umlsoc::uml {

namespace {

/// Ids of `target` and everything it owns.
std::unordered_set<support::Id> subtree_ids(const Element& target) {
  std::unordered_set<support::Id> ids;
  std::vector<const Element*> stack{&target};
  while (!stack.empty()) {
    const Element* element = stack.back();
    stack.pop_back();
    ids.insert(element->id());
    for (Element* child : element->owned_elements()) stack.push_back(child);
  }
  return ids;
}

std::string subject_of(const Element& element) {
  if (const auto* named = dynamic_cast<const NamedElement*>(&element)) {
    return named->qualified_name();
  }
  return "element#" + element.id().str();
}

class ReferenceScan {
 public:
  ReferenceScan(const std::unordered_set<support::Id>& targets) : targets_(targets) {}

  std::vector<std::string> run(Model& model) {
    std::vector<Element*> stack{&model};
    while (!stack.empty()) {
      Element* element = stack.back();
      stack.pop_back();
      // References from inside the removed subtree do not keep it alive.
      if (!targets_.contains(element->id())) scan(*element);
      for (Element* child : element->owned_elements()) stack.push_back(child);
    }
    for (const Profile* profile : model.applied_profiles()) {
      if (targets_.contains(profile->id())) {
        hits_.push_back(model.qualified_name() + ": applied profile");
      }
    }
    return std::move(hits_);
  }

 private:
  void hit(const Element& from, const char* what) {
    hits_.push_back(subject_of(from) + ": " + what);
  }

  void check(const Element& from, const Element* reference, const char* what) {
    if (reference != nullptr && targets_.contains(reference->id())) hit(from, what);
  }

  void scan(Element& element) {
    for (const StereotypeApplication& application : element.stereotype_applications()) {
      check(element, application.stereotype, "applied stereotype");
    }
    if (auto* classifier = dynamic_cast<Classifier*>(&element)) {
      for (Classifier* general : classifier->generals()) {
        check(element, general, "generalization");
      }
    }
    if (auto* property = dynamic_cast<Property*>(&element)) {
      check(element, property->type(), "property type");
    }
    if (auto* parameter = dynamic_cast<Parameter*>(&element)) {
      check(element, parameter->type(), "parameter type");
    }
    if (auto* port = dynamic_cast<Port*>(&element)) {
      check(element, port->type(), "port type");
      for (Interface* interface : port->provided()) check(element, interface, "provided");
      for (Interface* interface : port->required()) check(element, interface, "required");
    }
    if (auto* cls = dynamic_cast<Class*>(&element)) {
      for (Interface* contract : cls->interface_realizations()) {
        check(element, contract, "interface realization");
      }
    }
    if (auto* component = dynamic_cast<Component*>(&element)) {
      for (Interface* interface : component->provided()) check(element, interface, "provided");
      for (Interface* interface : component->required()) check(element, interface, "required");
    }
    if (auto* connector = dynamic_cast<Connector*>(&element)) {
      for (const ConnectorEnd& end : connector->ends()) {
        check(element, end.part, "connector end part");
        check(element, end.port, "connector end port");
      }
    }
    if (auto* dependency = dynamic_cast<Dependency*>(&element)) {
      check(element, dependency->client(), "dependency client");
      check(element, dependency->supplier(), "dependency supplier");
    }
    if (auto* instance = dynamic_cast<InstanceSpecification*>(&element)) {
      check(element, instance->classifier(), "instance classifier");
      for (const Slot& slot : instance->slots()) {
        check(element, slot.defining_feature, "slot feature");
        check(element, slot.reference, "slot reference");
      }
    }
  }

  const std::unordered_set<support::Id>& targets_;
  std::vector<std::string> hits_;
};

}  // namespace

std::vector<std::string> find_references(Model& model, const Element& target) {
  return ReferenceScan(subtree_ids(target)).run(model);
}

bool remove_member(Package& package, NamedElement& member) {
  Model& model = package.model();
  // Unregister first (the subtree is still intact), then drop ownership.
  std::vector<const Element*> stack{&member};
  std::vector<const Element*> subtree;
  while (!stack.empty()) {
    const Element* element = stack.back();
    stack.pop_back();
    subtree.push_back(element);
    for (Element* child : element->owned_elements()) stack.push_back(child);
  }
  std::unique_ptr<NamedElement> released = package.release_member(member);
  if (released == nullptr) return false;
  for (const Element* element : subtree) model.unregister_element(*element);
  return true;
}

bool safe_remove(Package& package, NamedElement& member, support::DiagnosticSink& sink) {
  std::vector<std::string> references = find_references(package.model(), member);
  if (!references.empty()) {
    for (const std::string& reference : references) {
      sink.error(member.qualified_name(), "still referenced by " + reference);
    }
    return false;
  }
  if (!remove_member(package, member)) {
    sink.error(member.qualified_name(), "not a direct member of " + package.qualified_name());
    return false;
  }
  return true;
}

}  // namespace umlsoc::uml
