#include "uml/synthetic.hpp"

#include <string>
#include <vector>

namespace umlsoc::uml {

namespace {

const char* const kTypeNames[] = {"Integer", "Boolean", "Bit", "Byte", "Word"};
const int kTypeWidths[] = {32, 1, 1, 8, 16};

}  // namespace

std::unique_ptr<Model> make_synthetic_model(const SyntheticSpec& spec) {
  support::Rng rng(spec.seed);
  auto model = std::make_unique<Model>("Synthetic");

  std::vector<PrimitiveType*> primitives;
  for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
    primitives.push_back(&model->primitive(kTypeNames[i], kTypeWidths[i]));
  }

  for (std::size_t p = 0; p < spec.packages; ++p) {
    Package& package = model->add_package("Pkg" + std::to_string(p));

    std::vector<Classifier*> local_types(primitives.begin(), primitives.end());

    std::vector<Interface*> interfaces;
    for (std::size_t i = 0; i < spec.interfaces_per_package; ++i) {
      Interface& interface = package.add_interface("IService" + std::to_string(i));
      Operation& operation = interface.add_operation("run" + std::to_string(i));
      operation.set_return_type(*primitives[0]);
      interfaces.push_back(&interface);
    }

    for (std::size_t e = 0; e < spec.enumerations_per_package; ++e) {
      Enumeration& enumeration = package.add_enumeration("Mode" + std::to_string(e));
      enumeration.add_literal("IDLE");
      enumeration.add_literal("RUN");
      enumeration.add_literal("DONE");
      local_types.push_back(&enumeration);
    }

    std::vector<Class*> classes;
    for (std::size_t c = 0; c < spec.classes_per_package; ++c) {
      Class& cls = package.add_class("Block" + std::to_string(c));
      for (std::size_t a = 0; a < spec.properties_per_class; ++a) {
        Property& property = cls.add_property("field" + std::to_string(a));
        property.set_type(
            *local_types[static_cast<std::size_t>(rng.below(local_types.size()))]);
        if (rng.chance(0.2)) property.set_multiplicity({0, Multiplicity::kUnlimited});
      }
      for (std::size_t o = 0; o < spec.operations_per_class; ++o) {
        Operation& operation = cls.add_operation("op" + std::to_string(o));
        for (std::size_t q = 0; q < spec.parameters_per_operation; ++q) {
          operation.add_parameter(
              "arg" + std::to_string(q),
              local_types[static_cast<std::size_t>(rng.below(local_types.size()))]);
        }
        if (rng.chance(0.5)) operation.set_return_type(*primitives[0]);
      }
      if (!classes.empty() && rng.chance(spec.generalization_probability)) {
        cls.add_generalization(*rng.pick(classes));
      }
      if (!interfaces.empty() && rng.chance(spec.realization_probability)) {
        cls.add_interface_realization(*rng.pick(interfaces));
      }
      classes.push_back(&cls);
    }

    for (std::size_t a = 0; a < spec.associations_per_package && classes.size() >= 2; ++a) {
      Association& association = package.add_association("assoc" + std::to_string(a));
      Class& left = *rng.pick(classes);
      Class& right = *rng.pick(classes);
      Property& left_end = association.add_end("src", left);
      Property& right_end = association.add_end("dst", right);
      left_end.set_multiplicity({1, 1});
      right_end.set_multiplicity({0, Multiplicity::kUnlimited});
    }
  }
  return model;
}

}  // namespace umlsoc::uml
