// InstanceSpecification / Slot: the Object Diagram part of the subset.
#pragma once

#include <string>
#include <vector>

#include "uml/types.hpp"

namespace umlsoc::uml {

class InstanceSpecification;

/// A value for one structural feature of an instance. Either a literal
/// `value` (concrete syntax text) or a reference to another instance.
struct Slot {
  const Property* defining_feature = nullptr;
  std::string value;
  InstanceSpecification* reference = nullptr;
};

/// A named instance of a classifier with slot values; instances of a class
/// diagram form an object diagram (paper §2).
class InstanceSpecification final : public NamedElement {
 public:
  explicit InstanceSpecification(std::string name) : NamedElement(std::move(name)) {}

  [[nodiscard]] ElementKind kind() const override {
    return ElementKind::kInstanceSpecification;
  }
  void accept(ElementVisitor& visitor) override;

  [[nodiscard]] Classifier* classifier() const { return classifier_; }
  void set_classifier(Classifier& classifier) { classifier_ = &classifier; }

  void set_slot(const Property& feature, std::string value);
  void set_slot_reference(const Property& feature, InstanceSpecification& reference);

  [[nodiscard]] const std::vector<Slot>& slots() const { return slots_; }
  [[nodiscard]] const Slot* find_slot(std::string_view feature_name) const;

 private:
  Slot& slot_for(const Property& feature);

  Classifier* classifier_ = nullptr;
  std::vector<Slot> slots_;
};

}  // namespace umlsoc::uml
