#include "uml/validate.hpp"

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "uml/instance.hpp"
#include "uml/visitor.hpp"

namespace umlsoc::uml {

namespace {

class Validator final : public ElementVisitor {
 public:
  Validator(Model& model, support::DiagnosticSink& sink) : model_(model), sink_(sink) {}

  void visit(Model& model) override { check_namespace(model); }

  void visit(Package& package) override {
    check_named(package);
    check_namespace(package);
  }

  void visit(Profile& profile) override {
    check_named(profile);
    check_namespace(profile);
  }

  void visit(Stereotype& stereotype) override {
    check_named(stereotype);
    if (stereotype.extended_metaclasses().empty()) {
      sink_.warning(stereotype.qualified_name(), "stereotype extends no metaclass");
    }
  }

  void visit(Class& element) override { check_class(element); }
  void visit(Component& element) override { check_class(element); }

  void visit(Interface& interface) override {
    check_named(interface);
    check_generalizations(interface);
    for (Classifier* general : interface.generals()) {
      if (dynamic_cast<Interface*>(general) == nullptr) {
        sink_.error(interface.qualified_name(),
                    "interface specializes a non-interface classifier '" + general->name() + "'");
      }
    }
  }

  void visit(Enumeration& enumeration) override {
    check_named(enumeration);
    if (enumeration.literals().empty()) {
      sink_.warning(enumeration.qualified_name(), "enumeration has no literals");
    }
    std::unordered_set<std::string> seen;
    for (const std::string& literal : enumeration.literals()) {
      if (!seen.insert(literal).second) {
        sink_.error(enumeration.qualified_name(), "duplicate literal '" + literal + "'");
      }
    }
  }

  void visit(PrimitiveType& primitive) override {
    check_named(primitive);
    if (primitive.bit_width() < 0) {
      sink_.error(primitive.qualified_name(), "negative bit width");
    }
  }

  void visit(Property& property) override {
    check_named(property);
    if (property.type() == nullptr) {
      sink_.warning(property.qualified_name(), "property has no type");
    }
    if (!property.multiplicity().is_valid()) {
      sink_.error(property.qualified_name(),
                  "invalid multiplicity " + property.multiplicity().str());
    }
  }

  void visit(Operation& operation) override {
    check_named(operation);
    int return_parameters = 0;
    for (const auto& parameter : operation.parameters()) {
      if (parameter->direction() == ParameterDirection::kReturn) ++return_parameters;
    }
    if (return_parameters > 1) {
      sink_.error(operation.qualified_name(), "more than one return parameter");
    }
  }

  void visit(Port& port) override {
    check_named(port);
    if (port.width() < 1) {
      sink_.error(port.qualified_name(), "port width must be >= 1");
    }
  }

  void visit(Association& association) override {
    check_named(association);
    if (association.ends().size() < 2) {
      sink_.error(association.qualified_name(), "association needs at least two ends");
    }
    for (const auto& end : association.ends()) {
      if (end->type() == nullptr) {
        sink_.error(association.qualified_name(), "untyped association end '" + end->name() + "'");
      }
    }
  }

  void visit(Connector& connector) override {
    check_named(connector);
    if (connector.ends().size() < 2) {
      sink_.error(connector.qualified_name(), "connector needs at least two ends");
      return;
    }
    auto* owning_class = dynamic_cast<Class*>(connector.owner());
    for (const ConnectorEnd& end : connector.ends()) {
      if (!end.is_valid()) {
        sink_.error(connector.qualified_name(), "connector end references nothing");
        continue;
      }
      if (owning_class == nullptr) continue;
      if (end.part != nullptr) {
        bool is_owned_part = false;
        for (const auto& property : owning_class->properties()) {
          if (property.get() == end.part) is_owned_part = true;
        }
        if (!is_owned_part) {
          sink_.error(connector.qualified_name(),
                      "end part '" + end.part->name() + "' is not a part of the owning class");
        }
      } else if (end.port != nullptr) {
        // Boundary end: the port must be on the owning class itself.
        if (owning_class->find_port(end.port->name()) != end.port) {
          sink_.error(connector.qualified_name(),
                      "boundary end port '" + end.port->name() + "' not owned by the class");
        }
      }
    }
  }

  void visit(Dependency& dependency) override {
    if (dependency.client() == nullptr || dependency.supplier() == nullptr) {
      sink_.error(dependency.qualified_name(), "dependency missing client or supplier");
    }
  }

  void visit(InstanceSpecification& instance) override {
    check_named(instance);
    if (instance.classifier() == nullptr) {
      sink_.error(instance.qualified_name(), "instance has no classifier");
      return;
    }
    const auto* as_class = dynamic_cast<const Class*>(instance.classifier());
    for (const Slot& slot : instance.slots()) {
      if (slot.defining_feature == nullptr) {
        sink_.error(instance.qualified_name(), "slot without defining feature");
        continue;
      }
      if (as_class != nullptr) {
        bool found = false;
        for (const Property* property : as_class->all_properties()) {
          if (property == slot.defining_feature) found = true;
        }
        if (!found) {
          sink_.error(instance.qualified_name(),
                      "slot feature '" + slot.defining_feature->name() +
                          "' is not a property of classifier '" + as_class->name() + "'");
        }
      }
    }
  }

  /// Cross-element checks that need the whole model: stereotype legality.
  void check_stereotypes(Element& element) {
    for (const StereotypeApplication& application : element.stereotype_applications()) {
      const Stereotype& stereotype = *application.stereotype;
      if (!stereotype.extends(element.kind())) {
        subject_error(element, "stereotype <<" + stereotype.name() +
                                   ">> does not extend metaclass " +
                                   std::string(to_string(element.kind())));
      }
      bool from_applied_profile = false;
      for (const Profile* profile : model_.applied_profiles()) {
        for (const auto& member : profile->members()) {
          if (member.get() == &stereotype) from_applied_profile = true;
        }
      }
      if (!from_applied_profile) {
        subject_error(element, "stereotype <<" + stereotype.name() +
                                   ">> comes from a profile that is not applied to the model");
      }
      for (const auto& [key, value] : application.tagged_values) {
        if (stereotype.find_tag_definition(key) == nullptr) {
          subject_error(element, "tagged value '" + key + "' not declared by <<" +
                                     stereotype.name() + ">>");
        }
      }
    }
  }

 private:
  void subject_error(Element& element, std::string message) {
    std::string subject = "element#" + element.id().str();
    if (auto* named = dynamic_cast<NamedElement*>(&element)) subject = named->qualified_name();
    sink_.error(std::move(subject), std::move(message));
  }

  void check_named(NamedElement& element) {
    if (element.name().empty()) {
      sink_.error("element#" + element.id().str(),
                  std::string(to_string(element.kind())) + " has an empty name");
    }
  }

  void check_namespace(Package& package) {
    std::unordered_map<std::string, int> counts;
    for (const auto& member : package.members()) ++counts[member->name()];
    for (const auto& [name, count] : counts) {
      if (count > 1 && !name.empty()) {
        sink_.error(package.qualified_name(),
                    "duplicate member name '" + name + "' (" + std::to_string(count) + " times)");
      }
    }
  }

  void check_class(Class& element) {
    check_named(element);
    check_generalizations(element);
    for (Classifier* general : element.generals()) {
      if (dynamic_cast<Class*>(general) == nullptr) {
        sink_.error(element.qualified_name(),
                    "class specializes a non-class classifier '" + general->name() + "'");
      }
    }
    std::unordered_map<std::string, int> feature_counts;
    for (const auto& property : element.properties()) ++feature_counts[property->name()];
    for (const auto& port : element.ports()) ++feature_counts[port->name()];
    for (const auto& [name, count] : feature_counts) {
      if (count > 1) {
        sink_.error(element.qualified_name(), "duplicate feature name '" + name + "'");
      }
    }
  }

  void check_generalizations(Classifier& classifier) {
    // A classifier participating in a generalization cycle conforms to
    // itself through a non-empty path.
    for (Classifier* general : classifier.generals()) {
      if (general == &classifier || general->conforms_to(classifier)) {
        sink_.error(classifier.qualified_name(), "generalization cycle detected");
        return;
      }
    }
  }

  Model& model_;
  support::DiagnosticSink& sink_;
};

}  // namespace

bool validate(Model& model, support::DiagnosticSink& sink) {
  Validator validator(model, sink);
  walk(model, validator);

  // Second sweep: profile-legality checks, independent of metaclass dispatch.
  std::vector<Element*> stack{&model};
  while (!stack.empty()) {
    Element* element = stack.back();
    stack.pop_back();
    validator.check_stereotypes(*element);
    for (Element* child : element->owned_elements()) stack.push_back(child);
  }
  return !sink.has_errors();
}

}  // namespace umlsoc::uml
