#include "uml/query.hpp"

#include "support/strings.hpp"
#include "uml/instance.hpp"

namespace umlsoc::uml {

NamedElement* find_by_qualified_name(const Model& model, std::string_view path) {
  const Package* current_package = &model;
  NamedElement* current = nullptr;
  for (const std::string& segment : support::split(path, '.')) {
    if (current_package == nullptr) return nullptr;
    current = current_package->find_member(segment);
    if (current == nullptr) return nullptr;
    current_package = dynamic_cast<Package*>(current);
  }
  return current;
}

ModelStats compute_stats(Model& model) {
  ModelStats stats;
  struct Frame {
    Element* element;
    std::size_t depth;
  };
  std::vector<Frame> stack{{&model, 0}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    ++stats.total;
    ++stats.by_kind[static_cast<std::size_t>(frame.element->kind())];
    if (frame.depth > stats.max_depth) stats.max_depth = frame.depth;
    for (Element* child : frame.element->owned_elements()) {
      stack.push_back({child, frame.depth + 1});
    }
  }
  return stats;
}

}  // namespace umlsoc::uml
