// Deterministic pseudo-random source for workload generators and annealing.
//
// SplitMix64: tiny, fast, and identical across platforms, so benchmark
// workloads and property-test inputs are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

namespace umlsoc::support {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound); bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// True with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Raw stream state, for checkpoint/restore: a stream restored with
  /// set_state(state()) continues with exactly the values the original
  /// would have produced.
  [[nodiscard]] std::uint64_t state() const { return state_; }
  void set_state(std::uint64_t state) { state_ = state; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Picks a uniformly random element; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& values) {
    return values[static_cast<std::size_t>(below(values.size()))];
  }

 private:
  std::uint64_t state_;
};

}  // namespace umlsoc::support
