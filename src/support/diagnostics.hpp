// Diagnostic collection shared by validators, parsers and transformations.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace umlsoc::support {

enum class Severity { kNote, kWarning, kError };

[[nodiscard]] std::string_view to_string(Severity severity);

/// A single finding. `subject` names the model element or source position the
/// finding is about (element qualified name, "file:line:col", ...).
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string subject;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Accumulates diagnostics. Validation passes append; callers inspect at the
/// end, so one pass reports every problem instead of stopping at the first.
class DiagnosticSink {
 public:
  void note(std::string subject, std::string message);
  void warning(std::string subject, std::string message);
  void error(std::string subject, std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const { return warning_count_; }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }

  /// All diagnostics joined by newlines; convenient for test assertions.
  [[nodiscard]] std::string str() const;

  void clear();

 private:
  void add(Severity severity, std::string subject, std::string message);

  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t warning_count_ = 0;
};

}  // namespace umlsoc::support
