// Small directed-graph helper shared by activity analysis and codesign.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace umlsoc::support {

/// Directed graph over dense node indices [0, node_count).
class Digraph {
 public:
  explicit Digraph(std::size_t node_count = 0);

  void resize(std::size_t node_count);
  std::size_t add_node();
  void add_edge(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t node_count() const { return successors_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }
  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t node) const {
    return successors_[node];
  }
  [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t node) const {
    return predecessors_[node];
  }
  [[nodiscard]] std::size_t in_degree(std::size_t node) const { return predecessors_[node].size(); }
  [[nodiscard]] std::size_t out_degree(std::size_t node) const { return successors_[node].size(); }

  /// Kahn topological order; nullopt when the graph has a cycle.
  [[nodiscard]] std::optional<std::vector<std::size_t>> topological_order() const;

  [[nodiscard]] bool has_cycle() const { return !topological_order().has_value(); }

  /// Nodes reachable from `start` (including `start`).
  [[nodiscard]] std::vector<bool> reachable_from(std::size_t start) const;

  /// Nodes from which `target` is reachable (including `target`).
  [[nodiscard]] std::vector<bool> reaching(std::size_t target) const;

  /// Longest path weight ending at each node, where each node carries
  /// `node_weight[i]`; requires acyclic graph (nullopt otherwise).
  [[nodiscard]] std::optional<std::vector<double>> longest_path_to(
      const std::vector<double>& node_weight) const;

 private:
  std::vector<std::vector<std::size_t>> successors_;
  std::vector<std::vector<std::size_t>> predecessors_;
  std::size_t edge_count_ = 0;
};

}  // namespace umlsoc::support
