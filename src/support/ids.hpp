// Stable element identifiers used across the model tree and serialization.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace umlsoc::support {

/// Opaque, process-unique identifier for model elements. Value 0 is reserved
/// as "invalid"; serializers persist ids as decimal strings.
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  [[nodiscard]] std::string str() const { return std::to_string(value_); }

 private:
  std::uint64_t value_ = 0;
};

/// Monotonic id source. One generator per Model keeps ids dense and
/// deterministic, which in turn keeps XMI output stable across runs.
class IdGenerator {
 public:
  [[nodiscard]] Id next() { return Id{++last_}; }

  /// Informs the generator about an externally assigned id (e.g. from a
  /// deserialized document) so future ids do not collide with it.
  void reserve(Id id) {
    if (id.value() > last_) last_ = id.value();
  }

  [[nodiscard]] std::uint64_t last() const { return last_; }

 private:
  std::uint64_t last_ = 0;
};

}  // namespace umlsoc::support

template <>
struct std::hash<umlsoc::support::Id> {
  std::size_t operator()(umlsoc::support::Id id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
