// Small string utilities used by parsers, code generators and pretty-printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace umlsoc::support {

[[nodiscard]] std::string_view trim(std::string_view text);
[[nodiscard]] std::vector<std::string> split(std::string_view text, char separator);
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view separator);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Escapes &, <, >, " and ' for embedding in XML attribute or text content.
[[nodiscard]] std::string xml_escape(std::string_view text);

/// Indents every non-empty line of `text` by `levels * 2` spaces.
[[nodiscard]] std::string indent(std::string_view text, int levels);

/// Converts "FrameBuffer" / "frame buffer" / "frame-buffer" to
/// "frame_buffer"; used when deriving RTL / C++ identifiers from model names.
[[nodiscard]] std::string to_snake_case(std::string_view name);

/// Converts any name to an UpperCamelCase identifier.
[[nodiscard]] std::string to_upper_camel_case(std::string_view name);

/// True when `name` is a legal C/Verilog-style identifier.
[[nodiscard]] bool is_identifier(std::string_view name);

/// Counts '\n'-separated lines with at least one non-space character.
[[nodiscard]] std::size_t count_nonempty_lines(std::string_view text);

}  // namespace umlsoc::support
