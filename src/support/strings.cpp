#include "support/strings.hpp"

#include <cctype>

namespace umlsoc::support {

namespace {

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }
bool is_alnum(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0; }
bool is_alpha(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0; }
bool is_upper(char c) { return std::isupper(static_cast<unsigned char>(c)) != 0; }
char to_lower(char c) { return static_cast<char>(std::tolower(static_cast<unsigned char>(c))); }
char to_upper(char c) { return static_cast<char>(std::toupper(static_cast<unsigned char>(c))); }

// Splits a human-readable name into word chunks at spaces, dashes,
// underscores and lower-to-upper camel case boundaries.
std::vector<std::string> name_words(std::string_view name) {
  std::vector<std::string> words;
  std::string current;
  char previous = '\0';
  for (char c : name) {
    if (c == ' ' || c == '-' || c == '_' || c == '.' || c == ':') {
      if (!current.empty()) words.push_back(std::move(current));
      current.clear();
    } else {
      if (is_upper(c) && !current.empty() && !is_upper(previous)) {
        words.push_back(std::move(current));
        current.clear();
      }
      current.push_back(c);
    }
    previous = c;
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

}  // namespace

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == separator) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string xml_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string indent(std::string_view text, int levels) {
  const std::string prefix(static_cast<std::size_t>(levels) * 2, ' ');
  std::string out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      std::string_view line = text.substr(start, i - start);
      if (!trim(line).empty()) out += prefix;
      out += line;
      if (i != text.size()) out += '\n';
      start = i + 1;
    }
  }
  return out;
}

std::string to_snake_case(std::string_view name) {
  std::vector<std::string> words = name_words(name);
  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (i != 0) out += '_';
    for (char c : words[i]) out += is_alnum(c) ? to_lower(c) : '_';
  }
  if (out.empty() || !(is_alpha(out.front()) || out.front() == '_')) out.insert(out.begin(), '_');
  return out;
}

std::string to_upper_camel_case(std::string_view name) {
  std::vector<std::string> words = name_words(name);
  std::string out;
  for (const std::string& word : words) {
    bool first = true;
    for (char c : word) {
      if (!is_alnum(c)) continue;
      out += first ? to_upper(c) : c;
      first = false;
    }
  }
  if (out.empty() || !is_alpha(out.front())) out.insert(out.begin(), 'X');
  return out;
}

bool is_identifier(std::string_view name) {
  if (name.empty()) return false;
  if (!is_alpha(name.front()) && name.front() != '_') return false;
  for (char c : name) {
    if (!is_alnum(c) && c != '_') return false;
  }
  return true;
}

std::size_t count_nonempty_lines(std::string_view text) {
  std::size_t count = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (!trim(text.substr(start, i - start)).empty()) ++count;
      start = i + 1;
    }
  }
  return count;
}

}  // namespace umlsoc::support
