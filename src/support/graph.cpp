#include "support/graph.hpp"

#include <algorithm>
#include <deque>

namespace umlsoc::support {

Digraph::Digraph(std::size_t node_count) { resize(node_count); }

void Digraph::resize(std::size_t node_count) {
  successors_.resize(node_count);
  predecessors_.resize(node_count);
}

std::size_t Digraph::add_node() {
  successors_.emplace_back();
  predecessors_.emplace_back();
  return successors_.size() - 1;
}

void Digraph::add_edge(std::size_t from, std::size_t to) {
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
  ++edge_count_;
}

std::optional<std::vector<std::size_t>> Digraph::topological_order() const {
  std::vector<std::size_t> indegree(node_count());
  for (std::size_t v = 0; v < node_count(); ++v) indegree[v] = in_degree(v);

  std::deque<std::size_t> ready;
  for (std::size_t v = 0; v < node_count(); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }

  std::vector<std::size_t> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    std::size_t v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (std::size_t w : successors_[v]) {
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != node_count()) return std::nullopt;
  return order;
}

std::vector<bool> Digraph::reachable_from(std::size_t start) const {
  std::vector<bool> seen(node_count(), false);
  std::deque<std::size_t> frontier{start};
  seen[start] = true;
  while (!frontier.empty()) {
    std::size_t v = frontier.front();
    frontier.pop_front();
    for (std::size_t w : successors_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        frontier.push_back(w);
      }
    }
  }
  return seen;
}

std::vector<bool> Digraph::reaching(std::size_t target) const {
  std::vector<bool> seen(node_count(), false);
  std::deque<std::size_t> frontier{target};
  seen[target] = true;
  while (!frontier.empty()) {
    std::size_t v = frontier.front();
    frontier.pop_front();
    for (std::size_t w : predecessors_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        frontier.push_back(w);
      }
    }
  }
  return seen;
}

std::optional<std::vector<double>> Digraph::longest_path_to(
    const std::vector<double>& node_weight) const {
  std::optional<std::vector<std::size_t>> order = topological_order();
  if (!order) return std::nullopt;

  std::vector<double> finish(node_count(), 0.0);
  for (std::size_t v : *order) {
    double start = 0.0;
    for (std::size_t p : predecessors_[v]) start = std::max(start, finish[p]);
    finish[v] = start + node_weight[v];
  }
  return finish;
}

}  // namespace umlsoc::support
