#include "support/rng.hpp"

namespace umlsoc::support {

std::uint64_t Rng::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Multiply-shift rejection-free mapping; bias is negligible for the
  // bounds used here (workload sizes, not cryptography).
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(next()) * bound) >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace umlsoc::support
