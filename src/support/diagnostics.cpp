#include "support/diagnostics.hpp"

#include <utility>

namespace umlsoc::support {

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string out;
  out += to_string(severity);
  out += ": ";
  if (!subject.empty()) {
    out += subject;
    out += ": ";
  }
  out += message;
  return out;
}

void DiagnosticSink::note(std::string subject, std::string message) {
  add(Severity::kNote, std::move(subject), std::move(message));
}

void DiagnosticSink::warning(std::string subject, std::string message) {
  add(Severity::kWarning, std::move(subject), std::move(message));
}

void DiagnosticSink::error(std::string subject, std::string message) {
  add(Severity::kError, std::move(subject), std::move(message));
}

void DiagnosticSink::add(Severity severity, std::string subject, std::string message) {
  if (severity == Severity::kError) ++error_count_;
  if (severity == Severity::kWarning) ++warning_count_;
  diagnostics_.push_back(Diagnostic{severity, std::move(subject), std::move(message)});
}

std::string DiagnosticSink::str() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += diagnostic.str();
    out += '\n';
  }
  return out;
}

void DiagnosticSink::clear() {
  diagnostics_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace umlsoc::support
