#include "verify/statespace.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace umlsoc::verify {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// --- Encoding ------------------------------------------------------------------

namespace {

// The format is little-endian; on LE hosts the fields memcpy straight in,
// the byte loops are the big-endian fallback. The writers sit on the
// explorer's per-edge path (every successor is re-encoded), so they are
// worth the branch.
void put_u32(std::string& out, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    char bytes[4];
    std::memcpy(bytes, &v, 4);
    out.append(bytes, 4);
  } else {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    char bytes[8];
    std::memcpy(bytes, &v, 8);
    out.append(bytes, 8);
  } else {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_event(std::string& out, const statechart::InstanceSnapshot::EventRecord& event) {
  put_str(out, event.name);
  put_u64(out, static_cast<std::uint64_t>(event.data));
  put_str(out, event.tag);
}

/// Bounds-checked little-endian reader over an encoding.
struct Reader {
  std::string_view data;
  std::size_t pos = 0;
  bool ok = true;

  bool take_u32(std::uint32_t& out) {
    if (!ok || data.size() - pos < 4) return fail();
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&out, data.data() + pos, 4);
    } else {
      out = 0;
      for (int i = 0; i < 4; ++i) {
        out |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
      }
    }
    pos += 4;
    return true;
  }

  bool take_u64(std::uint64_t& out) {
    if (!ok || data.size() - pos < 8) return fail();
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&out, data.data() + pos, 8);
    } else {
      out = 0;
      for (int i = 0; i < 8; ++i) {
        out |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data[pos + i])) << (8 * i);
      }
    }
    pos += 8;
    return true;
  }

  bool take_str(std::string& out) {
    std::uint32_t length = 0;
    if (!take_u32(length) || data.size() - pos < length) return fail();
    out.assign(data.substr(pos, length));
    pos += length;
    return true;
  }

  bool take_event(statechart::InstanceSnapshot::EventRecord& out) {
    std::uint64_t data_bits = 0;
    if (!take_str(out.name) || !take_u64(data_bits) || !take_str(out.tag)) return fail();
    out.data = static_cast<std::int64_t>(data_bits);
    return true;
  }

  bool fail() {
    ok = false;
    return false;
  }
};

/// Element-count sanity bound: no well-formed encoding holds a list longer
/// than its remaining bytes, so a corrupt count fails fast instead of
/// driving a multi-gigabyte reserve.
bool plausible_count(const Reader& reader, std::uint32_t count) {
  return count <= reader.data.size() - reader.pos;
}

bool decode_snapshot(Reader& reader, statechart::InstanceSnapshot& out) {
  std::uint32_t flags = 0;
  if (!reader.take_u32(flags) || (flags & ~3u) != 0) return reader.fail();
  out.started = (flags & 1u) != 0;
  out.terminated = (flags & 2u) != 0;
  // Counters are not part of the encoding; the contract is that decoded
  // snapshots carry zeros (decode targets are reused as scratch, so the
  // previous decode's values would leak through otherwise).
  out.events_processed = 0;
  out.transitions_fired = 0;
  out.errors_raised = 0;
  out.errors_unhandled = 0;

  std::uint32_t count = 0;
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.active_states.resize(count);
  for (std::uint32_t& index : out.active_states) {
    if (!reader.take_u32(index)) return false;
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.active_finals.resize(count);
  for (std::uint32_t& index : out.active_finals) {
    if (!reader.take_u32(index)) return false;
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.shallow_history.resize(count);
  for (auto& [region, state] : out.shallow_history) {
    if (!reader.take_u32(region) || !reader.take_u32(state)) return false;
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.deep_history.resize(count);
  for (auto& [region, leaves] : out.deep_history) {
    std::uint32_t leaf_count = 0;
    if (!reader.take_u32(region) || !reader.take_u32(leaf_count) ||
        !plausible_count(reader, leaf_count)) {
      return reader.fail();
    }
    leaves.resize(leaf_count);
    for (std::uint32_t& leaf : leaves) {
      if (!reader.take_u32(leaf)) return false;
    }
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.variables.resize(count);
  for (auto& [name, value] : out.variables) {
    std::uint64_t bits = 0;
    if (!reader.take_str(name) || !reader.take_u64(bits)) return false;
    value = static_cast<std::int64_t>(bits);
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.queue.resize(count);
  for (auto& event : out.queue) {
    if (!reader.take_event(event)) return false;
  }
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return reader.fail();
  out.deferred.resize(count);
  for (auto& event : out.deferred) {
    if (!reader.take_event(event)) return false;
  }
  return true;
}

}  // namespace

void encode_snapshot(const statechart::InstanceSnapshot& snapshot, std::string& out) {
  std::uint32_t flags = 0;
  if (snapshot.started) flags |= 1u;
  if (snapshot.terminated) flags |= 2u;
  put_u32(out, flags);

  put_u32(out, static_cast<std::uint32_t>(snapshot.active_states.size()));
  for (std::uint32_t index : snapshot.active_states) put_u32(out, index);
  put_u32(out, static_cast<std::uint32_t>(snapshot.active_finals.size()));
  for (std::uint32_t index : snapshot.active_finals) put_u32(out, index);
  put_u32(out, static_cast<std::uint32_t>(snapshot.shallow_history.size()));
  for (const auto& [region, state] : snapshot.shallow_history) {
    put_u32(out, region);
    put_u32(out, state);
  }
  put_u32(out, static_cast<std::uint32_t>(snapshot.deep_history.size()));
  for (const auto& [region, leaves] : snapshot.deep_history) {
    put_u32(out, region);
    put_u32(out, static_cast<std::uint32_t>(leaves.size()));
    for (std::uint32_t leaf : leaves) put_u32(out, leaf);
  }
  put_u32(out, static_cast<std::uint32_t>(snapshot.variables.size()));
  for (const auto& [name, value] : snapshot.variables) {
    put_str(out, name);
    put_u64(out, static_cast<std::uint64_t>(value));
  }
  put_u32(out, static_cast<std::uint32_t>(snapshot.queue.size()));
  for (const auto& event : snapshot.queue) put_event(out, event);
  put_u32(out, static_cast<std::uint32_t>(snapshot.deferred.size()));
  for (const auto& event : snapshot.deferred) put_event(out, event);
}

std::string encode_network(const std::vector<statechart::InstanceSnapshot>& snapshots) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(snapshots.size()));
  for (const statechart::InstanceSnapshot& snapshot : snapshots) {
    encode_snapshot(snapshot, out);
  }
  return out;
}

bool decode_network(std::string_view encoding,
                    std::vector<statechart::InstanceSnapshot>& out,
                    std::vector<std::pair<std::size_t, std::size_t>>* segments) {
  Reader reader{encoding};
  std::uint32_t count = 0;
  if (!reader.take_u32(count) || !plausible_count(reader, count)) return false;
  // resize, not assign: decode_snapshot overwrites every field, and keeping
  // the inner vectors' capacity spares the explorer an allocation storm when
  // it re-decodes its scratch snapshots on every expansion.
  out.resize(count);
  if (segments != nullptr) segments->resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t begin = reader.pos;
    if (!decode_snapshot(reader, out[i])) return false;
    if (segments != nullptr) (*segments)[i] = {begin, reader.pos - begin};
  }
  return reader.ok && reader.pos == encoding.size();
}

// --- StateStore ----------------------------------------------------------------

namespace {
constexpr std::size_t kInitialSlots = 1024;  // Power of two.
}

StateStore::StateStore() : StateStore(Config{}) {}

StateStore::StateStore(Config config) : config_(config) {
  // Target slot count for the state count the budget can plausibly hold
  // (conservatively ~64 arena+entry bytes per state, target load ~0.75),
  // capping the table at 1/8 of the budget. Small explorations never pay
  // for it: the table starts at kInitialSlots, and the first growth jumps
  // straight to the target, so a budget-sized search rehashes exactly once
  // instead of through the doubling cascade that showed up as latency
  // spikes in E14 at N=4.
  const std::size_t budget_states = config_.memory_budget_bytes / 64;
  reserve_target_slots_ = kInitialSlots;
  while (reserve_target_slots_ < budget_states + budget_states / 3 &&
         reserve_target_slots_ * 2 * sizeof(std::uint32_t) <=
             config_.memory_budget_bytes / 8) {
    reserve_target_slots_ *= 2;
  }
  slots_.assign(kInitialSlots, kNoState);
}

std::size_t StateStore::bytes_used() const {
  return arena_.capacity() + entries_.capacity() * sizeof(Entry) +
         slots_.capacity() * sizeof(std::uint32_t);
}

bool StateStore::grow_slots() {
  const std::size_t new_size = std::max(slots_.size() * 2, reserve_target_slots_);
  const std::size_t projected = arena_.capacity() + entries_.capacity() * sizeof(Entry) +
                                new_size * sizeof(std::uint32_t);
  if (projected > config_.memory_budget_bytes) return false;
  std::vector<std::uint32_t> fresh(new_size, kNoState);
  const std::size_t mask = new_size - 1;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    std::size_t slot = entries_[id].fingerprint & mask;
    while (fresh[slot] != kNoState) slot = (slot + 1) & mask;
    fresh[slot] = id;
  }
  slots_ = std::move(fresh);
  return true;
}

StateStore::InsertResult StateStore::insert(std::string_view encoding, std::uint32_t parent,
                                            std::uint32_t action) {
  const HashFn hash = config_.hash != nullptr ? config_.hash : &fnv1a;
  const std::uint64_t fingerprint = hash(encoding);

  // A probe over a full table never terminates; when the budget blocked
  // earlier growth and the table has filled up anyway, fail structurally.
  if (entries_.size() + 1 >= slots_.size() && !grow_slots()) {
    return InsertResult{Status::kOutOfMemory, kNoState};
  }

  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = fingerprint & mask;
  while (slots_[slot] != kNoState) {
    const std::uint32_t id = slots_[slot];
    const Entry& entry = entries_[id];
    if (entry.fingerprint == fingerprint) {
      if (entry.length == encoding.size() &&
          std::memcmp(arena_.data() + entry.offset, encoding.data(), encoding.size()) == 0) {
        ++revisits_;
        return InsertResult{Status::kVisited, id};
      }
      // Same fingerprint, different state: keep both, keep probing.
      ++collisions_;
    }
    slot = (slot + 1) & mask;
  }

  // Budget check before committing anything. Account for capacity doubling
  // so the charge reflects what the allocators will actually hold.
  std::size_t arena_needed = arena_.capacity();
  if (arena_.size() + encoding.size() > arena_needed) {
    arena_needed = std::max(arena_.size() + encoding.size(), arena_.capacity() * 2);
  }
  std::size_t entries_needed = entries_.capacity();
  if (entries_.size() + 1 > entries_needed) {
    entries_needed = std::max<std::size_t>(entries_.capacity() * 2, 16);
  }
  if (arena_needed + entries_needed * sizeof(Entry) + slots_.capacity() * sizeof(std::uint32_t) >
      config_.memory_budget_bytes) {
    return InsertResult{Status::kOutOfMemory, kNoState};
  }

  const auto id = static_cast<std::uint32_t>(entries_.size());
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.offset = arena_.size();
  entry.length = static_cast<std::uint32_t>(encoding.size());
  entry.parent = parent;
  entry.action = action;
  entry.depth = parent == kNoState ? 0 : entries_[parent].depth + 1;
  arena_.append(encoding);
  entries_.push_back(entry);
  slots_[slot] = id;

  // Keep the load factor below ~0.75. A failed grow is only fatal once the
  // table is genuinely full; until then lookups just probe longer.
  if (entries_.size() * 4 > slots_.size() * 3) (void)grow_slots();
  return InsertResult{Status::kNew, id};
}

std::vector<std::uint32_t> StateStore::path_actions(std::uint32_t id) const {
  std::vector<std::uint32_t> actions;
  for (std::uint32_t current = id; current != kNoState && parent(current) != kNoState;
       current = parent(current)) {
    actions.push_back(action(current));
  }
  std::reverse(actions.begin(), actions.end());
  return actions;
}

}  // namespace umlsoc::verify
