#include "verify/property.hpp"

#include "verify/explore.hpp"

namespace umlsoc::verify {

Property Property::invariant(std::string name,
                             std::function<bool(const PropertyContext&)> holds) {
  std::string label = name;
  return Property(std::move(name), Kind::kState,
                  [label, holds = std::move(holds)](
                      const PropertyContext& context) -> std::optional<std::string> {
                    if (holds(context)) return std::nullopt;
                    return "invariant '" + label + "' violated";
                  });
}

Property Property::never_in(const std::string& instance_name, const std::string& state_name) {
  std::string name = "never-in:" + instance_name + "." + state_name;
  return Property(
      name, Kind::kState,
      [instance_name, state_name](const PropertyContext& context)
          -> std::optional<std::string> {
        const statechart::Engine* instance =
            context.network.find(instance_name);
        if (instance == nullptr) {
          return "property references unknown instance '" + instance_name + "'";
        }
        if (instance->is_in(state_name)) {
          return "instance '" + instance_name + "' reached forbidden state '" + state_name +
                 "'";
        }
        return std::nullopt;
      });
}

Property Property::no_unhandled_errors() {
  return Property(
      "unhandled-error-freedom", Kind::kState,
      [](const PropertyContext& context) -> std::optional<std::string> {
        for (std::size_t i = 0; i < context.deltas.size(); ++i) {
          if (context.deltas[i].errors_unhandled == 0) continue;
          std::string event = context.step != nullptr ? context.step->event.name : "?";
          return "error event '" + event + "' left unhandled by instance '" +
                 context.network.name(i) + "'";
        }
        return std::nullopt;
      });
}

Property Property::deadlock_free(std::function<bool(const PropertyContext&)> accepting) {
  if (accepting == nullptr) {
    accepting = [](const PropertyContext& context) {
      for (std::size_t i = 0; i < context.network.size(); ++i) {
        const statechart::Engine& instance = context.network.instance(i);
        if (!instance.started()) continue;
        if (!instance.is_terminated() && !instance.is_in_final_state()) return false;
      }
      return true;
    };
  }
  return Property("deadlock-freedom", Kind::kDeadlock,
                  [accepting = std::move(accepting)](
                      const PropertyContext& context) -> std::optional<std::string> {
                    if (accepting(context)) return std::nullopt;
                    std::string waiting;
                    for (std::size_t i = 0; i < context.network.size(); ++i) {
                      const statechart::Engine& instance =
                          context.network.instance(i);
                      if (instance.is_terminated() || instance.is_in_final_state()) continue;
                      if (!waiting.empty()) waiting += ", ";
                      waiting += context.network.name(i);
                    }
                    return "deadlock: no enabled event, and the configuration is not "
                           "accepting (outstanding: " +
                           (waiting.empty() ? std::string("none") : waiting) + ")";
                  });
}

}  // namespace umlsoc::verify
