// Exhaustive exploration of statechart-instance networks.
//
// The model of nondeterminism: within one step, run-to-completion is
// preserved exactly as the interpreter executes it — one alphabet entry
// (an external event, a timer firing, or an error-channel event from the
// fault model's deterministic enumeration) is delivered to one instance,
// that instance runs to quiescence, and any events its behaviors cross-post
// into sibling instances are drained to network-wide quiescence. The
// *choice* of which alphabet entry goes next is the branching: fault
// decisions become "fault fires" vs "fault does not fire" branches instead
// of RNG draws, and instance interleaving becomes the successor fan-out.
//
// BFS discovery order makes the recorded counterexample paths shortest;
// DFS trades that for a frontier whose size is bounded by the search depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "statechart/engine.hpp"
#include "support/diagnostics.hpp"
#include "verify/property.hpp"
#include "verify/statespace.hpp"

namespace umlsoc::verify {

/// One branch of the nondeterminism: deliver `event` to instance
/// `instance`, through the error channel when `is_error` (the deterministic
/// enumeration of a fault site: the same event arriving as a fault report).
struct EventChoice {
  std::size_t instance = 0;
  statechart::Event event;
  bool is_error = false;
};

/// A network of caller-owned statechart instances plus the alphabet of
/// event choices to branch over. Behaviors may cross-post events into
/// sibling instances (capture the instance pointers in their closures);
/// deliver() drains such chains to network-wide quiescence, so one step is
/// one complete run-to-completion round.
class Network {
 public:
  /// Registers a started-or-startable instance under a unique name; the
  /// instance must outlive the network. Returns its index.
  std::size_t add_instance(std::string name, statechart::Engine& instance);

  /// Adds an alphabet entry for the named instance.
  void add_choice(std::string_view instance_name, statechart::Event event,
                  bool is_error = false);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::string& name(std::size_t index) const {
    return entries_[index].name;
  }
  [[nodiscard]] statechart::Engine& instance(std::size_t index) const {
    return *entries_[index].instance;
  }
  /// Instance registered under `name`, or nullptr.
  [[nodiscard]] statechart::Engine* find(std::string_view name) const;

  [[nodiscard]] const std::vector<EventChoice>& alphabet() const { return alphabet_; }

  /// Canonical label of an alphabet entry: "env->Driver:bus_recovered" for
  /// ordinary events, "fault->Driver:bus_timeout" for error-channel ones —
  /// the form interaction::parse_label accepts.
  [[nodiscard]] std::string label(const EventChoice& choice) const;

  /// Delivers one alphabet entry and drains all cross-posted work to
  /// network quiescence. Returns the per-instance counter deltas of the
  /// step. Throws std::runtime_error after kMaxDrainRounds rounds (two
  /// instances posting to each other forever — the network-level analogue
  /// of the interpreter's completion-livelock guard).
  std::vector<StepDelta> deliver(const EventChoice& choice);

  /// As above, but reuses `deltas` and, when `touched` is non-null, reports
  /// a conservative superset of the instances whose execution state may
  /// have changed during the step: the dispatch target plus every instance
  /// that drained cross-posted events or whose pending pool moved. The
  /// explorer uses this to restore and re-encode only what a step actually
  /// disturbed (most steps touch one or two instances of N).
  void deliver(const EventChoice& choice, std::vector<StepDelta>& deltas,
               std::vector<std::uint8_t>* touched);

  /// Captures every instance, in network order.
  [[nodiscard]] std::vector<statechart::InstanceSnapshot> capture() const;

  /// Restores every instance; false (reported through `sink`) leaves a
  /// prefix of instances restored — callers treat that as fatal.
  bool restore(const std::vector<statechart::InstanceSnapshot>& snapshots,
               support::DiagnosticSink& sink);

  /// Restores the single instance at `index`.
  bool restore_one(std::size_t index, const statechart::InstanceSnapshot& snapshot,
                   support::DiagnosticSink& sink);

  static constexpr int kMaxDrainRounds = 10000;

 private:
  struct InstanceEntry {
    std::string name;
    statechart::Engine* instance = nullptr;
  };

  std::vector<InstanceEntry> entries_;
  std::vector<EventChoice> alphabet_;
  std::vector<std::size_t> pending_before_;  ///< deliver() scratch.
};

struct ExploreOptions {
  enum class Strategy : std::uint8_t { kBfs, kDfs };

  Strategy strategy = Strategy::kBfs;
  /// Stored-state cap; reaching it terminates with kStateBound.
  std::uint64_t max_states = 1'000'000;
  /// Depth cap on expansion (states deeper than this are stored but not
  /// expanded); exceeding it terminates with kStateBound.
  std::uint32_t max_depth = 0xffffffffu;
  /// Visited-store budget (see StateStore::Config).
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
  /// Stop at the first violation (default), or keep exploring and collect
  /// at most one violation per property.
  bool stop_at_first_violation = true;
  /// Fingerprint override for tests; null = FNV-1a.
  StateStore::HashFn hash_override = nullptr;
};

/// Counters of one exploration run ("states/transitions/peak queue").
struct ExploreStats {
  std::uint64_t states = 0;       ///< Distinct states stored.
  std::uint64_t transitions = 0;  ///< Steps executed (edges, incl. revisits).
  std::uint64_t revisits = 0;     ///< Edges landing on an already-stored state.
  std::uint64_t peak_frontier = 0;
  std::uint32_t max_depth_seen = 0;
  std::uint64_t fingerprint_collisions = 0;
  std::size_t bytes_used = 0;

  /// "12 states, 36 transitions (9 revisits), peak frontier 4, depth 5, ...".
  [[nodiscard]] std::string str() const;
};

/// One property violation with its counterexample: the event path from the
/// initial state to the violating state, in delivery order.
struct Violation {
  std::string property;
  std::string message;
  std::vector<EventChoice> path;
};

struct ExploreResult {
  enum class Termination : std::uint8_t {
    kExhausted,   ///< Full state space visited within all bounds.
    kViolation,   ///< Stopped at the first violation (stop_at_first_violation).
    kStateBound,  ///< max_states or max_depth cut the search short.
    kMemoryBound, ///< The visited store hit its memory budget.
    kError,       ///< Setup failure (unstarted instance, restore error).
  };

  Termination termination = Termination::kError;
  std::vector<Violation> violations;
  ExploreStats stats;
  /// Snapshot of the initial state, for counterexample replay.
  std::vector<statechart::InstanceSnapshot> initial;

  /// True when every reachable state was checked and none violated.
  [[nodiscard]] bool verified() const {
    return termination == Termination::kExhausted && violations.empty();
  }
};

[[nodiscard]] std::string_view to_string(ExploreResult::Termination termination);

/// Explores the network from its instances' current state. Instances must
/// be started; they are left re-seated on some visited state afterwards
/// (restore `result.initial` to get back to the starting point).
[[nodiscard]] ExploreResult explore(Network& network,
                                    const std::vector<Property>& properties,
                                    const ExploreOptions& options = {},
                                    support::DiagnosticSink* sink = nullptr);

}  // namespace umlsoc::verify
