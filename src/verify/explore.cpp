#include "verify/explore.hpp"

#include <stdexcept>

namespace umlsoc::verify {

// --- Network -------------------------------------------------------------------

std::size_t Network::add_instance(std::string name,
                                  statechart::Engine& instance) {
  entries_.push_back(InstanceEntry{std::move(name), &instance});
  return entries_.size() - 1;
}

void Network::add_choice(std::string_view instance_name, statechart::Event event,
                         bool is_error) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == instance_name) {
      alphabet_.push_back(EventChoice{i, std::move(event), is_error});
      return;
    }
  }
  throw std::invalid_argument("verify::Network: no instance named '" +
                              std::string(instance_name) + "'");
}

statechart::Engine* Network::find(std::string_view name) const {
  for (const InstanceEntry& entry : entries_) {
    if (entry.name == name) return entry.instance;
  }
  return nullptr;
}

std::string Network::label(const EventChoice& choice) const {
  std::string out = choice.is_error ? "fault->" : "env->";
  out += entries_[choice.instance].name;
  out += ':';
  out += choice.event.name;
  return out;
}

std::vector<StepDelta> Network::deliver(const EventChoice& choice) {
  std::vector<StepDelta> deltas;
  deliver(choice, deltas, nullptr);
  return deltas;
}

void Network::deliver(const EventChoice& choice, std::vector<StepDelta>& deltas,
                      std::vector<std::uint8_t>* touched) {
  // Record the before-counters in the deltas themselves; subtracted below.
  deltas.resize(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const statechart::Engine& instance = *entries_[i].instance;
    deltas[i] = StepDelta{instance.transitions_fired(), instance.errors_raised(),
                          instance.errors_unhandled()};
  }
  if (touched != nullptr) {
    touched->assign(entries_.size(), 0);
    (*touched)[choice.instance] = 1;
    pending_before_.resize(entries_.size());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      pending_before_[i] = entries_[i].instance->pending_events();
    }
  }

  statechart::Engine& target = *entries_[choice.instance].instance;
  if (choice.is_error) {
    target.dispatch_error(choice.event);
  } else {
    target.dispatch(choice.event);
  }

  // Drain cross-posted events until every queue is empty: one exploration
  // step is one network-wide run-to-completion round.
  for (int round = 0;; ++round) {
    if (round > kMaxDrainRounds) {
      throw std::runtime_error("verify::Network: cross-posting livelock (more than " +
                               std::to_string(kMaxDrainRounds) + " drain rounds)");
    }
    bool progressed = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      statechart::Engine& instance = *entries_[i].instance;
      if (!instance.is_terminated() && instance.pending_events() > 0) {
        instance.run_to_quiescence();
        if (touched != nullptr) (*touched)[i] = 1;
        progressed = true;
      }
    }
    if (!progressed) break;
  }

  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const statechart::Engine& instance = *entries_[i].instance;
    deltas[i].transitions_fired = instance.transitions_fired() - deltas[i].transitions_fired;
    deltas[i].errors_raised = instance.errors_raised() - deltas[i].errors_raised;
    deltas[i].errors_unhandled = instance.errors_unhandled() - deltas[i].errors_unhandled;
    if (touched != nullptr && pending_before_[i] != instance.pending_events()) {
      (*touched)[i] = 1;  // E.g. a cross-post parked in a terminated queue.
    }
  }
}

std::vector<statechart::InstanceSnapshot> Network::capture() const {
  std::vector<statechart::InstanceSnapshot> snapshots;
  snapshots.reserve(entries_.size());
  for (const InstanceEntry& entry : entries_) snapshots.push_back(entry.instance->capture());
  return snapshots;
}

bool Network::restore(const std::vector<statechart::InstanceSnapshot>& snapshots,
                      support::DiagnosticSink& sink) {
  if (snapshots.size() != entries_.size()) {
    sink.error("verify::Network", "snapshot tuple holds " + std::to_string(snapshots.size()) +
                                      " instances, network has " +
                                      std::to_string(entries_.size()));
    return false;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].instance->restore(snapshots[i], sink)) return false;
  }
  return true;
}

bool Network::restore_one(std::size_t index, const statechart::InstanceSnapshot& snapshot,
                          support::DiagnosticSink& sink) {
  return entries_[index].instance->restore(snapshot, sink);
}

// --- Exploration ---------------------------------------------------------------

std::string ExploreStats::str() const {
  std::string out = std::to_string(states) + " states, " + std::to_string(transitions) +
                    " transitions (" + std::to_string(revisits) + " revisits), peak frontier " +
                    std::to_string(peak_frontier) + ", depth " +
                    std::to_string(max_depth_seen) + ", " +
                    std::to_string(bytes_used / 1024) + " KiB";
  if (fingerprint_collisions != 0) {
    out += ", " + std::to_string(fingerprint_collisions) + " fingerprint collisions";
  }
  return out;
}

std::string_view to_string(ExploreResult::Termination termination) {
  switch (termination) {
    case ExploreResult::Termination::kExhausted: return "exhausted";
    case ExploreResult::Termination::kViolation: return "violation";
    case ExploreResult::Termination::kStateBound: return "state-bound";
    case ExploreResult::Termination::kMemoryBound: return "memory-bound";
    case ExploreResult::Termination::kError: return "error";
  }
  return "?";
}

namespace {

/// Shared expansion machinery for the BFS and DFS drivers.
class Explorer {
 public:
  Explorer(Network& network, const std::vector<Property>& properties,
           const ExploreOptions& options, support::DiagnosticSink& sink)
      : network_(network),
        properties_(properties),
        options_(options),
        sink_(sink),
        store_(StateStore::Config{options.memory_budget_bytes, options.hash_override}) {}

  ExploreResult run() {
    ExploreResult result;
    for (std::size_t i = 0; i < network_.size(); ++i) {
      if (!network_.instance(i).started()) {
        sink_.error("verify::explore",
                    "instance '" + network_.name(i) + "' is not started");
        result.termination = ExploreResult::Termination::kError;
        return result;
      }
    }

    result.initial = network_.capture();
    const StateStore::InsertResult seed = store_.insert(encode_network(result.initial));
    if (seed.status == StateStore::Status::kOutOfMemory) {
      result.termination = ExploreResult::Termination::kMemoryBound;
      finish(result);
      return result;
    }

    // Properties hold at the initial state too.
    if (check_state_properties(nullptr, {}, false, seed.id, result) &&
        options_.stop_at_first_violation) {
      result.termination = ExploreResult::Termination::kViolation;
      finish(result);
      return result;
    }

    frontier_.push_back(seed.id);
    bool depth_pruned = false;
    bool state_capped = false;

    while (frontier_head_ < frontier_.size()) {
      stats_.peak_frontier = std::max<std::uint64_t>(stats_.peak_frontier,
                                                     frontier_.size() - frontier_head_);
      std::uint32_t id;
      if (options_.strategy == ExploreOptions::Strategy::kBfs) {
        id = frontier_[frontier_head_++];
        // Reclaim the consumed prefix once it dominates the vector, so BFS
        // memory tracks the live frontier, not every id ever queued.
        if (frontier_head_ >= 4096 && frontier_head_ * 2 >= frontier_.size()) {
          frontier_.erase(frontier_.begin(),
                          frontier_.begin() + static_cast<std::ptrdiff_t>(frontier_head_));
          frontier_head_ = 0;
        }
      } else {
        id = frontier_.back();
        frontier_.pop_back();
      }

      if (store_.depth(id) >= options_.max_depth) {
        depth_pruned = true;
        continue;
      }

      switch (expand(id, result)) {
        case Expand::kContinue:
          break;
        case Expand::kStop:
          finish(result);
          return result;
        case Expand::kStateCap:
          state_capped = true;
          break;
      }
      if (state_capped) break;
    }

    result.termination = (depth_pruned || state_capped)
                             ? ExploreResult::Termination::kStateBound
                             : ExploreResult::Termination::kExhausted;
    finish(result);
    return result;
  }

 private:
  enum class Expand : std::uint8_t { kContinue, kStop, kStateCap };

  /// Expands one stored state: delivers every alphabet entry from it,
  /// checks properties on each successor, and enqueues the new ones.
  ///
  /// Hot-path shape: the base state is decoded once and split into
  /// per-instance encoding segments; before each delivery only the
  /// instances the *previous* step touched are restored, and the successor
  /// encoding splices freshly captured segments for touched instances with
  /// the cached base segments for the rest. A step that touches 2 of N
  /// instances therefore costs O(2), not O(N).
  Expand expand(std::uint32_t id, ExploreResult& result) {
    const std::string_view base = store_.encoding(id);
    if (!decode_network(base, scratch_, &segment_spans_)) {
      sink_.error("verify::explore", "stored state encoding is corrupt");
      result.termination = ExploreResult::Termination::kError;
      return Expand::kStop;
    }
    header_.assign(base.data(), 4);  // The instance-count prefix.
    // Per-instance encoding segments are byte slices of `base` (copied:
    // the arena may reallocate while successors are inserted below).
    segments_.resize(scratch_.size());
    for (std::size_t i = 0; i < scratch_.size(); ++i) {
      segments_[i].assign(base.data() + segment_spans_[i].first, segment_spans_[i].second);
    }
    // The live network is seated on whatever state was expanded last, so
    // every instance starts stale.
    stale_.assign(scratch_.size(), 1);

    bool any_choice_fired = false;
    const auto& alphabet = network_.alphabet();
    for (std::uint32_t action = 0; action < alphabet.size(); ++action) {
      for (std::size_t i = 0; i < scratch_.size(); ++i) {
        if (stale_[i] != 0) {
          if (!network_.restore_one(i, scratch_[i], sink_)) {
            result.termination = ExploreResult::Termination::kError;
            return Expand::kStop;
          }
          stale_[i] = 0;  // Seated on the base state again.
        }
      }
      const EventChoice& choice = alphabet[action];
      // Plan-table pruning: a compiled engine proves in O(1) that this
      // event cannot fire, defer, or drain anything here, so the edge is a
      // self-loop — count it without delivering. The error channel is never
      // pruned (an unhandled error is an observable delta), and engines
      // without plan tables answer the conservative `true`.
      if (!choice.is_error && !network_.instance(choice.instance).can_react(choice.event)) {
        ++stats_.transitions;
        store_.note_revisit();
        continue;
      }
      network_.deliver(choice, deltas_, &touched_);
      ++stats_.transitions;
      bool fired = false;
      for (const StepDelta& delta : deltas_) fired |= delta.transitions_fired != 0;
      any_choice_fired |= fired;

      const bool violated = check_state_properties(&choice, deltas_, fired, id, result);
      if (violated && options_.stop_at_first_violation) {
        result.termination = ExploreResult::Termination::kViolation;
        return Expand::kStop;
      }

      // A touched instance whose fresh segment still matches the base is
      // not stale: its execution state (modulo the monotonic counters,
      // which the encoding deliberately excludes) is unchanged, so the
      // restore before the next delivery can be skipped. If no instance
      // changed, the successor IS the expanded state — count the revisit
      // without re-hashing the encoding.
      successor_.assign(header_);
      bool any_segment_changed = false;
      for (std::size_t i = 0; i < scratch_.size(); ++i) {
        if (touched_[i] != 0) {
          segment_.clear();
          network_.instance(i).capture_into(capture_scratch_);
          encode_snapshot(capture_scratch_, segment_);
          const bool segment_changed = segment_ != segments_[i];
          stale_[i] = segment_changed ? 1 : 0;
          any_segment_changed |= segment_changed;
          successor_.append(segment_);
        } else {
          stale_[i] = 0;
          successor_.append(segments_[i]);
        }
      }
      if (!any_segment_changed) {
        store_.note_revisit();
        continue;
      }
      const StateStore::InsertResult inserted = store_.insert(successor_, id, action);
      switch (inserted.status) {
        case StateStore::Status::kOutOfMemory:
          result.termination = ExploreResult::Termination::kMemoryBound;
          return Expand::kStop;
        case StateStore::Status::kVisited:
          break;
        case StateStore::Status::kNew:
          stats_.max_depth_seen =
              std::max(stats_.max_depth_seen, store_.depth(inserted.id));
          if (store_.size() >= options_.max_states) return Expand::kStateCap;
          frontier_.push_back(inserted.id);
          break;
      }
    }

    // No alphabet entry fires anything from this state: a quiescent state.
    // Deadlock properties judge it (re-seated so checks see the state, not
    // its last failed successor attempt).
    if (!any_choice_fired && has_deadlock_properties()) {
      if (!network_.restore(scratch_, sink_)) {
        result.termination = ExploreResult::Termination::kError;
        return Expand::kStop;
      }
      if (check_deadlock_properties(id, result) && options_.stop_at_first_violation) {
        result.termination = ExploreResult::Termination::kViolation;
        return Expand::kStop;
      }
    }
    return Expand::kContinue;
  }

  /// Runs every state property; records at most one violation per property.
  /// Returns true when a new violation was recorded.
  bool check_state_properties(const EventChoice* step, const std::vector<StepDelta>& deltas,
                              bool fired, std::uint32_t state_id, ExploreResult& result) {
    if (!has_state_properties()) return false;
    PropertyContext context{network_, step, deltas, fired};
    bool recorded = false;
    for (const Property& property : properties_) {
      if (property.kind() != Property::Kind::kState) continue;
      if (already_violated(property.name(), result)) continue;
      if (std::optional<std::string> message = property.check(context)) {
        record_violation(property.name(), *message, state_id, step, result);
        recorded = true;
      }
    }
    return recorded;
  }

  bool check_deadlock_properties(std::uint32_t state_id, ExploreResult& result) {
    PropertyContext context{network_, nullptr, {}, false};
    bool recorded = false;
    for (const Property& property : properties_) {
      if (property.kind() != Property::Kind::kDeadlock) continue;
      if (already_violated(property.name(), result)) continue;
      if (std::optional<std::string> message = property.check(context)) {
        record_violation(property.name(), *message, state_id, nullptr, result);
        recorded = true;
      }
    }
    return recorded;
  }

  [[nodiscard]] bool has_deadlock_properties() const {
    for (const Property& property : properties_) {
      if (property.kind() == Property::Kind::kDeadlock) return true;
    }
    return false;
  }

  [[nodiscard]] bool has_state_properties() const {
    for (const Property& property : properties_) {
      if (property.kind() == Property::Kind::kState) return true;
    }
    return false;
  }

  static bool already_violated(const std::string& name, const ExploreResult& result) {
    for (const Violation& violation : result.violations) {
      if (violation.property == name) return true;
    }
    return false;
  }

  /// Counterexample = discovery path of `state_id` plus the violating step.
  void record_violation(const std::string& property, std::string message,
                        std::uint32_t state_id, const EventChoice* step,
                        ExploreResult& result) {
    Violation violation;
    violation.property = property;
    violation.message = std::move(message);
    for (std::uint32_t action : store_.path_actions(state_id)) {
      violation.path.push_back(network_.alphabet()[action]);
    }
    if (step != nullptr) violation.path.push_back(*step);
    result.violations.push_back(std::move(violation));
  }

  void finish(ExploreResult& result) {
    stats_.states = store_.size();
    stats_.revisits = store_.revisits();
    stats_.fingerprint_collisions = store_.fingerprint_collisions();
    stats_.bytes_used = store_.bytes_used();
    result.stats = stats_;
  }

  Network& network_;
  const std::vector<Property>& properties_;
  const ExploreOptions& options_;
  support::DiagnosticSink& sink_;
  StateStore store_;
  /// BFS consumes from frontier_head_ and compacts lazily; DFS pops the
  /// back. A vector beats std::deque here: no per-explore chunk allocation.
  std::vector<std::uint32_t> frontier_;
  std::size_t frontier_head_ = 0;
  // Reused expansion scratch: decoded base state, its per-instance encoding
  // segments, per-step touched/stale masks and encoding buffers. Kept as
  // members so steady-state expansion does not allocate.
  std::vector<statechart::InstanceSnapshot> scratch_;
  std::vector<std::string> segments_;
  std::vector<std::pair<std::size_t, std::size_t>> segment_spans_;
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint8_t> stale_;
  std::vector<StepDelta> deltas_;
  statechart::InstanceSnapshot capture_scratch_;
  std::string header_;
  std::string successor_;
  std::string segment_;
  ExploreStats stats_;
};

}  // namespace

ExploreResult explore(Network& network, const std::vector<Property>& properties,
                      const ExploreOptions& options, support::DiagnosticSink* sink) {
  support::DiagnosticSink local;
  Explorer explorer(network, properties, options, sink != nullptr ? *sink : local);
  return explorer.run();
}

}  // namespace umlsoc::verify
