#include "verify/counterexample.hpp"

#include "sim/kernel.hpp"
#include "sim/replay.hpp"

namespace umlsoc::verify {

std::string ReplayReport::str() const {
  std::string out = "replayed " + std::to_string(scheduled_steps) + " steps: ";
  out += reproduced ? "violation reproduced" : "violation NOT reproduced";
  out += schedule_verified ? ", schedule verified" : ", schedule NOT verified";
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

namespace {

const Property* find_property(const std::vector<Property>& properties,
                              const std::string& name) {
  for (const Property& property : properties) {
    if (property.name() == name) return &property;
  }
  return nullptr;
}

/// One kernel-driven execution of the path. Fills `last_deltas`/`last_fired`
/// with the final step's movement for the reproduction check. The kernel and
/// its processes are constructed in identical order on every call, so
/// ProcessIds — and therefore the recorded event sequence — are comparable
/// across runs.
bool run_schedule(Network& network, const std::vector<statechart::InstanceSnapshot>& initial,
                  const Violation& violation, sim::EventRecorder& recorder,
                  std::vector<StepDelta>& last_deltas, bool& last_fired,
                  support::DiagnosticSink& sink) {
  if (!network.restore(initial, sink)) return false;
  sim::Kernel kernel;
  std::vector<sim::ProcessId> steps;
  steps.reserve(violation.path.size());
  for (std::size_t i = 0; i < violation.path.size(); ++i) {
    steps.push_back(kernel.register_process(
        [&network, &violation, &last_deltas, &last_fired, i] {
          last_deltas = network.deliver(violation.path[i]);
          last_fired = false;
          for (const StepDelta& delta : last_deltas) {
            last_fired |= delta.transitions_fired != 0;
          }
        },
        "verify.step#" + std::to_string(i) + ":" + network.label(violation.path[i])));
  }
  for (std::size_t i = 0; i < steps.size(); ++i) {
    kernel.schedule(sim::SimTime::ns(i + 1), steps[i]);
  }
  kernel.set_recorder(&recorder);
  kernel.run();
  return true;
}

}  // namespace

ReplayReport replay_counterexample(Network& network,
                                   const std::vector<statechart::InstanceSnapshot>& initial,
                                   const Violation& violation,
                                   const std::vector<Property>& properties,
                                   support::DiagnosticSink& sink) {
  ReplayReport report;
  report.scheduled_steps = violation.path.size();

  const Property* property = find_property(properties, violation.property);
  if (property == nullptr) {
    report.detail = "violated property '" + violation.property + "' not in property set";
    return report;
  }

  // Run 1: record the event schedule while re-executing the path.
  sim::EventRecorder reference;
  std::vector<StepDelta> last_deltas;
  bool last_fired = false;
  if (!run_schedule(network, initial, violation, reference, last_deltas, last_fired, sink)) {
    report.detail = "initial-state restore failed";
    return report;
  }

  // Reproduction check at the path's end state.
  if (property->kind() == Property::Kind::kState) {
    const EventChoice* step = violation.path.empty() ? nullptr : &violation.path.back();
    PropertyContext context{network, step, std::move(last_deltas), last_fired};
    report.reproduced = property->check(context).has_value();
    if (!report.reproduced) report.detail = "property held at the replayed end state";
  } else {
    // Deadlock: confirm no alphabet entry fires from the end state, then
    // re-judge the state itself.
    const std::vector<statechart::InstanceSnapshot> end_state = network.capture();
    bool any_fired = false;
    for (const EventChoice& choice : network.alphabet()) {
      if (!network.restore(end_state, sink)) {
        report.detail = "end-state restore failed";
        return report;
      }
      for (const StepDelta& delta : network.deliver(choice)) {
        any_fired |= delta.transitions_fired != 0;
      }
      if (any_fired) break;
    }
    if (!network.restore(end_state, sink)) {
      report.detail = "end-state restore failed";
      return report;
    }
    PropertyContext context{network, nullptr, {}, false};
    report.reproduced = !any_fired && property->check(context).has_value();
    if (!report.reproduced) report.detail = "end state is not a deadlock";
  }

  // Run 2: identical schedule under the replay verifier. Any divergence —
  // wrong process, wrong time, missing or extra event — is latched.
  sim::EventRecorder verifier;
  verifier.begin_verify(reference.log());
  std::vector<StepDelta> ignored_deltas;
  bool ignored_fired = false;
  if (!run_schedule(network, initial, violation, verifier, ignored_deltas, ignored_fired,
                    sink)) {
    report.detail = "verify-run restore failed";
    return report;
  }
  if (verifier.divergence().has_value()) {
    report.detail = verifier.divergence()->str();
  } else if (verifier.missing_events().has_value()) {
    report.detail = verifier.missing_events()->str();
  } else {
    report.schedule_verified = true;
  }
  return report;
}

interaction::Trace counterexample_trace(const Network& network, const Violation& violation) {
  interaction::Trace trace;
  trace.reserve(violation.path.size());
  for (const EventChoice& choice : violation.path) {
    trace.push_back(network.label(choice));
  }
  return trace;
}

std::unique_ptr<interaction::Interaction> counterexample_interaction(
    const Network& network, const Violation& violation) {
  return interaction::interaction_from_trace("counterexample:" + violation.property,
                                             counterexample_trace(network, violation));
}

}  // namespace umlsoc::verify
