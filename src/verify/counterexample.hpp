// Counterexample contract of the verification engine (DESIGN.md
// "Explicit-state verification"): a Violation's event path is not just a
// diagnostic — it is a replayable schedule and a renderable scenario.
//
//  * replay_counterexample re-runs the path through the *real* interpreter
//    driven by the real simulation kernel: one registered process per step,
//    scheduled 1ns apart, with an EventRecorder attached. The run happens
//    twice — once recording, once in verify mode against the recorded log —
//    so the schedule is certified deterministic by the same machinery that
//    certifies checkpoint/restore replays (sim/replay). The report says
//    whether the violation reproduced and whether the verifier accepted the
//    schedule.
//
//  * counterexample_trace/_interaction convert the path into an
//    interaction::Trace ("env->Driver:bus_timeout", "fault->..." labels)
//    and from there into a sequence diagram via interaction_from_trace —
//    codegen::to_plantuml_sequence renders the failing scenario.
#pragma once

#include <memory>
#include <string>

#include "interaction/from_trace.hpp"
#include "verify/explore.hpp"

namespace umlsoc::verify {

struct ReplayReport {
  bool reproduced = false;         ///< The named property violated again at path end.
  bool schedule_verified = false;  ///< EventRecorder verify mode accepted the re-run.
  std::uint64_t scheduled_steps = 0;
  std::string detail;  ///< Failure explanation when !ok().

  [[nodiscard]] bool ok() const { return reproduced && schedule_verified; }
  /// "replayed 5 steps: violation reproduced, schedule verified".
  [[nodiscard]] std::string str() const;
};

/// Replays `violation`'s event path from `initial` (the snapshot tuple
/// returned by explore()) through the network's interpreters under a
/// simulation kernel, twice (record, then verify). `properties` must
/// contain the violated property by name.
[[nodiscard]] ReplayReport replay_counterexample(
    Network& network, const std::vector<statechart::InstanceSnapshot>& initial,
    const Violation& violation, const std::vector<Property>& properties,
    support::DiagnosticSink& sink);

/// The path as canonical trace labels, in delivery order.
[[nodiscard]] interaction::Trace counterexample_trace(const Network& network,
                                                      const Violation& violation);

/// The path as a sequence diagram: lifelines "env"/"fault" plus the target
/// instances, one async message per step. Feed to
/// codegen::to_plantuml_sequence for rendering.
[[nodiscard]] std::unique_ptr<interaction::Interaction> counterexample_interaction(
    const Network& network, const Violation& violation);

}  // namespace umlsoc::verify
