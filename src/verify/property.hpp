// Safety properties for the explicit-state verification engine.
//
// A property is a named predicate over a reached network state; the
// explorer evaluates every state property at the initial state and after
// every run-to-completion step, and every deadlock property at each state
// from which no alphabet entry fires a transition anywhere. A check
// returning a message is a violation; the explorer attaches the event path
// from the initial state as the counterexample.
//
// The deadlock notion mirrors the simulation kernel's expectation-registry
// semantics (Kernel::QuiescenceReport): a state with no enabled event whose
// configuration has not discharged its obligations — by default, any
// started instance that is neither terminated nor in a final state — is
// the model-level analogue of "queues drained with expectations
// outstanding".
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace umlsoc::verify {

class Network;
struct EventChoice;

/// Per-instance counter movement during one exploration step.
struct StepDelta {
  std::uint64_t transitions_fired = 0;
  std::uint64_t errors_raised = 0;
  std::uint64_t errors_unhandled = 0;
};

/// What a property check sees: the network's live instances (re-seated on
/// the state under evaluation), the step that produced it, and the
/// per-instance counter deltas of that step.
struct PropertyContext {
  const Network& network;
  /// The alphabet entry just delivered; null at the initial state and for
  /// deadlock checks (which evaluate the state itself, not a step).
  const EventChoice* step = nullptr;
  /// Parallel to the network's instances; empty when step is null.
  std::vector<StepDelta> deltas;
  /// True when `step` fired at least one transition in some instance.
  bool any_transition_fired = false;
};

class Property {
 public:
  enum class Kind : std::uint8_t {
    kState,     ///< Checked at the initial state and after every step.
    kDeadlock,  ///< Checked at states where no alphabet entry fires.
  };

  /// Returns a violation message, or nullopt when the property holds.
  using Check = std::function<std::optional<std::string>(const PropertyContext&)>;

  Property(std::string name, Kind kind, Check check)
      : name_(std::move(name)), kind_(kind), check_(std::move(check)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::optional<std::string> check(const PropertyContext& context) const {
    return check_(context);
  }

  // --- Factories ------------------------------------------------------------

  /// General state invariant: violated wherever `holds` returns false.
  static Property invariant(std::string name,
                            std::function<bool(const PropertyContext&)> holds);

  /// "Never reaches configuration X": violated when the named instance has
  /// an active state (at any depth) with `state_name`.
  static Property never_in(const std::string& instance_name, const std::string& state_name);

  /// Unhandled-error freedom: violated when a step leaves an error-channel
  /// event unhandled in any instance (errors_unhandled moved).
  static Property no_unhandled_errors();

  /// Deadlock freedom. A state with no enabled alphabet entry violates the
  /// property unless `accepting` holds there; the default accepting
  /// predicate requires every started instance to be terminated or in a
  /// final state (the expectation-registry analogy above).
  static Property deadlock_free(
      std::function<bool(const PropertyContext&)> accepting = nullptr);

 private:
  std::string name_;
  Kind kind_;
  Check check_;
};

}  // namespace umlsoc::verify
