// Canonical state encoding and the hashed visited-state store of the
// explicit-state verification engine (DESIGN.md "Explicit-state
// verification").
//
// A network state is the tuple of its instances' execution states. The
// encoding reuses PR 3's InstanceSnapshot capture — already canonical:
// indices ascending, variables sorted — serialized to a compact binary
// string *minus the monotonic counters* (events_processed and friends
// would make every state unique and the search diverge). The encoding is
// bidirectional: the explorer stores only encodings and decodes them back
// into snapshots to re-seat the interpreters on a state before expanding
// it.
//
// The StateStore is an open-addressing hash set over encodings keyed by a
// 64-bit FNV-1a fingerprint. A fingerprint match is never trusted on its
// own: the full encodings are compared byte-for-byte, so two distinct
// states that collide on the fingerprint stay distinct (the collision is
// counted, not conflated). The store runs under a configurable memory
// budget covering the encoding arena, the entry table and the slot array;
// an insert that would exceed it returns a structured kOutOfMemory instead
// of aborting, which the explorer surfaces as a "bound reached" result.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "statechart/engine.hpp"

namespace umlsoc::verify {

/// 64-bit FNV-1a over `bytes` (the default state fingerprint).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

/// Appends the canonical encoding of one instance's execution state to
/// `out`. Captured: started/terminated flags, active configuration, final
/// flags, history, variables, pending and deferred event pools. Excluded:
/// the monotonic counters (events_processed, transitions_fired,
/// errors_raised, errors_unhandled) — they never repeat, so including them
/// would make every explored state fresh.
void encode_snapshot(const statechart::InstanceSnapshot& snapshot, std::string& out);

/// Canonical encoding of a network state (instance count, then each
/// instance's encoding in network order).
[[nodiscard]] std::string encode_network(
    const std::vector<statechart::InstanceSnapshot>& snapshots);

/// Inverse of encode_network. Returns false (leaving `out` unspecified) on
/// a malformed encoding: truncation, trailing bytes, or counts that do not
/// match the payload. Counters in the decoded snapshots are zero. When
/// `segments` is non-null it receives each instance's (offset, length) byte
/// span within `encoding` — the explorer splices successor encodings from
/// these spans instead of re-encoding untouched instances.
[[nodiscard]] bool decode_network(
    std::string_view encoding, std::vector<statechart::InstanceSnapshot>& out,
    std::vector<std::pair<std::size_t, std::size_t>>* segments = nullptr);

/// Visited-state set with parent/action metadata for counterexample
/// reconstruction. States are dense ids in insertion order (the BFS/DFS
/// discovery order), so id 0 is always the initial state.
class StateStore {
 public:
  using HashFn = std::uint64_t (*)(std::string_view);

  struct Config {
    /// Budget over arena bytes + entry table + slot array. Exceeding it
    /// makes insert() return kOutOfMemory (the store stays queryable).
    std::size_t memory_budget_bytes = std::size_t{64} << 20;
    /// Fingerprint override for tests (forcing collisions); null = fnv1a.
    HashFn hash = nullptr;
  };

  static constexpr std::uint32_t kNoState = 0xffffffffu;
  static constexpr std::uint32_t kNoAction = 0xffffffffu;

  enum class Status : std::uint8_t {
    kNew,          ///< First visit; a fresh id was assigned.
    kVisited,      ///< Already stored; id names the prior entry.
    kOutOfMemory,  ///< Insert would exceed the memory budget; not stored.
  };

  struct InsertResult {
    Status status = Status::kOutOfMemory;
    std::uint32_t id = kNoState;
  };

  StateStore();
  explicit StateStore(Config config);

  /// Inserts `encoding` reached from `parent` by alphabet entry `action`
  /// (kNoState/kNoAction for the initial state). Parent metadata is
  /// recorded only on first visit — the stored path is the discovery path.
  InsertResult insert(std::string_view encoding, std::uint32_t parent = kNoState,
                      std::uint32_t action = kNoAction);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t revisits() const { return revisits_; }
  /// Counts an edge the caller proved lands on an already-stored state
  /// (successor encoding identical to its expanded base), sparing the
  /// hash-and-probe of a full insert.
  void note_revisit() { ++revisits_; }
  /// Fingerprint-equal, encoding-distinct pairs observed during probes.
  [[nodiscard]] std::uint64_t fingerprint_collisions() const { return collisions_; }
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t memory_budget_bytes() const { return config_.memory_budget_bytes; }

  [[nodiscard]] std::string_view encoding(std::uint32_t id) const {
    const Entry& entry = entries_[id];
    return std::string_view(arena_).substr(entry.offset, entry.length);
  }
  [[nodiscard]] std::uint32_t parent(std::uint32_t id) const { return entries_[id].parent; }
  [[nodiscard]] std::uint32_t action(std::uint32_t id) const { return entries_[id].action; }
  [[nodiscard]] std::uint32_t depth(std::uint32_t id) const { return entries_[id].depth; }

  /// Action indices along the discovery path from the initial state to
  /// `id`, in firing order (empty for the initial state).
  [[nodiscard]] std::vector<std::uint32_t> path_actions(std::uint32_t id) const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::size_t offset = 0;
    std::uint32_t length = 0;
    std::uint32_t parent = kNoState;
    std::uint32_t action = kNoAction;
    std::uint32_t depth = 0;
  };

  [[nodiscard]] bool grow_slots();

  Config config_;
  std::string arena_;                ///< Concatenated encodings.
  std::vector<Entry> entries_;       ///< Dense, id-indexed.
  std::vector<std::uint32_t> slots_; ///< Open addressing: id or kNoState.
  /// Budget-derived slot count the first growth jumps to (single rehash
  /// instead of a doubling cascade); small searches never reach it.
  std::size_t reserve_target_slots_ = 0;
  std::uint64_t revisits_ = 0;
  std::uint64_t collisions_ = 0;
};

}  // namespace umlsoc::verify
