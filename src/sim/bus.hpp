// Memory-mapped bus with latency: the TLM-style blocking-transport
// substitute. Devices register address windows; masters issue reads/writes
// that complete (callbacks) after the bus latency.
//
// Completions carry a BusStatus, which resolves the classic all-ones
// ambiguity of the legacy value-only callbacks: a device can legitimately
// return 0xFFFF'FFFF'FFFF'FFFF, and only the status distinguishes that from
// a decode error. The old callbacks remain as shims.
//
// Resilience: an installed sim::FaultPlan is consulted at every issue
// (sites kBusRead/kBusWrite) and can inject decode errors, extra latency,
// data bit-flips, and dropped (hung-device) responses. BusMasterPort layers
// per-master timeout supervision with configurable retry + exponential
// backoff on top, and registers its in-flight transactions as kernel
// expectations so hangs surface in the QuiescenceReport.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/kernel.hpp"

namespace umlsoc::sim {

class FaultPlan;

/// Completion status of a bus transaction.
enum class BusStatus : std::uint8_t {
  kOk = 0,
  kError,    ///< Decode error (unmapped address) or injected transaction error.
  kTimeout,  ///< Master-side timeout (reported by BusMasterPort after retries).
};

[[nodiscard]] std::string_view to_string(BusStatus status);

/// Bus observability counters (monotonic over the bus's life).
struct BusStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t errors = 0;  ///< Decode errors + injected errors.
  std::uint64_t injected_errors = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t injected_bit_flips = 0;
  std::uint64_t completions = 0;          ///< Data phases executed.
  std::uint64_t dropped_completions = 0;  ///< Responses that never reached the master.
};

class MemoryMappedBus {
 public:
  using ReadHandler = std::function<std::uint64_t(std::uint64_t address)>;
  using WriteHandler = std::function<void(std::uint64_t address, std::uint64_t value)>;
  /// Status-carrying completions (primary API).
  using ReadCompletion = std::function<void(BusStatus status, std::uint64_t value)>;
  using WriteCompletion = std::function<void(BusStatus status)>;

  MemoryMappedBus(Kernel& kernel, std::string name, SimTime latency);

  /// Maps [base, base+size) to the handlers. Overlapping windows are a
  /// wiring error and are rejected at registration time
  /// (std::invalid_argument), as is a zero-size window.
  void map_device(std::string device_name, std::uint64_t base, std::uint64_t size,
                  ReadHandler read, WriteHandler write);

  /// Non-blocking master read; `done` fires after the bus latency with the
  /// completion status and the device's value. Unmapped addresses complete
  /// with kError (value kBusError); a fault-injected drop never completes
  /// (pair with BusMasterPort for timeout supervision).
  void read(std::uint64_t address, ReadCompletion done);

  /// Non-blocking master write; `done` fires after the latency.
  void write(std::uint64_t address, std::uint64_t value, WriteCompletion done);

  /// Sentinel value delivered to ReadCompletion alongside kError (a device
  /// legitimately returning all-ones is disambiguated by the status).
  static constexpr std::uint64_t kBusError = ~0ULL;

  /// Installs (or clears, with nullptr) a fault plan consulted at every
  /// issue. The fault-free path costs exactly this null check.
  void install_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_plan_; }

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t reads() const { return stats_.reads; }
  [[nodiscard]] std::uint64_t writes() const { return stats_.writes; }
  [[nodiscard]] std::uint64_t errors() const { return stats_.errors; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Issued transactions whose completion has not fired yet. A bus is only
  /// checkpointable while this is zero: a pending transaction's completion
  /// callback cannot be serialized.
  [[nodiscard]] std::size_t pending_transactions() const { return pending_.size(); }

  /// Checkpointable bus state. `last_completion_ps` matters for determinism:
  /// the in-order pipeline clamps every completion to be no earlier than its
  /// predecessor's, so a restored run must continue from the same clamp.
  struct Checkpoint {
    BusStats stats;
    std::uint64_t last_completion_ps = 0;
  };
  [[nodiscard]] Checkpoint capture_checkpoint() const {
    return Checkpoint{stats_, last_completion_ps_};
  }
  void restore_checkpoint(const Checkpoint& checkpoint) {
    stats_ = checkpoint.stats;
    last_completion_ps_ = checkpoint.last_completion_ps;
  }

  /// Change-detection fingerprint over exactly what Checkpoint captures
  /// (stats and the completion clamp); incremental checkpointing skips
  /// re-encoding the bus section while it holds still.
  [[nodiscard]] std::uint64_t revision() const {
    std::uint64_t hash = 1469598103934665603ULL;
    for (std::uint64_t value :
         {stats_.reads, stats_.writes, stats_.errors, stats_.injected_errors,
          stats_.injected_drops, stats_.injected_delays, stats_.injected_bit_flips,
          stats_.completions, stats_.dropped_completions, last_completion_ps_}) {
      hash ^= value;
      hash *= 1099511628211ULL;
    }
    return hash;
  }

 private:
  struct Window {
    std::string device_name;
    std::uint64_t base;
    std::uint64_t size;
    ReadHandler read;
    WriteHandler write;
  };

  /// An issued transaction waiting for its completion time. The data phase
  /// (device handler + master callback) runs at completion, modeling the
  /// end of the bus transaction.
  struct Pending {
    const Window* window;  // nullptr = decode error
    BusStatus status;
    bool is_read;
    bool dropped;  // Hung device: data phase skipped, master never called.
    std::uint64_t address;
    std::uint64_t value;
    std::uint64_t flip_mask;  // Injected data corruption (0 = clean).
    ReadCompletion read_done;
    WriteCompletion write_done;
  };

  [[nodiscard]] const Window* find_window(std::uint64_t address) const;
  void issue(Pending txn, SimTime extra_latency);
  void complete_front();

  Kernel& kernel_;
  std::string name_;
  SimTime latency_;
  // deque: element addresses stay stable across map_device calls (the
  // pending transactions capture Window pointers).
  std::deque<Window> windows_;
  // One completion process drains pending_ in FIFO order. The bus pipeline
  // is in-order: a transaction's completion time is clamped to be no
  // earlier than its predecessor's (injected extra latency stalls the
  // transactions behind it, like a real in-order bus), so completions fire
  // in issue order and the single handle needs no per-transaction closure
  // on the kernel side.
  ProcessId completion_ = kInvalidProcess;
  std::deque<Pending> pending_;
  std::uint64_t last_completion_ps_ = 0;
  FaultPlan* fault_plan_ = nullptr;
  BusStats stats_;
};

/// Per-master retry policy for BusMasterPort.
struct RetryPolicy {
  /// Supervision deadline for the first attempt; zero disables timeouts
  /// (the port then only forwards completions and tracks expectations).
  SimTime timeout{};
  /// Total attempts including the first. 1 = no retries.
  int max_attempts = 1;
  /// Each retry multiplies the previous deadline by this (exponential
  /// backoff); 1 keeps a constant deadline.
  unsigned backoff_multiplier = 2;
  /// Also retry transactions that completed with kError (treats errors as
  /// transient, e.g. under fault injection). kTimeout exhaustion always
  /// reports kTimeout; error exhaustion reports kError.
  bool retry_on_error = false;
};

/// A master-side port wrapping a bus: issues transactions with timeout
/// supervision and retry/backoff per RetryPolicy, keeps per-port stats, and
/// registers every in-flight transaction as a kernel expectation (a hung
/// transaction shows up in the QuiescenceReport instead of vanishing).
class BusMasterPort {
 public:
  /// Progress notices for observers (e.g. driving a statechart's error
  /// channel): one notice per timeout, retry, and final completion.
  struct Notice {
    enum class Kind : std::uint8_t { kTimeout, kRetry, kCompleted, kExhausted };
    Kind kind;
    BusStatus status;  ///< Valid for kCompleted / kExhausted.
    bool is_read;
    std::uint64_t address;
    int attempt;  ///< 0-based attempt the notice refers to.
  };

  struct Stats {
    std::uint64_t transactions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t exhausted = 0;         ///< Gave up after max_attempts.
    std::uint64_t recovered = 0;         ///< Succeeded on a retry attempt.
    std::uint64_t late_completions = 0;  ///< Responses that arrived after a timeout.
  };

  BusMasterPort(Kernel& kernel, MemoryMappedBus& bus, std::string name,
                RetryPolicy policy = {});

  void read(std::uint64_t address, MemoryMappedBus::ReadCompletion done);
  void write(std::uint64_t address, std::uint64_t value,
             MemoryMappedBus::WriteCompletion done);

  void set_listener(std::function<void(const Notice&)> listener) {
    listener_ = std::move(listener);
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const RetryPolicy& policy() const { return policy_; }

  /// Checkpointable per-port state: the counters. Supervision entries for
  /// in-flight transactions hold completion callbacks and cannot be
  /// captured — the port's in-flight expectation makes save_snapshot
  /// reject such states, so a restorable checkpoint always has an empty
  /// supervision queue.
  [[nodiscard]] const Stats& capture_checkpoint() const { return stats_; }
  void restore_checkpoint(const Stats& stats) { stats_ = stats; }

 private:
  struct Txn {
    bool is_read;
    std::uint64_t address;
    std::uint64_t value;  // Writes only.
    int attempt = 0;
    bool completed = false;
    MemoryMappedBus::ReadCompletion read_done;
    MemoryMappedBus::WriteCompletion write_done;
  };

  /// A scheduled timeout check for one attempt. Supervision runs on a single
  /// registered kernel process (no per-attempt std::function registration,
  /// and — unlike a transient closure — snapshot-restorable): each attempt
  /// appends an entry and schedules the shared process at the deadline; the
  /// process drains every entry that is due.
  struct Supervision {
    std::uint64_t due_ps;
    int attempt;
    std::shared_ptr<Txn> txn;
  };

  void start_attempt(const std::shared_ptr<Txn>& txn);
  void finish(const std::shared_ptr<Txn>& txn, BusStatus status, std::uint64_t value);
  /// Retries if the policy allows; returns false when attempts are spent.
  bool try_retry(const std::shared_ptr<Txn>& txn);
  void notify(Notice::Kind kind, const Txn& txn, BusStatus status) const;
  [[nodiscard]] SimTime deadline_for(int attempt) const;
  void check_timeouts();
  void handle_timeout(const std::shared_ptr<Txn>& txn, int attempt);

  Kernel& kernel_;
  MemoryMappedBus& bus_;
  std::string name_;
  RetryPolicy policy_;
  ExpectationId inflight_ = kInvalidExpectation;
  ProcessId timeout_process_ = kInvalidProcess;
  std::vector<Supervision> supervision_;  // Insertion (FIFO) order.
  std::vector<Supervision> due_scratch_;
  std::function<void(const Notice&)> listener_;
  Stats stats_;
};

}  // namespace umlsoc::sim
