// Simple memory-mapped bus with latency: the TLM-style blocking-transport
// substitute. Devices register address windows; masters issue reads/writes
// that complete (callbacks) after the bus latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/kernel.hpp"

namespace umlsoc::sim {

class MemoryMappedBus {
 public:
  using ReadHandler = std::function<std::uint64_t(std::uint64_t address)>;
  using WriteHandler = std::function<void(std::uint64_t address, std::uint64_t value)>;

  MemoryMappedBus(Kernel& kernel, std::string name, SimTime latency)
      : kernel_(kernel), name_(std::move(name)), latency_(latency) {}

  /// Maps [base, base+size) to the handlers. Windows must not overlap
  /// (checked on access: first match wins, registration order).
  void map_device(std::string device_name, std::uint64_t base, std::uint64_t size,
                  ReadHandler read, WriteHandler write);

  /// Non-blocking master read; `done` fires after the bus latency with the
  /// device's value. Unmapped addresses complete with kBusError.
  void read(std::uint64_t address, std::function<void(std::uint64_t)> done);

  /// Non-blocking master write; optional `done` fires after the latency.
  void write(std::uint64_t address, std::uint64_t value,
             std::function<void()> done = nullptr);

  static constexpr std::uint64_t kBusError = ~0ULL;

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Window {
    std::string device_name;
    std::uint64_t base;
    std::uint64_t size;
    ReadHandler read;
    WriteHandler write;
  };

  [[nodiscard]] const Window* find_window(std::uint64_t address) const;

  Kernel& kernel_;
  std::string name_;
  SimTime latency_;
  // deque: element addresses stay stable across map_device calls (the
  // completion callbacks capture Window pointers).
  std::deque<Window> windows_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace umlsoc::sim
