// Simple memory-mapped bus with latency: the TLM-style blocking-transport
// substitute. Devices register address windows; masters issue reads/writes
// that complete (callbacks) after the bus latency.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/kernel.hpp"

namespace umlsoc::sim {

class MemoryMappedBus {
 public:
  using ReadHandler = std::function<std::uint64_t(std::uint64_t address)>;
  using WriteHandler = std::function<void(std::uint64_t address, std::uint64_t value)>;

  MemoryMappedBus(Kernel& kernel, std::string name, SimTime latency);

  /// Maps [base, base+size) to the handlers. Windows must not overlap
  /// (checked on access: first match wins, registration order).
  void map_device(std::string device_name, std::uint64_t base, std::uint64_t size,
                  ReadHandler read, WriteHandler write);

  /// Non-blocking master read; `done` fires after the bus latency with the
  /// device's value. Unmapped addresses complete with kBusError.
  void read(std::uint64_t address, std::function<void(std::uint64_t)> done);

  /// Non-blocking master write; optional `done` fires after the latency.
  void write(std::uint64_t address, std::uint64_t value,
             std::function<void()> done = nullptr);

  static constexpr std::uint64_t kBusError = ~0ULL;

  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct Window {
    std::string device_name;
    std::uint64_t base;
    std::uint64_t size;
    ReadHandler read;
    WriteHandler write;
  };

  /// An issued transaction waiting for its completion time. The data phase
  /// (device handler + master callback) runs at completion, modeling the
  /// end of the bus transaction.
  struct Pending {
    const Window* window;  // nullptr = bus error
    bool is_read;
    std::uint64_t address;
    std::uint64_t value;
    std::function<void(std::uint64_t)> read_done;
    std::function<void()> write_done;
  };

  [[nodiscard]] const Window* find_window(std::uint64_t address) const;
  void complete_front();

  Kernel& kernel_;
  std::string name_;
  SimTime latency_;
  // deque: element addresses stay stable across map_device calls (the
  // pending transactions capture Window pointers).
  std::deque<Window> windows_;
  // One completion process drains pending_ in FIFO order: the latency is a
  // bus constant, so completions fire in issue order and the single handle
  // needs no per-transaction closure on the kernel side.
  ProcessId completion_ = kInvalidProcess;
  std::deque<Pending> pending_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace umlsoc::sim
