#include "sim/supervise.hpp"

#include <algorithm>

namespace umlsoc::sim {

std::string_view to_string(UnitHealth health) {
  switch (health) {
    case UnitHealth::kHealthy:
      return "healthy";
    case UnitHealth::kDegraded:
      return "degraded";
    case UnitHealth::kFailed:
      return "failed";
  }
  return "?";
}

std::string_view to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

std::string_view to_string(RestartStrategy strategy) {
  switch (strategy) {
    case RestartStrategy::kOneForOne:
      return "one-for-one";
    case RestartStrategy::kAllForOne:
      return "all-for-one";
  }
  return "?";
}

// --- HealthRegistry ----------------------------------------------------------

HealthRegistry::UnitId HealthRegistry::register_unit(std::string name) {
  units_.push_back(Unit{std::move(name), UnitHealth::kHealthy});
  return static_cast<UnitId>(units_.size() - 1);
}

HealthRegistry::UnitId HealthRegistry::find(std::string_view name) const {
  for (std::size_t i = 0; i < units_.size(); ++i) {
    if (units_[i].name == name) return static_cast<UnitId>(i);
  }
  return kInvalidUnit;
}

void HealthRegistry::set_health(UnitId unit, UnitHealth health, std::string_view reason) {
  const UnitHealth from = units_[unit].health;
  if (from == health) return;
  units_[unit].health = health;
  ++transitions_;
  for (const Listener& listener : listeners_) listener(unit, from, health, reason);
}

UnitHealth HealthRegistry::aggregate() const {
  UnitHealth worst = UnitHealth::kHealthy;
  for (const Unit& unit : units_) worst = std::max(worst, unit.health);
  return worst;
}

std::string HealthRegistry::str() const {
  std::string out;
  for (const Unit& unit : units_) {
    if (!out.empty()) out += " ";
    out += unit.name + "=" + std::string(to_string(unit.health));
  }
  return out.empty() ? "(no units)" : out;
}

HealthRegistry::Checkpoint HealthRegistry::capture_checkpoint() const {
  Checkpoint out;
  out.health.reserve(units_.size());
  for (const Unit& unit : units_) out.health.push_back(static_cast<std::uint8_t>(unit.health));
  out.transitions = transitions_;
  return out;
}

bool HealthRegistry::restore_checkpoint(const Checkpoint& checkpoint,
                                        support::DiagnosticSink& sink) {
  if (checkpoint.health.size() != units_.size()) {
    sink.error("health-registry", "snapshot has " + std::to_string(checkpoint.health.size()) +
                                      " units, registry has " +
                                      std::to_string(units_.size()));
    return false;
  }
  for (std::uint8_t value : checkpoint.health) {
    if (value > static_cast<std::uint8_t>(UnitHealth::kFailed)) {
      sink.error("health-registry", "invalid health value " + std::to_string(value));
      return false;
    }
  }
  for (std::size_t i = 0; i < units_.size(); ++i) {
    units_[i].health = static_cast<UnitHealth>(checkpoint.health[i]);
  }
  transitions_ = checkpoint.transitions;
  return true;
}

// --- CircuitBreaker ----------------------------------------------------------

CircuitBreaker::CircuitBreaker(Kernel& kernel, BusMasterPort& port, std::string name)
    : CircuitBreaker(kernel, port, std::move(name), Config{}) {}

CircuitBreaker::CircuitBreaker(Kernel& kernel, BusMasterPort& port, std::string name,
                               Config config)
    : kernel_(kernel), port_(port), name_(std::move(name)), config_(config) {
  config_.window = std::min<std::uint32_t>(std::max<std::uint32_t>(config_.window, 1), 64);
  config_.min_samples = std::max<std::uint32_t>(config_.min_samples, 1);
  open_duration_ps_ = config_.open_duration.picoseconds();
  timer_process_ =
      kernel_.register_process([this] { on_open_elapsed(); }, "breaker." + name_ + ".timer");
}

void CircuitBreaker::emit(const char* event, std::int64_t data) {
  if (emitter_ != nullptr) emitter_(event, data);
}

void CircuitBreaker::set_health(UnitHealth health, std::string_view reason) {
  if (registry_ != nullptr && health_unit_ != HealthRegistry::kInvalidUnit) {
    registry_->set_health(health_unit_, health, reason);
  }
}

void CircuitBreaker::record_outcome(bool failure) {
  const std::uint64_t bit = 1ULL << cursor_;
  if (samples_ == config_.window && (outcomes_ & bit) != 0) --failures_in_window_;
  if (failure) {
    outcomes_ |= bit;
    ++failures_in_window_;
  } else {
    outcomes_ &= ~bit;
  }
  if (samples_ < config_.window) ++samples_;
  cursor_ = (cursor_ + 1) % config_.window;
}

void CircuitBreaker::reset_window() {
  outcomes_ = 0;
  cursor_ = 0;
  samples_ = 0;
  failures_in_window_ = 0;
}

void CircuitBreaker::open(std::string_view cause) {
  state_ = State::kOpen;
  ++stats_.opens;
  reopen_at_ps_ = (kernel_.now() + SimTime(open_duration_ps_)).picoseconds();
  if (!timer_pending_) {
    timer_pending_ = true;
    kernel_.schedule(SimTime(open_duration_ps_), timer_process_);
  }
  set_health(UnitHealth::kDegraded, cause);
  emit("breaker_open", static_cast<std::int64_t>(stats_.opens));
}

void CircuitBreaker::close() {
  state_ = State::kClosed;
  ++stats_.closes;
  reset_window();
  open_duration_ps_ = config_.open_duration.picoseconds();
  set_health(UnitHealth::kHealthy, "breaker closed");
  emit("breaker_closed", static_cast<std::int64_t>(stats_.closes));
}

void CircuitBreaker::force_closed() {
  const bool was_closed = state_ == State::kClosed;
  state_ = State::kClosed;
  probe_in_flight_ = false;
  reset_window();
  open_duration_ps_ = config_.open_duration.picoseconds();
  // A pending timer wakeup finds the breaker closed and falls through.
  if (!was_closed) {
    ++stats_.closes;
    set_health(UnitHealth::kHealthy, "breaker force-closed");
    emit("breaker_closed", static_cast<std::int64_t>(stats_.closes));
  }
}

void CircuitBreaker::on_open_elapsed() {
  timer_pending_ = false;
  if (state_ != State::kOpen) return;  // Stale wakeup (force_closed meanwhile).
  const std::uint64_t now_ps = kernel_.now().picoseconds();
  if (now_ps < reopen_at_ps_) {
    // Re-opened with a longer duration since this wakeup was scheduled.
    timer_pending_ = true;
    kernel_.schedule(SimTime(reopen_at_ps_ - now_ps), timer_process_);
    return;
  }
  state_ = State::kHalfOpen;
  probe_in_flight_ = false;
}

bool CircuitBreaker::admit() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      ++stats_.probes;
      return true;
  }
  return false;
}

void CircuitBreaker::on_completion(bool admitted_as_probe, BusStatus status) {
  const bool failure = status != BusStatus::kOk;
  if (failure) {
    ++stats_.failures;
  } else {
    ++stats_.ok;
  }
  if (admitted_as_probe) {
    probe_in_flight_ = false;
    if (state_ != State::kHalfOpen) return;  // force_closed raced the probe.
    if (failure) {
      ++stats_.probe_failures;
      // Failed probe: back to open with the duration scaled up (clamped).
      const std::uint64_t scaled = open_duration_ps_ * config_.reopen_multiplier;
      const bool overflow = config_.reopen_multiplier != 0 &&
                            scaled / config_.reopen_multiplier != open_duration_ps_;
      open_duration_ps_ = std::min(
          overflow ? config_.max_open_duration.picoseconds() : scaled,
          config_.max_open_duration.picoseconds());
      open("probe failed");
    } else {
      close();
    }
    return;
  }
  if (state_ != State::kClosed) return;  // Late completion from before an open.
  record_outcome(failure);
  if (samples_ >= config_.min_samples &&
      static_cast<double>(failures_in_window_) >=
          config_.failure_threshold * static_cast<double>(samples_)) {
    open("failure threshold");
  }
}

void CircuitBreaker::read(std::uint64_t address, MemoryMappedBus::ReadCompletion done) {
  const bool was_half_open = state_ == State::kHalfOpen;
  if (!admit()) {
    ++stats_.fast_failed;
    if (done != nullptr) done(BusStatus::kError, MemoryMappedBus::kBusError);
    return;
  }
  ++stats_.issued;
  const bool as_probe = was_half_open;
  port_.read(address,
             [this, as_probe, done = std::move(done)](BusStatus status, std::uint64_t value) {
               on_completion(as_probe, status);
               if (done != nullptr) done(status, value);
             });
}

void CircuitBreaker::write(std::uint64_t address, std::uint64_t value,
                           MemoryMappedBus::WriteCompletion done) {
  const bool was_half_open = state_ == State::kHalfOpen;
  if (!admit()) {
    ++stats_.fast_failed;
    if (done != nullptr) done(BusStatus::kError);
    return;
  }
  ++stats_.issued;
  const bool as_probe = was_half_open;
  port_.write(address, value, [this, as_probe, done = std::move(done)](BusStatus status) {
    on_completion(as_probe, status);
    if (done != nullptr) done(status);
  });
}

CircuitBreaker::Checkpoint CircuitBreaker::capture_checkpoint() const {
  Checkpoint out;
  out.state = static_cast<std::uint8_t>(state_);
  out.outcomes = outcomes_;
  out.cursor = cursor_;
  out.samples = samples_;
  out.failures_in_window = failures_in_window_;
  out.open_duration_ps = open_duration_ps_;
  out.reopen_at_ps = reopen_at_ps_;
  out.timer_pending = timer_pending_;
  out.probe_in_flight = probe_in_flight_;
  out.stats = stats_;
  return out;
}

bool CircuitBreaker::restore_checkpoint(const Checkpoint& checkpoint,
                                        support::DiagnosticSink& sink) {
  if (checkpoint.state > static_cast<std::uint8_t>(State::kHalfOpen)) {
    sink.error("breaker " + name_, "invalid state " + std::to_string(checkpoint.state));
    return false;
  }
  if (checkpoint.cursor >= config_.window || checkpoint.samples > config_.window ||
      checkpoint.failures_in_window > checkpoint.samples) {
    sink.error("breaker " + name_, "window state out of range for configured window " +
                                       std::to_string(config_.window));
    return false;
  }
  state_ = static_cast<State>(checkpoint.state);
  outcomes_ = checkpoint.outcomes;
  cursor_ = checkpoint.cursor;
  samples_ = checkpoint.samples;
  failures_in_window_ = checkpoint.failures_in_window;
  open_duration_ps_ = checkpoint.open_duration_ps;
  reopen_at_ps_ = checkpoint.reopen_at_ps;
  timer_pending_ = checkpoint.timer_pending;
  probe_in_flight_ = checkpoint.probe_in_flight;
  stats_ = checkpoint.stats;
  return true;
}

// --- Supervisor --------------------------------------------------------------

Supervisor::Supervisor(Kernel& kernel, std::string name, RestartStrategy strategy,
                       RestartPolicy policy)
    : kernel_(kernel), name_(std::move(name)), strategy_(strategy), policy_(policy) {
  restart_process_ =
      kernel_.register_process([this] { drain_due_restarts(); }, "sup." + name_ + ".restart");
  restart_expectation_ = kernel_.register_expectation(restart_expectation_label());
}

Supervisor::ChildId Supervisor::add_child(std::string name, std::function<bool()> restart) {
  Child child;
  child.name = std::move(name);
  child.restart = std::move(restart);
  children_.push_back(std::move(child));
  return static_cast<ChildId>(children_.size() - 1);
}

Supervisor::ChildId Supervisor::attach_child_supervisor(Supervisor& child) {
  const ChildId id = add_child(child.name_, [&child] { return child.reset_and_restart_all(); });
  child.parent_ = this;
  child.id_in_parent_ = id;
  return id;
}

void Supervisor::attach_watchdog(ChildId child, Watchdog& watchdog) {
  children_[child].watchdog = &watchdog;
  watchdog.set_on_trip([this, child] {
    emit("watchdog_trip", static_cast<std::int64_t>(child));
    report_failure(child, "watchdog_trip");
  });
}

void Supervisor::bind_child_health(ChildId child, HealthRegistry& registry,
                                   HealthRegistry::UnitId unit) {
  children_[child].registry = &registry;
  children_[child].health_unit = unit;
}

void Supervisor::set_child_health(ChildId child, UnitHealth health, std::string_view reason) {
  Child& entry = children_[child];
  if (entry.registry != nullptr && entry.health_unit != HealthRegistry::kInvalidUnit) {
    entry.registry->set_health(entry.health_unit, health, reason);
  }
}

void Supervisor::emit(const char* event, std::int64_t data) {
  if (emitter_ != nullptr) emitter_(event, data);
}

SimTime Supervisor::backoff_for(ChildId child) const {
  std::uint64_t delay_ps = policy_.backoff.picoseconds();
  const std::uint32_t level = children_[child].stats.consecutive;
  for (std::uint32_t i = 0; i + 1 < level && i + 1 < 32; ++i) {
    const std::uint64_t scaled = delay_ps * policy_.backoff_multiplier;
    if (policy_.backoff_multiplier != 0 && scaled / policy_.backoff_multiplier != delay_ps) {
      return policy_.max_backoff;  // Saturate instead of wrapping.
    }
    delay_ps = scaled;
  }
  return SimTime(std::min(delay_ps, policy_.max_backoff.picoseconds()));
}

bool Supervisor::budget_allows(std::uint64_t now_ps) {
  const std::uint64_t window_ps = policy_.window.picoseconds();
  const std::uint64_t horizon = now_ps > window_ps ? now_ps - window_ps : 0;
  window_.erase(window_.begin(),
                std::find_if(window_.begin(), window_.end(),
                             [horizon](std::uint64_t at) { return at >= horizon; }));
  if (window_.size() >= policy_.max_restarts) return false;
  window_.push_back(now_ps);
  return true;
}

void Supervisor::report_failure(ChildId child, std::string_view reason) {
  if (suspended_ || gave_up_) return;
  Child& entry = children_[child];
  ++entry.stats.failures;
  const std::uint64_t now_ps = kernel_.now().picoseconds();
  // A failure long after the previous one is a fresh burst; within the
  // intensity window it grows the backoff.
  if (entry.stats.consecutive != 0 &&
      now_ps > entry.last_failure_ps + policy_.window.picoseconds()) {
    entry.stats.consecutive = 0;
  }
  ++entry.stats.consecutive;
  entry.last_failure_ps = now_ps;
  set_child_health(child, UnitHealth::kDegraded, reason);

  if (!budget_allows(now_ps)) {
    escalate(reason);
    return;
  }
  const SimTime delay = backoff_for(child);
  if (strategy_ == RestartStrategy::kAllForOne) {
    for (ChildId id = 0; id < static_cast<ChildId>(children_.size()); ++id) {
      schedule_restart(id, delay);
    }
  } else {
    schedule_restart(child, delay);
  }
}

void Supervisor::report_recovered(ChildId child) {
  children_[child].stats.consecutive = 0;
  set_child_health(child, UnitHealth::kHealthy, "recovered");
}

void Supervisor::schedule_restart(ChildId child, SimTime delay) {
  // At most one pending restart per child: a second failure before the
  // restart ran would otherwise restart the unit twice.
  for (const PendingRestart& entry : pending_) {
    if (entry.child == child) return;
  }
  pending_.push_back(PendingRestart{(kernel_.now() + delay).picoseconds(), child});
  kernel_.expect(restart_expectation_);
  kernel_.schedule(delay, restart_process_);
}

void Supervisor::drain_due_restarts() {
  const std::uint64_t now_ps = kernel_.now().picoseconds();
  due_scratch_.clear();
  std::size_t kept = 0;
  for (PendingRestart& entry : pending_) {
    if (entry.due_ps <= now_ps) {
      due_scratch_.push_back(entry);
    } else {
      pending_[kept++] = entry;
    }
  }
  pending_.resize(kept);
  for (const PendingRestart& due : due_scratch_) {
    kernel_.fulfill(restart_expectation_);
    execute_restart(due.child);
  }
  due_scratch_.clear();
}

void Supervisor::execute_restart(ChildId child) {
  if (suspended_ || gave_up_) return;
  Child& entry = children_[child];
  const bool ok = entry.restart == nullptr || entry.restart();
  if (!ok) {
    ++entry.stats.failed_restarts;
    emit("restart_failed", static_cast<std::int64_t>(child));
    // A failed restart is a fresh failure: backoff grows, budget shrinks.
    report_failure(child, "restart failed");
    return;
  }
  ++entry.stats.restarts;
  set_child_health(child, UnitHealth::kHealthy, "restarted");
  emit("unit_restarted", static_cast<std::int64_t>(child));
  if (entry.watchdog != nullptr) entry.watchdog->arm();
}

void Supervisor::cancel_pending() {
  for (std::size_t i = 0; i < pending_.size(); ++i) kernel_.fulfill(restart_expectation_);
  pending_.clear();
  // Stale drain wakeups find an empty queue and fall through.
}

void Supervisor::escalate(std::string_view reason) {
  ++escalations_;
  cancel_pending();
  for (ChildId id = 0; id < static_cast<ChildId>(children_.size()); ++id) {
    set_child_health(id, UnitHealth::kFailed, "supervisor escalated");
  }
  if (parent_ != nullptr) {
    suspended_ = true;
    emit("supervisor_escalate", static_cast<std::int64_t>(escalations_));
    parent_->report_failure(id_in_parent_, "escalation: " + std::string(reason));
    return;
  }
  const std::string exhausted = "restart budget exhausted (" +
                                std::to_string(policy_.max_restarts) + " restarts in " +
                                policy_.window.str() + "): " + std::string(reason);
  // Root escalation ladder: rollback before terminal give-up. An accepting
  // handler suspends the tree and leaves recovery to the orchestrator; a
  // rejecting (or absent) handler falls through to give-up.
  if (rollback_handler_ != nullptr && rollback_handler_(exhausted)) {
    suspended_ = true;
    emit("supervisor_rollback", static_cast<std::int64_t>(escalations_));
    return;
  }
  gave_up_ = true;
  give_up_reason_ = exhausted;
  emit("supervisor_give_up", static_cast<std::int64_t>(escalations_));
  if (on_give_up_ != nullptr) on_give_up_(give_up_reason_);
}

void Supervisor::force_give_up(std::string_view reason) {
  if (gave_up_) return;
  suspended_ = false;
  gave_up_ = true;
  give_up_reason_ = std::string(reason);
  emit("supervisor_give_up", static_cast<std::int64_t>(escalations_));
  if (on_give_up_ != nullptr) on_give_up_(give_up_reason_);
}

bool Supervisor::reset_and_restart_all() {
  suspended_ = false;
  gave_up_ = false;
  give_up_reason_.clear();
  window_.clear();
  cancel_pending();
  bool all_ok = true;
  for (ChildId id = 0; id < static_cast<ChildId>(children_.size()); ++id) {
    Child& entry = children_[id];
    entry.stats.consecutive = 0;
    const bool ok = entry.restart == nullptr || entry.restart();
    if (!ok) {
      ++entry.stats.failed_restarts;
      all_ok = false;
      continue;
    }
    ++entry.stats.restarts;
    set_child_health(id, UnitHealth::kHealthy, "subtree restarted");
    if (entry.watchdog != nullptr) entry.watchdog->arm();
  }
  return all_ok;
}

std::string Supervisor::str() const {
  std::uint64_t restarts = 0;
  for (const Child& child : children_) restarts += child.stats.restarts;
  std::string out = "sup " + name_ + ": " + std::to_string(children_.size()) + " children, " +
                    std::to_string(restarts) + " restarts, " +
                    std::to_string(escalations_) + " escalations";
  if (gave_up_) out += ", GAVE UP (" + give_up_reason_ + ")";
  if (suspended_) out += ", suspended";
  return out;
}

Supervisor::Checkpoint Supervisor::capture_checkpoint() const {
  Checkpoint out;
  out.suspended = suspended_;
  out.gave_up = gave_up_;
  out.give_up_reason = give_up_reason_;
  out.escalations = escalations_;
  out.window = window_;
  out.children.reserve(children_.size());
  for (const Child& child : children_) {
    out.children.push_back(Checkpoint::ChildState{
        child.stats.failures, child.stats.restarts, child.stats.failed_restarts,
        child.stats.consecutive, child.last_failure_ps});
  }
  out.pending.reserve(pending_.size());
  for (const PendingRestart& entry : pending_) {
    out.pending.push_back(Checkpoint::PendingRestart{entry.due_ps, entry.child});
  }
  return out;
}

bool Supervisor::restore_checkpoint(const Checkpoint& checkpoint,
                                    support::DiagnosticSink& sink) {
  if (checkpoint.children.size() != children_.size()) {
    sink.error("supervisor " + name_,
               "snapshot has " + std::to_string(checkpoint.children.size()) +
                   " children, supervisor has " + std::to_string(children_.size()));
    return false;
  }
  for (const Checkpoint::PendingRestart& entry : checkpoint.pending) {
    if (entry.child >= children_.size()) {
      sink.error("supervisor " + name_,
                 "pending restart references child " + std::to_string(entry.child));
      return false;
    }
  }
  suspended_ = checkpoint.suspended;
  gave_up_ = checkpoint.gave_up;
  give_up_reason_ = checkpoint.give_up_reason;
  escalations_ = checkpoint.escalations;
  window_ = checkpoint.window;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const Checkpoint::ChildState& state = checkpoint.children[i];
    children_[i].stats =
        ChildStats{state.failures, state.restarts, state.failed_restarts, state.consecutive};
    children_[i].last_failure_ps = state.last_failure_ps;
  }
  pending_.clear();
  for (const Checkpoint::PendingRestart& entry : checkpoint.pending) {
    pending_.push_back(PendingRestart{entry.due_ps, entry.child});
  }
  // The expectation count and the scheduled drain events are restored by the
  // kernel checkpoint; only the queue payload lives here.
  return true;
}

}  // namespace umlsoc::sim
