#include "sim/bus.hpp"

namespace umlsoc::sim {

void MemoryMappedBus::map_device(std::string device_name, std::uint64_t base,
                                 std::uint64_t size, ReadHandler read, WriteHandler write) {
  windows_.push_back(Window{std::move(device_name), base, size, std::move(read),
                            std::move(write)});
}

const MemoryMappedBus::Window* MemoryMappedBus::find_window(std::uint64_t address) const {
  for (const Window& window : windows_) {
    if (address >= window.base && address - window.base < window.size) return &window;
  }
  return nullptr;
}

void MemoryMappedBus::read(std::uint64_t address, std::function<void(std::uint64_t)> done) {
  ++reads_;
  const Window* window = find_window(address);
  if (window == nullptr || window->read == nullptr) {
    ++errors_;
    kernel_.schedule(latency_, [done] { done(kBusError); });
    return;
  }
  // Capture by value: the device is consulted at completion time, modeling
  // the data phase at the end of the bus transaction.
  const Window* target = window;
  kernel_.schedule(latency_, [target, address, done] { done(target->read(address)); });
}

void MemoryMappedBus::write(std::uint64_t address, std::uint64_t value,
                            std::function<void()> done) {
  ++writes_;
  const Window* window = find_window(address);
  if (window == nullptr || window->write == nullptr) {
    ++errors_;
    if (done != nullptr) kernel_.schedule(latency_, done);
    return;
  }
  const Window* target = window;
  kernel_.schedule(latency_, [target, address, value, done] {
    target->write(address, value);
    if (done != nullptr) done();
  });
}

}  // namespace umlsoc::sim
