#include "sim/bus.hpp"

#include <stdexcept>

#include "sim/fault.hpp"

namespace umlsoc::sim {

std::string_view to_string(BusStatus status) {
  switch (status) {
    case BusStatus::kOk:
      return "ok";
    case BusStatus::kError:
      return "error";
    case BusStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

MemoryMappedBus::MemoryMappedBus(Kernel& kernel, std::string name, SimTime latency)
    : kernel_(kernel), name_(std::move(name)), latency_(latency) {
  completion_ = kernel_.register_process([this] { complete_front(); },
                                         "bus." + name_ + ".completion");
}

void MemoryMappedBus::map_device(std::string device_name, std::uint64_t base,
                                 std::uint64_t size, ReadHandler read, WriteHandler write) {
  if (size == 0) {
    throw std::invalid_argument("bus " + name_ + ": device '" + device_name +
                                "' has a zero-size window");
  }
  for (const Window& window : windows_) {
    // [base, base+size) intersects [window.base, window.base+window.size)?
    if (base < window.base + window.size && window.base < base + size) {
      throw std::invalid_argument("bus " + name_ + ": window of '" + device_name +
                                  "' overlaps '" + window.device_name + "'");
    }
  }
  windows_.push_back(Window{std::move(device_name), base, size, std::move(read),
                            std::move(write)});
}

const MemoryMappedBus::Window* MemoryMappedBus::find_window(std::uint64_t address) const {
  for (const Window& window : windows_) {
    if (address >= window.base && address - window.base < window.size) return &window;
  }
  return nullptr;
}

void MemoryMappedBus::issue(Pending txn, SimTime extra_latency) {
  if (txn.window == nullptr) {
    txn.status = BusStatus::kError;
    ++stats_.errors;
  } else if (fault_plan_ != nullptr) {
    const FaultDecision decision =
        fault_plan_->consult(txn.is_read ? FaultSite::kBusRead : FaultSite::kBusWrite);
    switch (decision.kind) {
      case FaultKind::kError:
        txn.status = BusStatus::kError;
        txn.window = nullptr;  // Data phase skipped, like a decode error.
        ++stats_.errors;
        ++stats_.injected_errors;
        break;
      case FaultKind::kDropResponse:
        txn.dropped = true;
        ++stats_.injected_drops;
        break;
      case FaultKind::kExtraLatency:
        extra_latency = extra_latency + decision.extra_latency;
        ++stats_.injected_delays;
        break;
      case FaultKind::kBitFlip:
        txn.flip_mask = decision.flip_mask;
        ++stats_.injected_bit_flips;
        break;
      case FaultKind::kNone:
      case FaultKind::kGlitch:
        break;
    }
  }
  // In-order pipeline: a delayed transaction delays everything behind it,
  // so completion times are monotone along the FIFO and the single
  // completion process pops the matching entry.
  const std::uint64_t earliest = (kernel_.now() + latency_ + extra_latency).picoseconds();
  const std::uint64_t complete_at = std::max(earliest, last_completion_ps_);
  last_completion_ps_ = complete_at;
  pending_.push_back(std::move(txn));
  kernel_.schedule(SimTime(complete_at - kernel_.now().picoseconds()), completion_);
}

void MemoryMappedBus::complete_front() {
  Pending txn = std::move(pending_.front());
  pending_.pop_front();
  ++stats_.completions;
  if (txn.dropped) {
    // Hung device: no data phase, and the master's callback never fires.
    // Timeout supervision (BusMasterPort) is the only way out.
    ++stats_.dropped_completions;
    return;
  }
  if (txn.is_read) {
    std::uint64_t value = kBusError;
    if (txn.status == BusStatus::kOk) value = txn.window->read(txn.address) ^ txn.flip_mask;
    if (txn.read_done != nullptr) txn.read_done(txn.status, value);
  } else {
    if (txn.status == BusStatus::kOk) txn.window->write(txn.address, txn.value ^ txn.flip_mask);
    if (txn.write_done != nullptr) txn.write_done(txn.status);
  }
}

void MemoryMappedBus::read(std::uint64_t address, ReadCompletion done) {
  ++stats_.reads;
  const Window* window = find_window(address);
  if (window != nullptr && window->read == nullptr) window = nullptr;
  issue(Pending{window, BusStatus::kOk, true, false, address, 0, 0, std::move(done), nullptr},
        SimTime());
}

void MemoryMappedBus::write(std::uint64_t address, std::uint64_t value, WriteCompletion done) {
  ++stats_.writes;
  const Window* window = find_window(address);
  if (window != nullptr && window->write == nullptr) window = nullptr;
  issue(Pending{window, BusStatus::kOk, false, false, address, value, 0, nullptr,
                std::move(done)},
        SimTime());
}

// --- BusMasterPort ----------------------------------------------------------

BusMasterPort::BusMasterPort(Kernel& kernel, MemoryMappedBus& bus, std::string name,
                             RetryPolicy policy)
    : kernel_(kernel), bus_(bus), name_(std::move(name)), policy_(policy) {
  inflight_ = kernel_.register_expectation(bus_.name() + "." + name_ + " in-flight");
  timeout_process_ = kernel_.register_process([this] { check_timeouts(); },
                                              "port." + bus_.name() + "." + name_ + ".timeout");
}

SimTime BusMasterPort::deadline_for(int attempt) const {
  std::uint64_t deadline_ps = policy_.timeout.picoseconds();
  for (int i = 0; i < attempt; ++i) {
    const std::uint64_t scaled = deadline_ps * policy_.backoff_multiplier;
    if (policy_.backoff_multiplier != 0 && scaled / policy_.backoff_multiplier != deadline_ps) {
      return SimTime::max();  // Saturate instead of wrapping.
    }
    deadline_ps = scaled;
  }
  return SimTime(deadline_ps);
}

void BusMasterPort::notify(Notice::Kind kind, const Txn& txn, BusStatus status) const {
  if (listener_ == nullptr) return;
  listener_(Notice{kind, status, txn.is_read, txn.address, txn.attempt});
}

void BusMasterPort::read(std::uint64_t address, MemoryMappedBus::ReadCompletion done) {
  ++stats_.transactions;
  kernel_.expect(inflight_);
  auto txn = std::make_shared<Txn>();
  txn->is_read = true;
  txn->address = address;
  txn->read_done = std::move(done);
  start_attempt(txn);
}

void BusMasterPort::write(std::uint64_t address, std::uint64_t value,
                          MemoryMappedBus::WriteCompletion done) {
  ++stats_.transactions;
  kernel_.expect(inflight_);
  auto txn = std::make_shared<Txn>();
  txn->is_read = false;
  txn->address = address;
  txn->value = value;
  txn->write_done = std::move(done);
  start_attempt(txn);
}

void BusMasterPort::finish(const std::shared_ptr<Txn>& txn, BusStatus status,
                           std::uint64_t value) {
  txn->completed = true;
  kernel_.fulfill(inflight_);
  if (status == BusStatus::kOk && txn->attempt > 0) ++stats_.recovered;
  notify(status == BusStatus::kTimeout ? Notice::Kind::kExhausted : Notice::Kind::kCompleted,
         *txn, status);
  if (txn->is_read) {
    if (txn->read_done != nullptr) txn->read_done(status, value);
  } else {
    if (txn->write_done != nullptr) txn->write_done(status);
  }
}

bool BusMasterPort::try_retry(const std::shared_ptr<Txn>& txn) {
  if (txn->attempt + 1 >= policy_.max_attempts) return false;
  ++txn->attempt;
  ++stats_.retries;
  notify(Notice::Kind::kRetry, *txn, BusStatus::kOk);
  start_attempt(txn);
  return true;
}

void BusMasterPort::start_attempt(const std::shared_ptr<Txn>& txn) {
  // Each attempt is guarded by its generation: a response (or timeout)
  // belonging to a superseded attempt is ignored, so a slow completion that
  // arrives after its retry was issued cannot complete the transaction
  // twice or out of order.
  const int attempt = txn->attempt;
  if (txn->is_read) {
    bus_.read(txn->address, [this, txn, attempt](BusStatus status, std::uint64_t value) {
      if (txn->completed || txn->attempt != attempt) {
        ++stats_.late_completions;
        return;
      }
      if (status == BusStatus::kError && policy_.retry_on_error && try_retry(txn)) return;
      finish(txn, status, value);
    });
  } else {
    bus_.write(txn->address, txn->value, [this, txn, attempt](BusStatus status) {
      if (txn->completed || txn->attempt != attempt) {
        ++stats_.late_completions;
        return;
      }
      if (status == BusStatus::kError && policy_.retry_on_error && try_retry(txn)) return;
      finish(txn, status, MemoryMappedBus::kBusError);
    });
  }
  if (policy_.timeout.picoseconds() == 0) return;
  const SimTime deadline = deadline_for(attempt);
  supervision_.push_back(
      Supervision{(kernel_.now() + deadline).picoseconds(), attempt, txn});
  kernel_.schedule(deadline, timeout_process_);
}

void BusMasterPort::check_timeouts() {
  // Drain every entry that is due. Extra wakeups (several entries due at
  // one instant drained by the first) find nothing and fall through.
  const std::uint64_t now_ps = kernel_.now().picoseconds();
  due_scratch_.clear();
  std::size_t kept = 0;
  for (Supervision& entry : supervision_) {
    if (entry.due_ps <= now_ps) {
      due_scratch_.push_back(std::move(entry));
    } else {
      supervision_[kept++] = std::move(entry);
    }
  }
  supervision_.resize(kept);
  for (const Supervision& due : due_scratch_) handle_timeout(due.txn, due.attempt);
  due_scratch_.clear();
}

void BusMasterPort::handle_timeout(const std::shared_ptr<Txn>& txn, int attempt) {
  if (txn->completed || txn->attempt != attempt) return;  // Attempt resolved.
  ++stats_.timeouts;
  notify(Notice::Kind::kTimeout, *txn, BusStatus::kTimeout);
  if (try_retry(txn)) return;
  ++stats_.exhausted;
  finish(txn, BusStatus::kTimeout, MemoryMappedBus::kBusError);
}

}  // namespace umlsoc::sim
