#include "sim/bus.hpp"

namespace umlsoc::sim {

MemoryMappedBus::MemoryMappedBus(Kernel& kernel, std::string name, SimTime latency)
    : kernel_(kernel), name_(std::move(name)), latency_(latency) {
  completion_ = kernel_.register_process([this] { complete_front(); });
}

void MemoryMappedBus::map_device(std::string device_name, std::uint64_t base,
                                 std::uint64_t size, ReadHandler read, WriteHandler write) {
  windows_.push_back(Window{std::move(device_name), base, size, std::move(read),
                            std::move(write)});
}

const MemoryMappedBus::Window* MemoryMappedBus::find_window(std::uint64_t address) const {
  for (const Window& window : windows_) {
    if (address >= window.base && address - window.base < window.size) return &window;
  }
  return nullptr;
}

void MemoryMappedBus::complete_front() {
  Pending txn = std::move(pending_.front());
  pending_.pop_front();
  if (txn.is_read) {
    const std::uint64_t value =
        txn.window == nullptr ? kBusError : txn.window->read(txn.address);
    if (txn.read_done != nullptr) txn.read_done(value);
  } else {
    if (txn.window != nullptr) txn.window->write(txn.address, txn.value);
    if (txn.write_done != nullptr) txn.write_done();
  }
}

void MemoryMappedBus::read(std::uint64_t address, std::function<void(std::uint64_t)> done) {
  ++reads_;
  const Window* window = find_window(address);
  if (window == nullptr || window->read == nullptr) {
    ++errors_;
    window = nullptr;
  }
  pending_.push_back(Pending{window, true, address, 0, std::move(done), nullptr});
  kernel_.schedule(latency_, completion_);
}

void MemoryMappedBus::write(std::uint64_t address, std::uint64_t value,
                            std::function<void()> done) {
  ++writes_;
  const Window* window = find_window(address);
  if (window == nullptr || window->write == nullptr) {
    ++errors_;
    window = nullptr;
  }
  pending_.push_back(Pending{window, false, address, value, nullptr, std::move(done)});
  kernel_.schedule(latency_, completion_);
}

}  // namespace umlsoc::sim
