#include "sim/trace.hpp"

namespace umlsoc::sim {

void Tracer::record(Log& log, const std::string& signal, std::string value) {
  log.records.push_back(Record{log.kernel->now().picoseconds(), signal, std::move(value)});
}

std::string Tracer::dump() const {
  std::string out;
  for (const Record& record : log_->records) {
    out += std::to_string(record.time_ps);
    out += ' ';
    out += record.signal;
    out += '=';
    out += record.value;
    out += '\n';
  }
  return out;
}

}  // namespace umlsoc::sim
