#include "sim/trace.hpp"

namespace umlsoc::sim {

void Tracer::record(const std::string& signal, std::string value) {
  records_.push_back(Record{kernel_->now().picoseconds(), signal, std::move(value)});
}

std::string Tracer::dump() const {
  std::string out;
  for (const Record& record : records_) {
    out += std::to_string(record.time_ps);
    out += ' ';
    out += record.signal;
    out += '=';
    out += record.value;
    out += '\n';
  }
  return out;
}

}  // namespace umlsoc::sim
