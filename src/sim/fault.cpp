#include "sim/fault.hpp"

namespace umlsoc::sim {

namespace {

/// SplitMix64 finalizer: decorrelates the per-site seeds derived from the
/// plan seed so sites draw independent streams.
std::uint64_t mix(std::uint64_t value) {
  value += 0x9e3779b97f4a7c15ULL;
  value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
  value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
  return value ^ (value >> 31);
}

}  // namespace

std::string_view to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kBusRead:
      return "bus-read";
    case FaultSite::kBusWrite:
      return "bus-write";
    case FaultSite::kSignal:
      return "signal";
    case FaultSite::kCheckpoint:
      return "checkpoint";
    case FaultSite::kCrash:
      return "crash";
  }
  return "?";
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kError:
      return "error";
    case FaultKind::kDropResponse:
      return "drop";
    case FaultKind::kExtraLatency:
      return "delay";
    case FaultKind::kBitFlip:
      return "bit-flip";
    case FaultKind::kGlitch:
      return "glitch";
  }
  return "?";
}

FaultPlan::FaultPlan(std::uint64_t seed) : seed_(seed) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    sites_[i].rng = support::Rng(mix(seed ^ (i + 1)));
  }
}

void FaultPlan::configure(FaultSite site, SiteConfig config) {
  sites_[static_cast<std::size_t>(site)].config = config;
}

FaultDecision FaultPlan::consult(FaultSite site) {
  Site& entry = sites_[static_cast<std::size_t>(site)];
  if (!entry.config.enabled) return {};
  ++entry.counters.consults;
  if (entry.counters.injected() >= entry.config.max_faults) return {};

  // One uniform draw partitioned into bands keeps the stream aligned no
  // matter which kind fires; kind-specific parameters draw extra values
  // only on a hit.
  const double u = entry.rng.uniform();
  double band = entry.config.error_rate;
  FaultDecision decision;
  if (u < band) {
    decision.kind = FaultKind::kError;
    ++entry.counters.errors;
    return decision;
  }
  band += entry.config.drop_rate;
  if (u < band) {
    decision.kind = FaultKind::kDropResponse;
    ++entry.counters.drops;
    return decision;
  }
  band += entry.config.extra_latency_rate;
  if (u < band) {
    decision.kind = FaultKind::kExtraLatency;
    const std::uint64_t max_ps = entry.config.max_extra_latency.picoseconds();
    decision.extra_latency = SimTime(max_ps == 0 ? 0 : entry.rng.below(max_ps) + 1);
    ++entry.counters.delays;
    return decision;
  }
  band += entry.config.bit_flip_rate;
  if (u < band) {
    decision.kind = FaultKind::kBitFlip;
    decision.flip_mask = 1ULL << entry.rng.below(64);
    ++entry.counters.bit_flips;
    return decision;
  }
  band += entry.config.glitch_rate;
  if (u < band) {
    decision.kind = FaultKind::kGlitch;
    ++entry.counters.glitches;
    return decision;
  }
  return decision;
}

std::uint64_t FaultPlan::total_injected() const {
  std::uint64_t total = 0;
  for (const Site& site : sites_) total += site.counters.injected();
  return total;
}

std::uint64_t FaultPlan::revision() const {
  // Mixes rather than sums: restore_site_state can rewind counters, and a
  // rewind must not collide with the pre-restore fingerprint.
  std::uint64_t hash = 1469598103934665603ULL;
  const auto combine = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  for (const Site& site : sites_) {
    combine(site.rng.state());
    combine(site.counters.consults);
    combine(site.counters.injected());
  }
  return hash;
}

std::string FaultPlan::str() const {
  std::string out = "fault-plan seed=" + std::to_string(seed_);
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const SiteCounters& counters = sites_[i].counters;
    if (counters.consults == 0) continue;
    out += " " + std::string(to_string(static_cast<FaultSite>(i))) + "{consults=" +
           std::to_string(counters.consults);
    if (counters.errors != 0) out += " errors=" + std::to_string(counters.errors);
    if (counters.drops != 0) out += " drops=" + std::to_string(counters.drops);
    if (counters.delays != 0) out += " delays=" + std::to_string(counters.delays);
    if (counters.bit_flips != 0) out += " bit-flips=" + std::to_string(counters.bit_flips);
    if (counters.glitches != 0) out += " glitches=" + std::to_string(counters.glitches);
    out += "}";
  }
  return out;
}

// --- Watchdog ---------------------------------------------------------------

Watchdog::Watchdog(Kernel& kernel, std::string name, SimTime deadline,
                   std::function<void()> on_trip)
    : kernel_(kernel),
      name_(std::move(name)),
      deadline_(deadline),
      on_trip_(std::move(on_trip)) {
  check_process_ = kernel_.register_process([this] { check(); }, "wd." + name_ + ".check");
  expectation_ = kernel_.register_expectation("watchdog " + name_ + " armed");
}

void Watchdog::arm() {
  if (armed_) {
    kick();
    return;
  }
  armed_ = true;
  tripped_ = false;
  ++revision_;
  trip_at_ps_ = (kernel_.now() + deadline_).picoseconds();
  kernel_.expect(expectation_);
  if (!check_pending_) {
    check_pending_ = true;
    kernel_.schedule(deadline_, check_process_);
  }
}

void Watchdog::kick() {
  if (!armed_) return;
  ++kicks_;
  ++revision_;
  // The already-scheduled check observes the extended trip point and
  // re-schedules itself — no cancellation needed.
  trip_at_ps_ = (kernel_.now() + deadline_).picoseconds();
}

void Watchdog::disarm() {
  if (!armed_) return;
  armed_ = false;
  ++revision_;
  kernel_.fulfill(expectation_);
}

void Watchdog::check() {
  // check_pending_ flips even on the no-trip paths, so every invocation
  // counts as a state change for dirty tracking.
  ++revision_;
  check_pending_ = false;
  if (!armed_) return;
  const std::uint64_t now_ps = kernel_.now().picoseconds();
  if (now_ps < trip_at_ps_) {
    // Kicked since this check was scheduled: supervise up to the new point.
    check_pending_ = true;
    kernel_.schedule(SimTime(trip_at_ps_ - now_ps), check_process_);
    return;
  }
  armed_ = false;
  tripped_ = true;
  ++trips_;
  kernel_.fulfill(expectation_);
  if (on_trip_ != nullptr) on_trip_();
}

// --- CrashInjector ----------------------------------------------------------

CrashInjector::CrashInjector(Kernel& kernel, FaultPlan* plan, SimTime interval)
    : kernel_(kernel), plan_(plan), interval_(interval) {
  tick_process_ = kernel_.register_process([this] { tick(); }, "crash.tick");
}

void CrashInjector::start() {
  if (started_) return;
  started_ = true;
  kernel_.schedule(interval_, tick_process_);
}

void CrashInjector::tick() {
  // Reschedule before the draw: the pending next tick must exist in any
  // checkpoint captured after this instant, and must survive the throw.
  kernel_.schedule(interval_, tick_process_);
  if (plan_ == nullptr || !armed_) return;
  const FaultDecision decision = plan_->consult(FaultSite::kCrash);
  if (decision.kind != FaultKind::kError) return;
  ++crashes_;
  throw SimulatedCrash(kernel_.now().picoseconds());
}

// --- SignalGlitcher ---------------------------------------------------------

SignalGlitcher::SignalGlitcher(Kernel& kernel, FaultPlan& plan, Signal<bool>& target,
                               SimTime interval, SimTime width)
    : kernel_(kernel), plan_(plan), target_(target), interval_(interval), width_(width) {
  tick_process_ = kernel_.register_process([this] { tick(); },
                                           "glitch." + target.name() + ".tick");
  restore_process_ = kernel_.register_process([this] { target_.write(restore_value_); },
                                              "glitch." + target.name() + ".restore");
}

void SignalGlitcher::start() {
  if (running_) return;
  running_ = true;
  if (!tick_pending_) {
    tick_pending_ = true;
    kernel_.schedule(interval_, tick_process_);
  }
}

void SignalGlitcher::tick() {
  tick_pending_ = false;
  if (!running_) return;
  const FaultDecision decision = plan_.consult(FaultSite::kSignal);
  if (decision.kind == FaultKind::kGlitch) {
    ++glitches_;
    restore_value_ = target_.read();
    target_.write(!restore_value_);
    kernel_.schedule(width_, restore_process_);
  }
  tick_pending_ = true;
  kernel_.schedule(interval_, tick_process_);
}

}  // namespace umlsoc::sim
