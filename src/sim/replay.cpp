#include "sim/replay.hpp"

namespace umlsoc::sim {

namespace {

std::string describe(const RecordedEvent& event, const std::string& label) {
  std::string out = "process " + std::to_string(event.process);
  if (!label.empty()) out += " '" + label + "'";
  out += " at " + SimTime(event.at_ps).str();
  return out;
}

}  // namespace

std::string EventRecorder::Divergence::str() const {
  std::string out = "diverged at event #" + std::to_string(index) + ": ";
  if (extra_event) {
    out += "expected end of log, got " + describe(actual, actual_label);
  } else if (actual.process == kInvalidProcess) {
    out += "expected " + describe(expected, expected_label) + ", got end of run";
  } else {
    out += "expected " + describe(expected, expected_label) + ", got " +
           describe(actual, actual_label);
  }
  return out;
}

EventRecorder::EventRecorder(std::size_t ring_capacity) : ring_capacity_(ring_capacity) {
  if (ring_capacity_ != 0) events_.reserve(ring_capacity_);
}

std::vector<RecordedEvent> EventRecorder::log() const {
  if (ring_capacity_ == 0 || events_.size() < ring_capacity_) return events_;
  std::vector<RecordedEvent> out;
  out.reserve(events_.size());
  out.insert(out.end(), events_.begin() + static_cast<std::ptrdiff_t>(ring_head_),
             events_.end());
  out.insert(out.end(), events_.begin(),
             events_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
  return out;
}

void EventRecorder::restore_log(std::vector<RecordedEvent> events, std::uint64_t total) {
  events_ = std::move(events);
  ring_head_ = 0;
  total_ = total;
  if (ring_capacity_ != 0 && events_.size() > ring_capacity_) {
    events_.erase(events_.begin(),
                  events_.end() - static_cast<std::ptrdiff_t>(ring_capacity_));
  }
  divergence_.reset();
}

void EventRecorder::begin_verify(std::vector<RecordedEvent> expected,
                                 std::uint64_t start_index) {
  mode_ = Mode::kVerify;
  expected_ = std::move(expected);
  total_ = start_index;
  divergence_.reset();
}

void EventRecorder::end_verify() {
  if (mode_ != Mode::kVerify) return;
  mode_ = Mode::kRecord;
  expected_.clear();
}

std::optional<EventRecorder::Divergence> EventRecorder::missing_events() const {
  if (divergence_.has_value()) return divergence_;
  if (mode_ != Mode::kVerify || total_ >= expected_.size()) return std::nullopt;
  Divergence divergence;
  divergence.index = total_;
  divergence.expected = expected_[total_];
  divergence.actual = RecordedEvent{};  // process == kInvalidProcess: end of run.
  return divergence;
}

void EventRecorder::on_event_slow(std::uint64_t at_ps, ProcessId process,
                                  const Kernel& kernel) {
  const RecordedEvent event{at_ps, process};
  const std::uint64_t index = total_++;

  if (mode_ == Mode::kVerify && !divergence_.has_value()) {
    if (index >= expected_.size()) {
      Divergence divergence;
      divergence.index = index;
      divergence.extra_event = true;
      divergence.actual = event;
      divergence.actual_label = kernel.process_label(process);
      divergence_ = std::move(divergence);
    } else if (expected_[index] != event) {
      Divergence divergence;
      divergence.index = index;
      divergence.expected = expected_[index];
      divergence.actual = event;
      if (divergence.expected.process < kernel.process_count()) {
        divergence.expected_label = kernel.process_label(divergence.expected.process);
      }
      divergence.actual_label = kernel.process_label(process);
      divergence_ = std::move(divergence);
    }
  }

  if (ring_capacity_ == 0) {
    events_.push_back(event);
    return;
  }
  if (events_.size() < ring_capacity_) {
    events_.push_back(event);
    return;
  }
  events_[ring_head_] = event;
  ring_head_ = (ring_head_ + 1) % ring_capacity_;
}

std::optional<EventRecorder::Divergence> first_divergence(
    const std::vector<RecordedEvent>& expected, const std::vector<RecordedEvent>& actual,
    const Kernel* kernel) {
  const std::size_t common = std::min(expected.size(), actual.size());
  auto label_of = [&](ProcessId process) -> std::string {
    if (kernel == nullptr || process >= kernel->process_count()) return {};
    return kernel->process_label(process);
  };
  for (std::size_t i = 0; i < common; ++i) {
    if (expected[i] == actual[i]) continue;
    EventRecorder::Divergence divergence;
    divergence.index = i;
    divergence.expected = expected[i];
    divergence.actual = actual[i];
    divergence.expected_label = label_of(expected[i].process);
    divergence.actual_label = label_of(actual[i].process);
    return divergence;
  }
  if (expected.size() == actual.size()) return std::nullopt;
  EventRecorder::Divergence divergence;
  divergence.index = common;
  if (actual.size() > expected.size()) {
    divergence.extra_event = true;
    divergence.actual = actual[common];
    divergence.actual_label = label_of(actual[common].process);
  } else {
    divergence.expected = expected[common];
    divergence.actual = RecordedEvent{};
    divergence.expected_label = label_of(expected[common].process);
  }
  return divergence;
}

}  // namespace umlsoc::sim
