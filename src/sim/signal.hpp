// Signals with delta-cycle update semantics, and a free-running clock.
#pragma once

#include <deque>
#include <string>
#include <utility>

#include "sim/kernel.hpp"

namespace umlsoc::sim {

/// SystemC-style signal: writes are visible only after the update phase of
/// the delta cycle in which they were made; a real value change notifies
/// the value_changed event (waking sensitive processes next delta).
template <typename T>
class Signal final : public Updatable {
 public:
  Signal(Kernel& kernel, std::string name, T initial = T{})
      : kernel_(kernel),
        name_(std::move(name)),
        current_(initial),
        next_(initial),
        value_changed_(kernel, name_ + ".changed") {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const T& read() const { return current_; }

  void write(const T& value) {
    next_ = value;
    if (!update_pending_) {
      update_pending_ = true;
      kernel_.request_update(*this);
    }
  }

  /// Event fired whenever the committed value actually changes.
  [[nodiscard]] SimEvent& value_changed() { return value_changed_; }

  [[nodiscard]] std::uint64_t change_count() const { return change_count_; }

  void update() override {
    update_pending_ = false;
    if (next_ != current_) {
      current_ = next_;
      ++change_count_;
      value_changed_.notify();
    }
  }

 private:
  Kernel& kernel_;
  std::string name_;
  T current_;
  T next_;
  SimEvent value_changed_;
  bool update_pending_ = false;
  std::uint64_t change_count_ = 0;
};

/// Free-running clock: a bool signal toggling every half period. The toggle
/// is a single registered process that re-schedules its own handle, so a
/// running clock costs zero allocations per edge.
class Clock {
 public:
  Clock(Kernel& kernel, std::string name, SimTime period)
      : kernel_(kernel), signal_(kernel, std::move(name), false), half_period_(period.picoseconds() / 2) {
    toggle_ = kernel_.register_process([this] {
      signal_.write(!signal_.read());
      kernel_.schedule(SimTime(half_period_), toggle_);
    });
    kernel_.schedule(SimTime(half_period_), toggle_);
  }

  [[nodiscard]] Signal<bool>& signal() { return signal_; }
  /// Fires on every rising edge (false -> true commit).
  [[nodiscard]] SimEvent& posedge() { return signal_.value_changed(); }
  [[nodiscard]] bool high() const { return signal_.read(); }

 private:
  Kernel& kernel_;
  Signal<bool> signal_;
  std::uint64_t half_period_;
  ProcessId toggle_ = kInvalidProcess;
};

/// Bounded FIFO channel with data/space events (the non-blocking face of
/// sc_fifo; generated SW/HW bridges poll or subscribe).
template <typename T>
class Fifo {
 public:
  Fifo(Kernel& kernel, std::string name, std::size_t capacity)
      : name_(std::move(name)),
        capacity_(capacity),
        data_available_(kernel, name_ + ".data"),
        space_available_(kernel, name_ + ".space") {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }

  bool nb_write(const T& value) {
    if (full()) return false;
    items_.push_back(value);
    ++writes_;
    data_available_.notify();
    return true;
  }

  bool nb_read(T& out) {
    if (empty()) return false;
    out = items_.front();
    items_.pop_front();
    ++reads_;
    space_available_.notify();
    return true;
  }

  [[nodiscard]] SimEvent& data_available() { return data_available_; }
  [[nodiscard]] SimEvent& space_available() { return space_available_; }
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::deque<T> items_;
  SimEvent data_available_;
  SimEvent space_available_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
};

}  // namespace umlsoc::sim
