// Deterministic fault injection and resilience helpers.
//
// A FaultPlan is a seeded, reproducible source of fault decisions that
// components consult at fixed injection sites (bus read/write issue, signal
// glitch ticks). Each site owns an independent SplitMix64 stream derived
// from the plan seed, so enabling or disabling one site never perturbs the
// decision sequence of another, and a fixed seed replays the exact same
// fault sequence for a deterministic simulation.
//
// Nothing in the simulation pays for this when no plan is installed: the
// bus and the glitcher hold a nullable FaultPlan pointer and the only cost
// on the fault-free path is that null check.
//
// The Watchdog models the classic hardware watchdog timer: a registered
// kernel process that trips (optionally invoking a callback) when not
// kicked within its deadline. While armed it registers a kernel
// expectation, so a run that drains with a watchdog still armed shows up
// in the Kernel's QuiescenceReport instead of passing silently.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>

#include "sim/kernel.hpp"
#include "sim/signal.hpp"
#include "support/rng.hpp"

namespace umlsoc::sim {

/// Injection sites. Every site draws from its own seeded stream in consult
/// order; the per-site split keeps sequences stable across configuration
/// changes at other sites.
enum class FaultSite : std::uint8_t {
  kBusRead = 0,     ///< Consulted when a bus read is issued.
  kBusWrite = 1,    ///< Consulted when a bus write is issued.
  kSignal = 2,      ///< Consulted by SignalGlitcher ticks.
  kCheckpoint = 3,  ///< Consulted per CheckpointStore write (torn/corrupt files).
  kCrash = 4,       ///< Consulted by CrashInjector ticks (simulated process death).
};
inline constexpr std::size_t kFaultSiteCount = 5;

[[nodiscard]] std::string_view to_string(FaultSite site);

/// What a consult decided to break, if anything.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kError,         ///< Transaction completes with BusStatus::kError.
  kDropResponse,  ///< Device hangs: the completion callback never fires.
  kExtraLatency,  ///< Transaction completes late by `extra_latency`.
  kBitFlip,       ///< Data corrupted by `flip_mask` during the data phase.
  kGlitch,        ///< Spurious signal pulse (signal sites only).
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  SimTime extra_latency{};      ///< Valid for kExtraLatency.
  std::uint64_t flip_mask = 0;  ///< Valid for kBitFlip (single bit set).

  [[nodiscard]] bool faulted() const { return kind != FaultKind::kNone; }
};

/// Seeded, per-site-configurable fault source.
class FaultPlan {
 public:
  /// Per-site behavior. Rates are probabilities per consult, resolved by a
  /// single uniform draw partitioned into bands (error, then drop, then
  /// latency, then flip, then glitch) — at most one fault per consult.
  struct SiteConfig {
    bool enabled = true;
    double error_rate = 0.0;
    double drop_rate = 0.0;
    double extra_latency_rate = 0.0;
    double bit_flip_rate = 0.0;
    double glitch_rate = 0.0;
    /// Injected latency is uniform in [1ps, max_extra_latency].
    SimTime max_extra_latency = SimTime::ns(100);
    /// Hard cap on faults injected at this site; consults past the cap
    /// decide kNone (counters keep counting consults).
    std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();
  };

  struct SiteCounters {
    std::uint64_t consults = 0;
    std::uint64_t errors = 0;
    std::uint64_t drops = 0;
    std::uint64_t delays = 0;
    std::uint64_t bit_flips = 0;
    std::uint64_t glitches = 0;

    [[nodiscard]] std::uint64_t injected() const {
      return errors + drops + delays + bit_flips + glitches;
    }
  };

  explicit FaultPlan(std::uint64_t seed);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  void configure(FaultSite site, SiteConfig config);
  [[nodiscard]] const SiteConfig& config(FaultSite site) const {
    return sites_[static_cast<std::size_t>(site)].config;
  }

  /// Per-site enable mask on top of the configured rates. A disabled site
  /// decides kNone without consuming its random stream.
  void set_enabled(FaultSite site, bool enabled) {
    sites_[static_cast<std::size_t>(site)].config.enabled = enabled;
  }

  /// Draws the next decision for `site`. Deterministic: same seed, same
  /// per-site consult sequence => same decisions.
  FaultDecision consult(FaultSite site);

  [[nodiscard]] const SiteCounters& counters(FaultSite site) const {
    return sites_[static_cast<std::size_t>(site)].counters;
  }
  [[nodiscard]] std::uint64_t total_injected() const;

  /// Checkpointable per-site stream position: RNG state plus counters.
  /// Restoring both resumes the decision sequence exactly where the
  /// captured plan left off (configs are not captured — the restoring setup
  /// reconstructs them).
  struct SiteState {
    std::uint64_t rng_state = 0;
    SiteCounters counters;
  };
  [[nodiscard]] SiteState site_state(FaultSite site) const {
    const Site& entry = sites_[static_cast<std::size_t>(site)];
    return SiteState{entry.rng.state(), entry.counters};
  }
  void restore_site_state(FaultSite site, const SiteState& state) {
    Site& entry = sites_[static_cast<std::size_t>(site)];
    entry.rng.set_state(state.rng_state);
    entry.counters = state.counters;
  }

  /// Change-detection fingerprint over every site's stream position and
  /// counters. Incremental checkpointing (replay::CheckpointStore) treats an
  /// unchanged revision as "this plan's snapshot section cannot have
  /// changed" and skips re-encoding it; every consult and every
  /// restore_site_state call perturbs the value.
  [[nodiscard]] std::uint64_t revision() const;

  /// "site=kind*count ..." summary for logs and reports.
  [[nodiscard]] std::string str() const;

 private:
  struct Site {
    SiteConfig config;
    SiteCounters counters;
    support::Rng rng;

    Site() : rng(0) {}
  };

  std::uint64_t seed_;
  Site sites_[kFaultSiteCount];
};

/// Hardware-style watchdog timer. Arm it, kick it within the deadline or it
/// trips: `tripped()` turns true, the optional on_trip callback runs, and
/// the watchdog disarms (re-arm explicitly to continue supervision). While
/// armed it holds a kernel expectation so an end-of-run QuiescenceReport
/// lists watchdogs that were never resolved.
class Watchdog {
 public:
  Watchdog(Kernel& kernel, std::string name, SimTime deadline,
           std::function<void()> on_trip = nullptr);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SimTime deadline() const { return deadline_; }

  /// Replaces (or clears, with nullptr) the trip callback. Supervision
  /// wiring installs its failure handler here after construction
  /// (Supervisor::attach_watchdog).
  void set_on_trip(std::function<void()> on_trip) { on_trip_ = std::move(on_trip); }

  /// Starts (or restarts) supervision; clears a previous trip.
  void arm();
  /// Pushes the trip point out to now + deadline. No-op when not armed.
  void kick();
  /// Stops supervision without tripping.
  void disarm();

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] bool tripped() const { return tripped_; }
  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::uint64_t kicks() const { return kicks_; }

  /// Bumped by every state-changing call (arm/kick/disarm, the scheduled
  /// check, checkpoint restore). Incremental checkpointing skips re-encoding
  /// the watchdog section while the revision holds still.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Checkpointable supervision state. The scheduled check event itself
  /// lives in the kernel checkpoint (the check process is a registered
  /// handle), and the armed expectation count is restored by the kernel's
  /// expectation registry — restore_checkpoint only reinstates the
  /// watchdog-local flags, so it must run after Kernel::restore_checkpoint.
  struct Checkpoint {
    bool armed = false;
    bool tripped = false;
    bool check_pending = false;
    std::uint64_t trip_at_ps = 0;
    std::uint64_t trips = 0;
    std::uint64_t kicks = 0;
  };
  [[nodiscard]] Checkpoint capture_checkpoint() const {
    return Checkpoint{armed_, tripped_, check_pending_, trip_at_ps_, trips_, kicks_};
  }
  void restore_checkpoint(const Checkpoint& checkpoint) {
    armed_ = checkpoint.armed;
    tripped_ = checkpoint.tripped;
    check_pending_ = checkpoint.check_pending;
    trip_at_ps_ = checkpoint.trip_at_ps;
    trips_ = checkpoint.trips;
    kicks_ = checkpoint.kicks;
    ++revision_;
  }

 private:
  void check();

  Kernel& kernel_;
  std::string name_;
  SimTime deadline_;
  std::function<void()> on_trip_;
  ProcessId check_process_ = kInvalidProcess;
  ExpectationId expectation_ = kInvalidExpectation;
  std::uint64_t trip_at_ps_ = 0;  ///< Current trip point (last kick + deadline).
  bool armed_ = false;
  bool check_pending_ = false;
  bool tripped_ = false;
  std::uint64_t trips_ = 0;
  std::uint64_t kicks_ = 0;
  std::uint64_t revision_ = 0;
};

/// Simulated process death: thrown out of the kernel's run loop by a
/// CrashInjector mid-delta-cycle. The throwing rig is *not* expected to
/// stay usable — the crash models the whole process dying, so recovery
/// means abandoning the rig and warm-restarting a fresh one from the
/// on-disk checkpoint ladder (replay::RecoveryCoordinator::recover).
struct SimulatedCrash : std::runtime_error {
  explicit SimulatedCrash(std::uint64_t at)
      : std::runtime_error("simulated crash at " + SimTime(at).str()), at_ps(at) {}

  std::uint64_t at_ps = 0;  ///< Simulation time the crash fired.
};

/// Periodically consults the plan's kCrash site and, on a kError decision,
/// throws SimulatedCrash from inside its tick process — process death in
/// the middle of a delta cycle, with whatever in-memory state existed at
/// that instant lost.
///
/// The plan is nullable so a reference twin can run an identical injector
/// (same registered process, same tick schedule, hence an identical
/// recorded event stream) that never crashes. The tick reschedules itself
/// unconditionally, so after a snapshot restore the pending tick restored
/// by the kernel checkpoint keeps the chain alive without calling start()
/// again — call start() exactly once, before the first run().
class CrashInjector {
 public:
  CrashInjector(Kernel& kernel, FaultPlan* plan, SimTime interval);

  /// Schedules the first tick. Call once; after a checkpoint restore the
  /// restored pending tick continues the chain automatically.
  void start();
  /// Disarms the crash draw; ticks continue (the tick chain is part of the
  /// recorded event stream and must look identical on rigs that never
  /// crash). Arm/disarm have no simulation-visible effect, so a harness can
  /// hold the injector disarmed until a first clean checkpoint has landed.
  void disarm() { armed_ = false; }
  void arm() { armed_ = true; }
  [[nodiscard]] bool armed() const { return armed_; }

  [[nodiscard]] std::uint64_t crashes() const { return crashes_; }

 private:
  void tick();

  Kernel& kernel_;
  FaultPlan* plan_;
  SimTime interval_;
  ProcessId tick_process_ = kInvalidProcess;
  bool armed_ = true;
  bool started_ = false;
  std::uint64_t crashes_ = 0;
};

/// Periodically consults the plan's kSignal site and, on a kGlitch
/// decision, inverts a bool signal for `width` before restoring it — a
/// spurious pulse that sensitivity lists and edge detectors observe.
class SignalGlitcher {
 public:
  SignalGlitcher(Kernel& kernel, FaultPlan& plan, Signal<bool>& target, SimTime interval,
                 SimTime width);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t glitches() const { return glitches_; }

 private:
  void tick();

  Kernel& kernel_;
  FaultPlan& plan_;
  Signal<bool>& target_;
  SimTime interval_;
  SimTime width_;
  ProcessId tick_process_ = kInvalidProcess;
  ProcessId restore_process_ = kInvalidProcess;
  bool restore_value_ = false;
  bool running_ = false;
  bool tick_pending_ = false;
  std::uint64_t glitches_ = 0;
};

}  // namespace umlsoc::sim
