// VCD-like text tracing of signal changes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/signal.hpp"

namespace umlsoc::sim {

/// Collects (time, signal, value) records; dump() renders a waveform-ish
/// text log ("<time> <name>=<value>"), one line per change.
///
/// Lifetime contract: the kernel's process table has no unregistration, so
/// the subscription installed by trace() can never be physically removed.
/// Instead the callback holds a weak reference to the tracer's record log:
/// destroying the Tracer expires it and later notifications become no-ops
/// rather than writes through a dangling pointer. The *signal* must still
/// outlive the kernel's last delta that notifies it (the kernel-wide rule
/// for every subscriber).
class Tracer {
 public:
  explicit Tracer(Kernel& kernel) : log_(std::make_shared<Log>(Log{&kernel, {}})) {}

  struct Record {
    std::uint64_t time_ps;
    std::string signal;
    std::string value;
  };

  /// Starts tracing `signal`; its current value is recorded immediately.
  template <typename T>
  void trace(Signal<T>& signal) {
    record(*log_, signal.name(), value_text(signal.read()));
    signal.value_changed().subscribe([weak = std::weak_ptr<Log>(log_), &signal] {
      if (std::shared_ptr<Log> log = weak.lock()) {
        record(*log, signal.name(), value_text(signal.read()));
      }
    });
  }

  [[nodiscard]] const std::vector<Record>& records() const { return log_->records; }
  [[nodiscard]] std::string dump() const;
  [[nodiscard]] std::size_t change_count() const { return log_->records.size(); }

 private:
  struct Log {
    Kernel* kernel;
    std::vector<Record> records;
  };

  static std::string value_text(bool v) { return v ? "1" : "0"; }
  static std::string value_text(char v) { return std::string(1, v); }
  template <typename T>
  static std::string value_text(const T& v) {
    return std::to_string(v);
  }

  static void record(Log& log, const std::string& signal, std::string value);

  std::shared_ptr<Log> log_;
};

}  // namespace umlsoc::sim
