// VCD-like text tracing of signal changes.
#pragma once

#include <string>
#include <vector>

#include "sim/signal.hpp"

namespace umlsoc::sim {

/// Collects (time, signal, value) records; dump() renders a waveform-ish
/// text log ("<time> <name>=<value>"), one line per change.
class Tracer {
 public:
  explicit Tracer(Kernel& kernel) : kernel_(&kernel) {}

  /// Starts tracing `signal`; its current value is recorded immediately.
  template <typename T>
  void trace(Signal<T>& signal) {
    record(signal.name(), value_text(signal.read()));
    Kernel* kernel = kernel_;
    (void)kernel;
    signal.value_changed().subscribe(
        [this, &signal] { record(signal.name(), value_text(signal.read())); });
  }

  struct Record {
    std::uint64_t time_ps;
    std::string signal;
    std::string value;
  };

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::string dump() const;
  [[nodiscard]] std::size_t change_count() const { return records_.size(); }

 private:
  static std::string value_text(bool v) { return v ? "1" : "0"; }
  static std::string value_text(char v) { return std::string(1, v); }
  template <typename T>
  static std::string value_text(const T& v) {
    return std::to_string(v);
  }

  void record(const std::string& signal, std::string value);

  Kernel* kernel_;
  std::vector<Record> records_;
};

}  // namespace umlsoc::sim
