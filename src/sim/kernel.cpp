#include "sim/kernel.hpp"

#include <stdexcept>

namespace umlsoc::sim {

std::string SimTime::str() const {
  if (ps_ % 1000000 == 0) return std::to_string(ps_ / 1000000) + "us";
  if (ps_ % 1000 == 0) return std::to_string(ps_ / 1000) + "ns";
  return std::to_string(ps_) + "ps";
}

SimEvent::SimEvent(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

void SimEvent::notify() {
  for (const auto& subscriber : subscribers_) kernel_.schedule_delta(subscriber);
}

void SimEvent::notify(SimTime delay) {
  for (const auto& subscriber : subscribers_) kernel_.schedule(delay, subscriber);
}

void SimEvent::subscribe(std::function<void()> callback) {
  subscribers_.push_back(std::move(callback));
}

void Kernel::schedule(SimTime delay, std::function<void()> callback) {
  timed_queue_.push(TimedEntry{now_ + delay, ++sequence_, std::move(callback)});
}

void Kernel::schedule_delta(std::function<void()> callback) {
  next_runnable_.push_back(std::move(callback));
}

void Kernel::request_update(Updatable& target) { update_requests_.push_back(&target); }

void Kernel::run_delta_loop() {
  std::uint64_t deltas_here = 0;
  while (!runnable_.empty()) {
    if (++deltas_here > kMaxDeltasPerInstant) {
      throw std::runtime_error("sim: delta limit exceeded at " + now_.str() +
                               " (combinational loop?)");
    }
    ++delta_count_;
    // EVALUATE.
    std::vector<std::function<void()>> current;
    current.swap(runnable_);
    for (const auto& callback : current) {
      callback();
      ++events_processed_;
    }
    // UPDATE.
    std::vector<Updatable*> updates;
    updates.swap(update_requests_);
    for (Updatable* target : updates) target->update();
    // Notifications raised during evaluate/update become the next delta.
    runnable_.swap(next_runnable_);
    next_runnable_.clear();
  }
}

std::uint64_t Kernel::run(SimTime end) {
  const std::uint64_t processed_before = events_processed_;

  // Immediate notifications issued before run() seed the first delta.
  runnable_.swap(next_runnable_);
  next_runnable_.clear();
  run_delta_loop();

  while (!timed_queue_.empty()) {
    SimTime next_time = timed_queue_.top().at;
    if (next_time > end) break;
    now_ = next_time;
    while (!timed_queue_.empty() && timed_queue_.top().at == now_) {
      // priority_queue::top() is const; the callback is moved out via pop.
      runnable_.push_back(timed_queue_.top().callback);
      timed_queue_.pop();
    }
    run_delta_loop();
  }
  return events_processed_ - processed_before;
}

}  // namespace umlsoc::sim
