#include "sim/kernel.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/replay.hpp"

namespace umlsoc::sim {

std::string SimTime::str() const {
  if (ps_ % 1000000 == 0) return std::to_string(ps_ / 1000000) + "us";
  if (ps_ % 1000 == 0) return std::to_string(ps_ / 1000) + "ns";
  return std::to_string(ps_) + "ps";
}

SimEvent::SimEvent(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {}

void SimEvent::subscribe(std::function<void()> callback) {
  subscribers_.push_back(kernel_.register_process(std::move(callback)));
}

std::string QuiescenceReport::str() const {
  if (!deadlocked()) {
    return drained ? "quiescent: clean" : "stopped at end time";
  }
  std::string out = "deadlock: " + std::to_string(outstanding_total) + " outstanding (";
  for (std::size_t i = 0; i < outstanding.size(); ++i) {
    if (i != 0) out += ", ";
    out += outstanding[i].label + " x" + std::to_string(outstanding[i].count);
  }
  out += ")";
  return out;
}

Kernel::Kernel() : wheel_heads_(kWheelBuckets, -1) {}

ExpectationId Kernel::register_expectation(std::string label) {
  expectations_.push_back(Expectation{std::move(label), 0});
  return static_cast<ExpectationId>(expectations_.size() - 1);
}

ProcessId Kernel::register_process(std::function<void()> body) {
  ++stats_.processes_registered;
  processes_.push_back(std::move(body));
  labels_.emplace_back();
  return static_cast<ProcessId>(processes_.size() - 1);
}

ProcessId Kernel::register_process(std::function<void()> body, std::string label) {
  const ProcessId id = register_process(std::move(body));
  labels_[id] = std::move(label);
  return id;
}

void Kernel::cascade_heap() {
  solo_slot_ = -1;
  while (!heap_.empty() &&
         (heap_.front().at_ps >> kWheelShift) - wheel_base_quantum_ < kWheelBuckets) {
    std::pop_heap(heap_.begin(), heap_.end(), heap_later);
    push_wheel(heap_.back());
    heap_.pop_back();
    ++stats_.cascades;
  }
}

int Kernel::first_occupied_slot() const {
  if (wheel_count_ == 0) return -1;
  const std::uint32_t cursor = static_cast<std::uint32_t>(wheel_base_quantum_) & kWheelMask;
  const std::uint32_t cursor_word = cursor >> 6;
  const std::uint32_t cursor_bit = cursor & 63;
  // Bits of the cursor word at/after the cursor.
  std::uint64_t word = occupancy_[cursor_word] & (~0ULL << cursor_bit);
  if (word != 0) return static_cast<int>((cursor_word << 6) + std::countr_zero(word));
  // Words strictly after the cursor word.
  if (cursor_word + 1 < kWheelWords) {
    const std::uint64_t high =
        occupancy_summary_ & ~((1ULL << (cursor_word + 1)) - 1);
    if (high != 0) {
      const auto w = static_cast<std::uint32_t>(std::countr_zero(high));
      return static_cast<int>((w << 6) + std::countr_zero(occupancy_[w]));
    }
  }
  // Wrap: words before the cursor word.
  const std::uint64_t low =
      occupancy_summary_ & ((cursor_word == 0) ? 0 : ((1ULL << cursor_word) - 1));
  if (low != 0) {
    const auto w = static_cast<std::uint32_t>(std::countr_zero(low));
    return static_cast<int>((w << 6) + std::countr_zero(occupancy_[w]));
  }
  // Wrapped tail of the cursor word (bits before the cursor).
  word = occupancy_[cursor_word] & ((cursor_bit == 0) ? 0 : ((1ULL << cursor_bit) - 1));
  if (word != 0) return static_cast<int>((cursor_word << 6) + std::countr_zero(word));
  return -1;
}

std::uint64_t Kernel::peek_next_timed() {
  // Heap entries are always at/after the wheel horizon (cascade_heap keeps
  // the invariant), so the wheel — when occupied — holds the minimum.
  peeked_slot_ = first_occupied_slot();
  if (peeked_slot_ < 0) return heap_.front().at_ps;
  std::uint64_t best = SimTime::max().picoseconds();
  for (std::int32_t index = wheel_heads_[static_cast<std::size_t>(peeked_slot_)];
       index != -1; index = pool_[static_cast<std::size_t>(index)].next) {
    const std::uint64_t at = pool_[static_cast<std::size_t>(index)].at_ps;
    if (at < best) best = at;
  }
  return best;
}

void Kernel::collect_runnable_at(std::uint64_t at_ps) {
  solo_slot_ = -1;  // Whatever remains after this, its slot is unknown.
  const std::uint32_t slot =
      peeked_slot_ >= 0
          ? static_cast<std::uint32_t>(peeked_slot_)
          : static_cast<std::uint32_t>(at_ps >> kWheelShift) & kWheelMask;
  std::int32_t index = wheel_heads_[slot];
  if (index != -1 && pool_[static_cast<std::size_t>(index)].next == -1) {
    // Singleton bucket (the common sparse case): the lone entry is the
    // bucket minimum, i.e. exactly at_ps — no partition or sort needed.
    runnable_.push_back(pool_[static_cast<std::size_t>(index)].process);
    free_pool_.push_back(index);
    wheel_heads_[slot] = -1;
    --wheel_count_;
    --timed_size_;
    occupancy_[slot >> 6] &= ~(1ULL << (slot & 63));
    if (occupancy_[slot >> 6] == 0) occupancy_summary_ &= ~(1ULL << (slot >> 6));
    return;
  }
  collect_scratch_.clear();
  // Partition the bucket chain: entries at exactly at_ps leave, later ones
  // (same bucket quantum) stay; intra-bucket order is irrelevant, FIFO
  // comes from the sequence sort below.
  std::int32_t kept_head = -1;
  while (index != -1) {
    TimedEntry& entry = pool_[static_cast<std::size_t>(index)];
    const std::int32_t next = entry.next;
    if (entry.at_ps == at_ps) {
      collect_scratch_.push_back(entry);
      free_pool_.push_back(index);
    } else {
      entry.next = kept_head;
      kept_head = index;
    }
    index = next;
  }
  wheel_heads_[slot] = kept_head;
  wheel_count_ -= collect_scratch_.size();
  timed_size_ -= collect_scratch_.size();
  if (kept_head == -1) {
    occupancy_[slot >> 6] &= ~(1ULL << (slot & 63));
    if (occupancy_[slot >> 6] == 0) occupancy_summary_ &= ~(1ULL << (slot >> 6));
  }
  // FIFO among same-time events = ascending sequence. Same-time batches are
  // usually small; insertion sort beats std::sort's fixed costs there.
  if (collect_scratch_.size() > 1) {
    if (collect_scratch_.size() <= 32) {
      for (std::size_t i = 1; i < collect_scratch_.size(); ++i) {
        TimedEntry key = collect_scratch_[i];
        std::size_t j = i;
        while (j > 0 && collect_scratch_[j - 1].sequence > key.sequence) {
          collect_scratch_[j] = collect_scratch_[j - 1];
          --j;
        }
        collect_scratch_[j] = key;
      }
    } else {
      std::sort(collect_scratch_.begin(), collect_scratch_.end(),
                [](const TimedEntry& a, const TimedEntry& b) {
                  return a.sequence < b.sequence;
                });
    }
  }
  for (const TimedEntry& entry : collect_scratch_) runnable_.push_back(entry.process);
}

void Kernel::run_process(ProcessId process) {
  if (recorder_ != nullptr) record_event(process);
  processes_[process]();
}

void Kernel::record_event(ProcessId process) {
  recorder_->on_event(now_.picoseconds(), process, *this);
}

void Kernel::begin_delta() {
  runnable_.swap(next_runnable_);
  next_runnable_.clear();
  for (SimEvent* event : pending_delta_events_) event->delta_pending_ = false;
  pending_delta_events_.clear();
}

void Kernel::clear_delta_state() {
  runnable_.clear();
  next_runnable_.clear();
  current_.clear();
  batch_remaining_ = 0;
  update_requests_.clear();
  for (SimEvent* event : pending_delta_events_) event->delta_pending_ = false;
  pending_delta_events_.clear();
}

void Kernel::run_delta_loop() {
  std::uint64_t deltas_here = 0;
  while (!runnable_.empty()) {
    if (++deltas_here > kMaxDeltasPerInstant) {
      stats_.max_deltas_per_instant = deltas_here;
      clear_delta_state();
      throw std::runtime_error("sim: delta limit exceeded at " + now_.str() +
                               " (combinational loop?)");
    }
    ++delta_count_;
    // EVALUATE.
    if (runnable_.size() == 1) {
      const ProcessId process = runnable_.front();
      runnable_.clear();
      // Counted before the body, matching the event recorder: a checkpoint
      // captured from inside the running process then includes its own
      // activation in both the counter and the recorded stream.
      ++events_processed_;
      run_process(process);
    } else {
      current_.clear();
      current_.swap(runnable_);
      for (std::size_t i = 0; i < current_.size(); ++i) {
        // Published so capture_checkpoint can refuse from inside a batch
        // member that has co-members still to run.
        batch_remaining_ = current_.size() - i - 1;
        ++events_processed_;
        run_process(current_[i]);
      }
      batch_remaining_ = 0;
    }
    // UPDATE.
    if (!update_requests_.empty()) {
      if (update_requests_.size() == 1) {
        Updatable* target = update_requests_.front();
        update_requests_.clear();
        target->update();
      } else {
        update_scratch_.clear();
        update_scratch_.swap(update_requests_);
        for (Updatable* target : update_scratch_) target->update();
      }
    }
    // Notifications raised during evaluate/update become the next delta.
    // If nothing was raised there is no next delta: notify() always pairs a
    // pending event with at least one next_runnable_ push, so an empty
    // next_runnable_ implies an empty pending list too.
    if (next_runnable_.empty()) break;
    begin_delta();
  }
  if (deltas_here > stats_.max_deltas_per_instant) {
    stats_.max_deltas_per_instant = deltas_here;
  }
}

// --- Checkpoint / restore ----------------------------------------------------

bool Kernel::capture_checkpoint(Checkpoint& out, support::DiagnosticSink& sink) const {
  const std::string subject = "sim.kernel";
  if (!runnable_.empty() || !next_runnable_.empty() || !update_requests_.empty() ||
      batch_remaining_ != 0) {
    sink.error(subject, "cannot checkpoint mid-delta: runnable processes, unfinished "
                        "evaluate-batch members or pending signal updates exist "
                        "(checkpoint between run() calls, or from a process that is "
                        "alone in its batch)");
    return false;
  }
  out = Checkpoint{};
  out.now_ps = now_.picoseconds();
  out.sequence = sequence_;
  out.delta_count = delta_count_;
  out.events_processed = events_processed_;
  out.process_count = processes_.size();

  out.timed.reserve(timed_size_);
  auto add_entry = [&](const TimedEntry& entry) {
    out.timed.push_back(Checkpoint::PendingTimed{entry.at_ps, entry.sequence, entry.process});
  };
  for (std::uint32_t slot = 0; slot < kWheelBuckets; ++slot) {
    for (std::int32_t index = wheel_heads_[slot]; index != -1;
         index = pool_[static_cast<std::size_t>(index)].next) {
      add_entry(pool_[static_cast<std::size_t>(index)]);
    }
  }
  for (const TimedEntry& entry : heap_) add_entry(entry);
  std::sort(out.timed.begin(), out.timed.end(),
            [](const Checkpoint::PendingTimed& a, const Checkpoint::PendingTimed& b) {
              if (a.at_ps != b.at_ps) return a.at_ps < b.at_ps;
              return a.sequence < b.sequence;
            });

  out.expectations.reserve(expectations_.size());
  for (const Expectation& expectation : expectations_) {
    out.expectations.push_back(
        Checkpoint::ExpectationEntry{expectation.label, expectation.outstanding});
  }
  return true;
}

bool Kernel::restore_checkpoint(const Checkpoint& checkpoint, support::DiagnosticSink& sink) {
  const std::string subject = "sim.kernel";
  // Validate fully before mutating.
  for (const Checkpoint::PendingTimed& entry : checkpoint.timed) {
    if (entry.process >= processes_.size() || processes_[entry.process] == nullptr) {
      sink.error(subject, "snapshot schedules unknown process id " +
                              std::to_string(entry.process) + " (this kernel registered " +
                              std::to_string(processes_.size()) +
                              " processes; was the setup reconstructed identically?)");
      return false;
    }
    if (entry.at_ps < checkpoint.now_ps) {
      sink.error(subject, "snapshot timed event at " + SimTime(entry.at_ps).str() +
                              " lies before the snapshot time " +
                              SimTime(checkpoint.now_ps).str());
      return false;
    }
    if (entry.sequence > checkpoint.sequence) {
      sink.error(subject, "snapshot timed event sequence " + std::to_string(entry.sequence) +
                              " exceeds the snapshot sequence counter " +
                              std::to_string(checkpoint.sequence));
      return false;
    }
  }
  if (checkpoint.expectations.size() > expectations_.size()) {
    sink.error(subject, "snapshot lists " + std::to_string(checkpoint.expectations.size()) +
                            " expectation classes but this kernel registered only " +
                            std::to_string(expectations_.size()));
    return false;
  }
  for (std::size_t i = 0; i < checkpoint.expectations.size(); ++i) {
    if (checkpoint.expectations[i].label != expectations_[i].label) {
      sink.error(subject, "expectation " + std::to_string(i) + " label mismatch: snapshot '" +
                              checkpoint.expectations[i].label + "' vs registered '" +
                              expectations_[i].label + "'");
      return false;
    }
  }
  if (checkpoint.process_count != processes_.size()) {
    sink.warning(subject, "snapshot was captured with " +
                              std::to_string(checkpoint.process_count) +
                              " registered processes, this kernel has " +
                              std::to_string(processes_.size()) +
                              "; restore proceeds, but determinism requires identical "
                              "construction order");
  }

  // Wipe pending work: the snapshot supersedes construction-time scheduling.
  clear_delta_state();
  std::fill(wheel_heads_.begin(), wheel_heads_.end(), -1);
  pool_.clear();
  free_pool_.clear();
  std::fill(std::begin(occupancy_), std::end(occupancy_), 0);
  occupancy_summary_ = 0;
  heap_.clear();
  wheel_count_ = 0;
  timed_size_ = 0;
  peeked_slot_ = -1;
  solo_slot_ = -1;

  now_ = SimTime(checkpoint.now_ps);
  wheel_base_quantum_ = checkpoint.now_ps >> kWheelShift;
  delta_count_ = checkpoint.delta_count;
  events_processed_ = checkpoint.events_processed;
  // Restores can rewind the mixed counters to earlier values; the op bump
  // keeps revision() from reproducing a pre-restore fingerprint.
  ++expectation_ops_;
  for (const Checkpoint::PendingTimed& pending : checkpoint.timed) {
    // Re-insert with the captured sequence so same-time FIFO order (and the
    // event-recorder stream) is preserved exactly.
    const TimedEntry entry{pending.at_ps, pending.sequence, pending.process, -1};
    const std::uint64_t quantum = pending.at_ps >> kWheelShift;
    if (quantum - wheel_base_quantum_ < kWheelBuckets) {
      push_wheel(entry);
      solo_slot_ = timed_size_ == 0
                       ? static_cast<int>(static_cast<std::uint32_t>(quantum) & kWheelMask)
                       : -1;
    } else {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), heap_later);
      solo_slot_ = -1;
    }
    ++timed_size_;
  }
  sequence_ = checkpoint.sequence;

  outstanding_total_ = 0;
  for (Expectation& expectation : expectations_) expectation.outstanding = 0;
  for (std::size_t i = 0; i < checkpoint.expectations.size(); ++i) {
    expectations_[i].outstanding = checkpoint.expectations[i].outstanding;
    outstanding_total_ += checkpoint.expectations[i].outstanding;
  }
  return true;
}

std::uint64_t Kernel::run(SimTime end) {
  const std::uint64_t processed_before = events_processed_;

  // Immediate notifications issued before run() seed the first delta.
  begin_delta();
  run_delta_loop();

  while (timed_size_ != 0) {
    if (timed_size_ > stats_.timed_peak) stats_.timed_peak = timed_size_;
    if (timed_size_ == 1 && solo_slot_ >= 0) {
      // Sparse fast path: the lone pending event's wheel slot is known from
      // its push, so skip the bitmap scan, bucket min-walk, and collect
      // partitioning entirely. The heap is necessarily empty here.
      const auto slot = static_cast<std::uint32_t>(solo_slot_);
      const std::int32_t head = wheel_heads_[slot];
      const std::uint64_t next_ps = pool_[static_cast<std::size_t>(head)].at_ps;
      if (next_ps > end.picoseconds()) break;
      const ProcessId process = pool_[static_cast<std::size_t>(head)].process;
      now_ = SimTime(next_ps);
      wheel_base_quantum_ = next_ps >> kWheelShift;
      wheel_heads_[slot] = -1;
      free_pool_.push_back(head);
      occupancy_[slot >> 6] &= ~(1ULL << (slot & 63));
      if (occupancy_[slot >> 6] == 0) occupancy_summary_ &= ~(1ULL << (slot >> 6));
      --wheel_count_;
      --timed_size_;
      solo_slot_ = -1;
      // Fused first delta: run the process directly; only fall into the full
      // delta machinery if it wrote a signal or raised a notification.
      ++delta_count_;
      ++events_processed_;
      run_process(process);
      if (!update_requests_.empty() || !next_runnable_.empty()) {
        if (update_requests_.size() == 1) {
          Updatable* target = update_requests_.front();
          update_requests_.clear();
          target->update();
        } else if (!update_requests_.empty()) {
          update_scratch_.clear();
          update_scratch_.swap(update_requests_);
          for (Updatable* target : update_scratch_) target->update();
        }
        begin_delta();
        run_delta_loop();
      }
      continue;
    }
    const std::uint64_t next_ps = peek_next_timed();
    if (next_ps > end.picoseconds()) break;
    now_ = SimTime(next_ps);
    const std::uint64_t quantum = next_ps >> kWheelShift;
    if (quantum != wheel_base_quantum_) {
      wheel_base_quantum_ = quantum;
      // Cascaded entries are at/after the old horizon, i.e. strictly after
      // next_ps, so the peeked slot stays valid for collection.
      if (!heap_.empty()) cascade_heap();
    }
    collect_runnable_at(next_ps);
    run_delta_loop();
  }
  // Fused solo deltas bypass the per-instant counter; if any event ran at
  // all, at least one instant had one delta.
  if (events_processed_ != processed_before && stats_.max_deltas_per_instant == 0) {
    stats_.max_deltas_per_instant = 1;
  }
  // Quiescence diagnosis: queues drained with expectations outstanding is a
  // deadlock signature (a master waits for a response that cannot arrive).
  // The clean path only clears and sets PODs — no allocation.
  report_.outstanding.clear();
  report_.drained = idle();
  report_.outstanding_total = outstanding_total_;
  if (report_.deadlocked()) {
    for (const Expectation& expectation : expectations_) {
      if (expectation.outstanding != 0) {
        report_.outstanding.push_back(
            QuiescenceReport::Outstanding{expectation.label, expectation.outstanding});
      }
    }
  }
  return events_processed_ - processed_before;
}

}  // namespace umlsoc::sim
