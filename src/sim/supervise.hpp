// Supervision, circuit breaking and degraded-mode recovery.
//
// PR 2 gave models fault *injection* and detection (bus status, watchdogs,
// error events); this layer closes the loop with *recovery*, borrowing the
// two battle-tested shapes of fault-tolerant software:
//
//  * OTP-style supervision trees: a Supervisor owns restartable units
//    (statechart instances, bus channels, arbitrary processes) and restarts
//    a failed child after exponential backoff — one-for-one or all-for-one.
//    A restart-intensity budget (max R restarts within window W) guards
//    against restart storms: exceeding it escalates the failure to the
//    parent supervisor, or — at the root — gives up terminally with a
//    report. Restarts are *warm*: the restart callback reinitializes the
//    child from a restart snapshot (see replay::restart_from_snapshot),
//    so recovery is deterministic and replay-compatible.
//
//  * Circuit breakers: a CircuitBreaker wraps a BusMasterPort target with
//    the classic closed/open/half-open automaton. Failures (error or
//    timeout completions) feed a sliding outcome window; when the failure
//    rate crosses the threshold the breaker opens and fast-fails callers
//    without touching the bus. After the open duration a single half-open
//    probe is let through: success closes the breaker, failure re-opens it
//    with the duration doubled (clamped). State changes surface as
//    breaker_open / breaker_closed events for the statechart error channel.
//
// A HealthRegistry aggregates per-unit health (healthy/degraded/failed) and
// notifies listeners on every transition — the hook a model uses to route
// around an open device (the uart_soc demo falls back from DMA to PIO while
// the DMA breaker is open).
//
// Everything here is checkpointable: supervisors and breakers schedule only
// registered kernel processes (their pending work is plain data restored by
// the kernel checkpoint), and each exposes capture/restore of its local
// state for the snapshot machinery in replay/snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::sim {

/// Error-channel hook: supervision components report named error events
/// ("breaker_open", "watchdog_trip", "supervisor_give_up", ...) through this
/// callback; the model layer forwards them to a statechart instance's
/// dispatch_error / dispatch. Kept as a plain function so sim/ stays
/// independent of the statechart layer.
using ErrorEmitter = std::function<void(const std::string& event, std::int64_t data)>;

// --- HealthRegistry ----------------------------------------------------------

enum class UnitHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded,  ///< Alive but impaired (breaker open, restart pending).
  kFailed,    ///< Terminally down (supervision gave up).
};

[[nodiscard]] std::string_view to_string(UnitHealth health);

/// Aggregates the health of named units and notifies listeners on every
/// transition. Degraded-mode hooks subscribe here: a model reroutes traffic
/// when a unit degrades and routes back when it recovers.
class HealthRegistry {
 public:
  using UnitId = std::uint32_t;
  static constexpr UnitId kInvalidUnit = std::numeric_limits<UnitId>::max();

  /// Registers a unit (initially healthy) and returns its stable id.
  UnitId register_unit(std::string name);

  [[nodiscard]] UnitId find(std::string_view name) const;
  [[nodiscard]] std::size_t unit_count() const { return units_.size(); }
  [[nodiscard]] const std::string& unit_name(UnitId unit) const {
    return units_[unit].name;
  }

  void set_health(UnitId unit, UnitHealth health, std::string_view reason = {});
  [[nodiscard]] UnitHealth health(UnitId unit) const { return units_[unit].health; }

  /// Worst health across all units (healthy when no unit is registered).
  [[nodiscard]] UnitHealth aggregate() const;
  [[nodiscard]] bool all_healthy() const { return aggregate() == UnitHealth::kHealthy; }

  /// Monotonic count of health *transitions* (set_health calls that changed
  /// the value).
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  using Listener = std::function<void(UnitId unit, UnitHealth from, UnitHealth to,
                                      std::string_view reason)>;
  void add_listener(Listener listener) { listeners_.push_back(std::move(listener)); }

  /// "dma=degraded uart-driver=healthy".
  [[nodiscard]] std::string str() const;

  /// Checkpointable state: per-unit health plus the transition counter.
  /// Restore validates the unit count (the restoring setup registers the
  /// same units in the same order). Listeners do not fire during restore —
  /// restore reproduces state, not history.
  struct Checkpoint {
    std::vector<std::uint8_t> health;  ///< One per unit, registration order.
    std::uint64_t transitions = 0;
  };
  [[nodiscard]] Checkpoint capture_checkpoint() const;
  bool restore_checkpoint(const Checkpoint& checkpoint, support::DiagnosticSink& sink);

 private:
  struct Unit {
    std::string name;
    UnitHealth health = UnitHealth::kHealthy;
  };
  std::vector<Unit> units_;
  std::vector<Listener> listeners_;
  std::uint64_t transitions_ = 0;
};

// --- CircuitBreaker ----------------------------------------------------------

/// Closed/open/half-open breaker in front of a BusMasterPort. Closed
/// traffic flows through; each completion's status is recorded in a sliding
/// window of the last `Config::window` outcomes. When the window holds at
/// least `min_samples` outcomes and the failure rate reaches
/// `failure_threshold`, the breaker opens: requests fast-fail with
/// BusStatus::kError (synchronously — no bus traffic, no simulated time)
/// until `open_duration` elapses. The breaker then goes half-open and admits
/// exactly one probe request; a successful probe closes the breaker (window
/// reset, open duration reset), a failed probe re-opens it with the duration
/// multiplied by `reopen_multiplier` (clamped to `max_open_duration`).
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kOpen, kHalfOpen };

  struct Config {
    std::uint32_t window = 16;  ///< Sliding outcome window size (<= 64).
    std::uint32_t min_samples = 4;
    double failure_threshold = 0.5;
    SimTime open_duration = SimTime::us(1);
    unsigned reopen_multiplier = 2;  ///< Applied after a failed half-open probe.
    SimTime max_open_duration = SimTime::us(64);
  };

  struct Stats {
    std::uint64_t issued = 0;        ///< Requests forwarded to the port.
    std::uint64_t ok = 0;            ///< Forwarded requests that completed kOk.
    std::uint64_t failures = 0;      ///< Forwarded requests that completed kError/kTimeout.
    std::uint64_t fast_failed = 0;   ///< Requests rejected while open/half-open.
    std::uint64_t opens = 0;         ///< Closed/half-open -> open transitions.
    std::uint64_t closes = 0;        ///< Half-open -> closed transitions.
    std::uint64_t probes = 0;        ///< Half-open probes admitted.
    std::uint64_t probe_failures = 0;
  };

  CircuitBreaker(Kernel& kernel, BusMasterPort& port, std::string name, Config config);
  /// Default Config. (An overload rather than a default argument: a nested
  /// aggregate's member initializers are not parsable as a default argument
  /// inside the enclosing class.)
  CircuitBreaker(Kernel& kernel, BusMasterPort& port, std::string name);

  /// Issue through the breaker. While open (or half-open with the probe
  /// already in flight) the completion is invoked synchronously with
  /// kError and the request never reaches the bus.
  void read(std::uint64_t address, MemoryMappedBus::ReadCompletion done);
  void write(std::uint64_t address, std::uint64_t value,
             MemoryMappedBus::WriteCompletion done);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// The open duration the *next* open would use (doubles on failed probes).
  [[nodiscard]] SimTime current_open_duration() const {
    return SimTime(open_duration_ps_);
  }
  [[nodiscard]] std::uint32_t window_samples() const { return samples_; }
  [[nodiscard]] std::uint32_t window_failures() const { return failures_in_window_; }

  /// Emits "breaker_open" on every open and "breaker_closed" on every close
  /// (data = breaker stats opens/closes count).
  void set_error_emitter(ErrorEmitter emitter) { emitter_ = std::move(emitter); }

  /// Health binding: open => kDegraded, closed => kHealthy.
  void bind_health(HealthRegistry* registry, HealthRegistry::UnitId unit) {
    registry_ = registry;
    health_unit_ = unit;
  }

  /// Administrative reset to closed (a supervised "power-cycle the device"
  /// restart action): clears the window and restores the configured open
  /// duration. Emits breaker_closed if the breaker was not closed.
  void force_closed();

  /// Checkpointable breaker state. The pending open-duration timer event
  /// itself lives in the kernel checkpoint (the timer is a registered
  /// process); this covers the automaton state, the sliding window, the
  /// doubled duration and the counters. A half-open probe in flight blocks
  /// the snapshot upstream (the port's in-flight expectation), so
  /// `probe_in_flight` is captured for completeness but is false in any
  /// restorable state.
  struct Checkpoint {
    std::uint8_t state = 0;
    std::uint64_t outcomes = 0;  ///< Window ring bits, 1 = failure.
    std::uint32_t cursor = 0;
    std::uint32_t samples = 0;
    std::uint32_t failures_in_window = 0;
    std::uint64_t open_duration_ps = 0;
    std::uint64_t reopen_at_ps = 0;
    bool timer_pending = false;
    bool probe_in_flight = false;
    Stats stats;
  };
  [[nodiscard]] Checkpoint capture_checkpoint() const;
  bool restore_checkpoint(const Checkpoint& checkpoint, support::DiagnosticSink& sink);

 private:
  void record_outcome(bool failure);
  void reset_window();
  void open(std::string_view cause);
  void close();
  void on_open_elapsed();
  void emit(const char* event, std::int64_t data);
  void set_health(UnitHealth health, std::string_view reason);
  /// True when the request may flow to the port; marks the probe slot taken
  /// in half-open.
  bool admit();
  void on_completion(bool admitted_as_probe, BusStatus status);

  Kernel& kernel_;
  BusMasterPort& port_;
  std::string name_;
  Config config_;
  ErrorEmitter emitter_;
  HealthRegistry* registry_ = nullptr;
  HealthRegistry::UnitId health_unit_ = HealthRegistry::kInvalidUnit;
  ProcessId timer_process_ = kInvalidProcess;

  State state_ = State::kClosed;
  std::uint64_t outcomes_ = 0;  ///< Ring of window bits, 1 = failure.
  std::uint32_t cursor_ = 0;
  std::uint32_t samples_ = 0;
  std::uint32_t failures_in_window_ = 0;
  std::uint64_t open_duration_ps_ = 0;
  std::uint64_t reopen_at_ps_ = 0;
  bool timer_pending_ = false;
  bool probe_in_flight_ = false;
  Stats stats_;
};

[[nodiscard]] std::string_view to_string(CircuitBreaker::State state);

// --- Supervisor --------------------------------------------------------------

enum class RestartStrategy : std::uint8_t {
  kOneForOne = 0,  ///< A failure restarts only the failed child.
  kAllForOne,      ///< A failure restarts every child of the supervisor.
};

[[nodiscard]] std::string_view to_string(RestartStrategy strategy);

struct RestartPolicy {
  /// Delay before the first restart attempt of a failure burst.
  SimTime backoff = SimTime::ns(100);
  /// Each consecutive failure (within `window` of the previous one)
  /// multiplies the delay; 1 keeps it constant.
  unsigned backoff_multiplier = 2;
  SimTime max_backoff = SimTime::us(100);
  /// Restart-intensity budget: more than `max_restarts` restarts scheduled
  /// within `window` escalates to the parent supervisor (or gives up at the
  /// root).
  std::uint32_t max_restarts = 5;
  SimTime window = SimTime::us(50);
};

/// A supervisor over restartable units. Children are registered with a
/// restart callback (typically replay::restart_from_snapshot — a warm
/// restart from a captured snapshot); report_failure schedules the restart
/// after the current backoff on a single registered kernel process, so the
/// whole mechanism is checkpoint- and replay-compatible. Restart scheduling
/// holds a kernel expectation, so a run that drains with a restart pending
/// shows up in the QuiescenceReport.
class Supervisor {
 public:
  using ChildId = std::uint32_t;
  static constexpr ChildId kInvalidChild = std::numeric_limits<ChildId>::max();

  Supervisor(Kernel& kernel, std::string name,
             RestartStrategy strategy = RestartStrategy::kOneForOne,
             RestartPolicy policy = {});

  /// Registers a restartable unit. `restart` reinitializes the unit and
  /// returns success; a failed restart counts as a fresh failure (backoff
  /// grows, intensity budget shrinks).
  ChildId add_child(std::string name, std::function<bool()> restart);

  /// Registers `child` (another supervisor) as a unit of this one and wires
  /// escalation: when `child` exceeds its restart budget it suspends itself
  /// and reports the failure here; its restart resets and restarts its whole
  /// subtree.
  ChildId attach_child_supervisor(Supervisor& child);

  /// Wires a watchdog trip into the recovery path: a trip emits a
  /// "watchdog_trip" error event and reports a failure of `child`; after
  /// the child's successful restart the watchdog is re-armed.
  void attach_watchdog(ChildId child, Watchdog& watchdog);

  /// Health binding for one child: failure reported => kDegraded, restart
  /// succeeded => kHealthy, gave up => kFailed.
  void bind_child_health(ChildId child, HealthRegistry& registry,
                         HealthRegistry::UnitId unit);

  void set_error_emitter(ErrorEmitter emitter) { emitter_ = std::move(emitter); }
  void set_on_give_up(std::function<void(const std::string& reason)> handler) {
    on_give_up_ = std::move(handler);
  }

  /// Rollback escalation hook, consulted at the *root* when the restart
  /// budget is exhausted — one rung below terminal give-up. A handler that
  /// returns true accepts the failure for rollback recovery: the supervisor
  /// suspends (ignoring further reports) instead of giving up, and the
  /// orchestrator (replay::RecoveryCoordinator) later restores pre-failure
  /// state from the checkpoint ladder and resumes. A false return falls
  /// through to the normal terminal give-up. Emits "supervisor_rollback"
  /// when accepted.
  void set_rollback_handler(std::function<bool(const std::string& reason)> handler) {
    rollback_handler_ = std::move(handler);
  }

  /// Clears the suspension entered when the rollback handler accepted a
  /// failure. Called by the rollback orchestrator when the supervisor is
  /// not itself a snapshot target (a targeted supervisor's suspension is
  /// cleared by the restored checkpoint instead).
  void resume_after_rollback() {
    suspended_ = false;
    window_.clear();
  }

  /// Terminal give-up driven from outside the escalation path: the rollback
  /// machinery accepted a failure but could not recover (ladder exhausted,
  /// replay diverged, retry budget spent).
  void force_give_up(std::string_view reason);

  /// Reports a child failure. Ignored while the supervisor is suspended
  /// (escalated, waiting for its parent) or after it gave up.
  void report_failure(ChildId child, std::string_view reason);

  /// Resets the child's consecutive-failure backoff (call when the unit has
  /// proven healthy again, e.g. after a clean probe).
  void report_recovered(ChildId child);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] RestartStrategy strategy() const { return strategy_; }
  [[nodiscard]] const RestartPolicy& policy() const { return policy_; }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] const std::string& child_name(ChildId child) const {
    return children_[child].name;
  }

  struct ChildStats {
    std::uint64_t failures = 0;         ///< report_failure calls for this child.
    std::uint64_t restarts = 0;         ///< Successful restart invocations.
    std::uint64_t failed_restarts = 0;  ///< Restart callbacks that returned false.
    std::uint32_t consecutive = 0;      ///< Failure burst length (drives backoff).
  };
  [[nodiscard]] const ChildStats& child_stats(ChildId child) const {
    return children_[child].stats;
  }

  /// The delay the next restart of `child` would use.
  [[nodiscard]] SimTime backoff_for(ChildId child) const;

  /// Terminal give-up: the root supervisor exhausted its restart budget.
  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] const std::string& give_up_reason() const { return give_up_reason_; }
  /// Suspended: escalated to the parent, waiting to be restarted as a unit.
  [[nodiscard]] bool suspended() const { return suspended_; }
  [[nodiscard]] std::uint64_t escalations() const { return escalations_; }
  [[nodiscard]] std::size_t pending_restarts() const { return pending_.size(); }
  /// True when no restart is pending, nothing escalated and nothing gave up.
  [[nodiscard]] bool quiescent() const {
    return pending_.empty() && !suspended_ && !gave_up_;
  }

  /// "sup soc: 2 children, 3 restarts, 0 escalations".
  [[nodiscard]] std::string str() const;

  /// Checkpointable supervision state. The scheduled restart event lives in
  /// the kernel checkpoint (the drain process is registered); this covers
  /// the pending-restart queue payload, per-child counters, the intensity
  /// window and the escalation/give-up flags. Restore validates the child
  /// count against this supervisor's registrations.
  struct Checkpoint {
    bool suspended = false;
    bool gave_up = false;
    std::string give_up_reason;
    std::uint64_t escalations = 0;
    std::vector<std::uint64_t> window;  ///< Restart timestamps (ps), ascending.
    struct ChildState {
      std::uint64_t failures = 0;
      std::uint64_t restarts = 0;
      std::uint64_t failed_restarts = 0;
      std::uint32_t consecutive = 0;
      std::uint64_t last_failure_ps = 0;
    };
    std::vector<ChildState> children;
    struct PendingRestart {
      std::uint64_t due_ps = 0;
      ChildId child = kInvalidChild;
    };
    std::vector<PendingRestart> pending;  ///< Insertion (FIFO) order.
  };
  [[nodiscard]] Checkpoint capture_checkpoint() const;
  bool restore_checkpoint(const Checkpoint& checkpoint, support::DiagnosticSink& sink);

  /// The expectation label this supervisor holds while restarts are pending
  /// (save_snapshot accepts outstanding expectations with this label when
  /// the supervisor is a registered snapshot target).
  [[nodiscard]] std::string restart_expectation_label() const {
    return "supervisor " + name_ + " restart pending";
  }

 private:
  struct Child {
    std::string name;
    std::function<bool()> restart;
    Watchdog* watchdog = nullptr;
    HealthRegistry* registry = nullptr;
    HealthRegistry::UnitId health_unit = HealthRegistry::kInvalidUnit;
    ChildStats stats;
    std::uint64_t last_failure_ps = 0;
  };
  struct PendingRestart {
    std::uint64_t due_ps;
    ChildId child;
  };

  void schedule_restart(ChildId child, SimTime delay);
  void drain_due_restarts();
  void execute_restart(ChildId child);
  /// Prunes the intensity window and records one restart at `now_ps`;
  /// returns false when the budget is exceeded (caller escalates).
  bool budget_allows(std::uint64_t now_ps);
  void escalate(std::string_view reason);
  void cancel_pending();
  /// Parent-driven recovery of an escalated subtree: clears suspension,
  /// resets the intensity window and burst counters, restarts every child.
  bool reset_and_restart_all();
  void set_child_health(ChildId child, UnitHealth health, std::string_view reason);
  void emit(const char* event, std::int64_t data);

  Kernel& kernel_;
  std::string name_;
  RestartStrategy strategy_;
  RestartPolicy policy_;
  ErrorEmitter emitter_;
  std::function<void(const std::string&)> on_give_up_;
  std::function<bool(const std::string&)> rollback_handler_;
  Supervisor* parent_ = nullptr;
  ChildId id_in_parent_ = kInvalidChild;
  ProcessId restart_process_ = kInvalidProcess;
  ExpectationId restart_expectation_ = kInvalidExpectation;

  std::vector<Child> children_;
  std::vector<PendingRestart> pending_;  // Insertion (FIFO) order.
  std::vector<PendingRestart> due_scratch_;
  std::vector<std::uint64_t> window_;  // Restart timestamps, ascending.
  bool suspended_ = false;
  bool gave_up_ = false;
  std::string give_up_reason_;
  std::uint64_t escalations_ = 0;
};

}  // namespace umlsoc::sim
