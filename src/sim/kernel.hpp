// Discrete-event simulation kernel ("miniSysC"): the SystemC-testbed
// substitution from DESIGN.md. Implements the two-phase evaluate/update
// delta-cycle scheduler that SystemC-style generated code relies on:
//
//   while events pending:
//     advance time to the earliest event, collect its callbacks
//     repeat (delta cycles):
//       EVALUATE: run all runnable processes
//       UPDATE:   apply pending signal updates; value changes notify
//                 sensitive processes into the next delta
//     until no process is runnable at the current time
//
// Processes are callbacks (no threads/coroutines); "waiting" is expressed by
// sensitivity to events or by self-rescheduling with a delay.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace umlsoc::sim {

/// Simulation time in picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::uint64_t picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] static constexpr SimTime ps(std::uint64_t v) { return SimTime(v); }
  [[nodiscard]] static constexpr SimTime ns(std::uint64_t v) { return SimTime(v * 1000); }
  [[nodiscard]] static constexpr SimTime us(std::uint64_t v) { return SimTime(v * 1000000); }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::uint64_t>::max());
  }

  [[nodiscard]] constexpr std::uint64_t picoseconds() const { return ps_; }
  [[nodiscard]] std::string str() const;

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime(a.ps_ + b.ps_); }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::uint64_t ps_ = 0;
};

class Kernel;

/// Notification primitive. Processes subscribe; notify() wakes them in the
/// next delta cycle, notify(delay) at a later time.
class SimEvent {
 public:
  explicit SimEvent(Kernel& kernel, std::string name = "");
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Immediate (next-delta) notification.
  void notify();
  /// Timed notification.
  void notify(SimTime delay);

  /// Persistent subscription: `callback` runs on every notification.
  void subscribe(std::function<void()> callback);

 private:
  friend class Kernel;

  Kernel& kernel_;
  std::string name_;
  std::vector<std::function<void()>> subscribers_;
};

/// Base for update-phase participants (signals).
class Updatable {
 public:
  virtual ~Updatable() = default;
  virtual void update() = 0;
};

/// The scheduler.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Schedules `callback` to run `delay` after the current time (a delay of
  /// zero runs at the current time but in a later delta batch).
  void schedule(SimTime delay, std::function<void()> callback);

  /// Runs `callback` in the next delta cycle's evaluate phase.
  void schedule_delta(std::function<void()> callback);

  /// Registers a signal update for the current delta's update phase.
  void request_update(Updatable& target);

  /// Runs until the event queue drains or `end` is passed. Returns the
  /// number of callbacks executed. Stops (throwing std::runtime_error) if a
  /// single timestamp exceeds the delta limit (combinational loop guard).
  std::uint64_t run(SimTime end = SimTime::max());

  /// True when nothing remains scheduled.
  [[nodiscard]] bool idle() const { return timed_queue_.empty() && runnable_.empty(); }

  static constexpr std::uint64_t kMaxDeltasPerInstant = 10000;

 private:
  struct TimedEntry {
    SimTime at;
    std::uint64_t sequence;
    std::function<void()> callback;

    bool operator>(const TimedEntry& other) const {
      if (at != other.at) return at > other.at;
      return sequence > other.sequence;
    }
  };

  void run_delta_loop();

  SimTime now_;
  std::uint64_t sequence_ = 0;
  std::uint64_t delta_count_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<TimedEntry, std::vector<TimedEntry>, std::greater<>> timed_queue_;
  std::vector<std::function<void()>> runnable_;
  std::vector<std::function<void()>> next_runnable_;
  std::vector<Updatable*> update_requests_;
};

}  // namespace umlsoc::sim
