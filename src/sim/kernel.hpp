// Discrete-event simulation kernel ("miniSysC"): the SystemC-testbed
// substitution from DESIGN.md. Implements the two-phase evaluate/update
// delta-cycle scheduler that SystemC-style generated code relies on:
//
//   while events pending:
//     advance time to the earliest event, collect its callbacks
//     repeat (delta cycles):
//       EVALUATE: run all runnable processes
//       UPDATE:   apply pending signal updates; value changes notify
//                 sensitive processes into the next delta
//     until no process is runnable at the current time
//
// Processes are callbacks (no threads/coroutines); "waiting" is expressed by
// sensitivity to events or by self-rescheduling with a delay.
//
// Scheduling is handle-based: a process registers its callback once
// (register_process) and every queue entry afterwards is a POD
// {time, sequence, ProcessId} record — no std::function is constructed or
// copied on the steady-state scheduling path. Timed events live in a
// two-level structure: a time wheel (bitmap-indexed buckets covering the
// near future) plus an overflow binary heap for events beyond the wheel
// horizon; heap entries cascade into the wheel as time advances.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <deque>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace umlsoc::sim {

class EventRecorder;

/// Simulation time in picoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::uint64_t picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] static constexpr SimTime ps(std::uint64_t v) { return SimTime(v); }
  [[nodiscard]] static constexpr SimTime ns(std::uint64_t v) { return SimTime(v * 1000); }
  [[nodiscard]] static constexpr SimTime us(std::uint64_t v) { return SimTime(v * 1000000); }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime(std::numeric_limits<std::uint64_t>::max());
  }

  [[nodiscard]] constexpr std::uint64_t picoseconds() const { return ps_; }
  [[nodiscard]] std::string str() const;

  /// Saturating addition: `now + delay` near SimTime::max() clamps to
  /// SimTime::max() instead of wrapping (a wrapped sum would silently
  /// schedule the event in the past).
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    const std::uint64_t sum = a.ps_ + b.ps_;
    return SimTime(sum < a.ps_ ? std::numeric_limits<std::uint64_t>::max() : sum);
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::uint64_t ps_ = 0;
};

class Kernel;

/// Stable handle to a registered process (an index into the kernel's
/// process table). 8 bytes of queue payload per scheduled event.
using ProcessId = std::uint32_t;
inline constexpr ProcessId kInvalidProcess = std::numeric_limits<ProcessId>::max();

/// Stable handle to a registered expectation class (see
/// Kernel::register_expectation).
using ExpectationId = std::uint32_t;
inline constexpr ExpectationId kInvalidExpectation =
    std::numeric_limits<ExpectationId>::max();

/// End-of-run diagnosis: did the event queues drain while registered
/// expectations (in-flight bus transactions, armed watchdogs, ...) were
/// still outstanding? That is a deadlock/starvation signature — something
/// was waiting for a response that can no longer arrive.
struct QuiescenceReport {
  bool drained = true;                  ///< Queues empty when run() returned.
  std::uint64_t outstanding_total = 0;  ///< Unresolved expectations at that point.

  struct Outstanding {
    std::string label;
    std::uint64_t count;
  };
  /// Per-label breakdown; populated only when deadlocked() (the clean path
  /// allocates nothing).
  std::vector<Outstanding> outstanding;

  [[nodiscard]] bool deadlocked() const { return drained && outstanding_total != 0; }
  /// "deadlock: 2 outstanding (axi.cpu0 in-flight x1, wd.main armed x1)".
  [[nodiscard]] std::string str() const;
};

/// Notification primitive. Processes subscribe; notify() wakes them in the
/// next delta cycle, notify(delay) at a later time.
class SimEvent {
 public:
  explicit SimEvent(Kernel& kernel, std::string name = "");
  SimEvent(const SimEvent&) = delete;
  SimEvent& operator=(const SimEvent&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Immediate (next-delta) notification. SystemC-style collapsing: an
  /// event has at most one pending delta notification, so notifying twice
  /// before the next delta wakes each subscriber once, not twice.
  void notify();
  /// Timed notification.
  void notify(SimTime delay);

  /// Persistent subscription of an already-registered process.
  void subscribe(ProcessId process);
  /// Persistent subscription: `callback` is registered as a process and
  /// runs on every notification.
  void subscribe(std::function<void()> callback);

 private:
  friend class Kernel;

  Kernel& kernel_;
  std::string name_;
  std::vector<ProcessId> subscribers_;
  bool delta_pending_ = false;
};

/// Base for update-phase participants (signals).
class Updatable {
 public:
  virtual ~Updatable() = default;
  virtual void update() = 0;
};

/// The scheduler.
class Kernel {
 public:
  Kernel();
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t delta_count() const { return delta_count_; }
  [[nodiscard]] std::uint64_t events_processed() const { return events_processed_; }

  /// Registers `body` as a process and returns its stable handle. Register
  /// once, then schedule the handle: scheduling performs no std::function
  /// construction and no per-event allocation in steady state.
  [[nodiscard]] ProcessId register_process(std::function<void()> body);

  /// Same, attaching a diagnostic label (shown by replay-divergence reports
  /// and snapshot validation). Registration is cold; labels cost nothing on
  /// the scheduling path.
  [[nodiscard]] ProcessId register_process(std::function<void()> body, std::string label);

  void set_process_label(ProcessId process, std::string label) {
    labels_[process] = std::move(label);
  }
  /// Label given at registration, or "" for unlabeled processes.
  [[nodiscard]] const std::string& process_label(ProcessId process) const {
    return labels_[process];
  }
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }

  /// Schedules the registered process to run `delay` after the current time
  /// (a delay of zero runs at the current time but in a later delta batch).
  /// The same process may be pending any number of times.
  void schedule(SimTime delay, ProcessId process);

  /// Runs the registered process in the next delta cycle's evaluate phase.
  void schedule_delta(ProcessId process);

  /// Registers a signal update for the current delta's update phase.
  void request_update(Updatable& target) { update_requests_.push_back(&target); }

  /// Registers a named expectation class once (e.g. "axi.cpu0 in-flight");
  /// expect/fulfill then adjust plain counters, so tracking an individual
  /// transaction is allocation-free.
  [[nodiscard]] ExpectationId register_expectation(std::string label);
  /// Declares one more outstanding instance of the expectation.
  void expect(ExpectationId id) {
    ++expectations_[id].outstanding;
    ++outstanding_total_;
    ++expectation_ops_;
  }
  /// Resolves one outstanding instance (over-fulfilling is ignored).
  void fulfill(ExpectationId id) {
    if (expectations_[id].outstanding == 0) return;
    --expectations_[id].outstanding;
    --outstanding_total_;
    ++expectation_ops_;
  }
  [[nodiscard]] std::uint64_t outstanding_expectations() const { return outstanding_total_; }

  /// Rebuilt at the end of every run(). A run whose queues drain while
  /// expectations remain outstanding reports deadlocked() instead of
  /// returning silently.
  [[nodiscard]] const QuiescenceReport& quiescence_report() const { return report_; }

  /// Runs until the event queue drains or `end` is passed. Returns the
  /// number of callbacks executed. Stops (throwing std::runtime_error) if a
  /// single timestamp exceeds the delta limit (combinational loop guard);
  /// the runnable/update sets are cleared before throwing so the kernel
  /// stays usable (timed events remain pending).
  std::uint64_t run(SimTime end = SimTime::max());

  /// True when nothing remains scheduled.
  [[nodiscard]] bool idle() const {
    return timed_size_ == 0 && runnable_.empty() && next_runnable_.empty();
  }

  /// Checkpoint-encoding observability, fed by the replay layer (XML and
  /// binary snapshot paths, CheckpointStore). Sections dirty/total describe
  /// incremental encodes; wall times are host-clock nanoseconds.
  struct SnapshotStats {
    std::uint64_t encodes = 0;          ///< Snapshot/checkpoint serializations.
    std::uint64_t restores = 0;         ///< Successful snapshot applications.
    std::uint64_t bytes_written = 0;    ///< Serialized bytes across all encodes.
    std::uint64_t sections_dirty = 0;   ///< Sections re-encoded with a payload.
    std::uint64_t sections_total = 0;   ///< Sections considered across all encodes.
    std::uint64_t encode_wall_ns = 0;   ///< Host time spent serializing.
    std::uint64_t restore_wall_ns = 0;  ///< Host time spent decoding + applying.
  };

  /// Scheduler observability counters (monotonic over the kernel's life).
  struct Stats {
    std::uint64_t timed_peak = 0;             ///< high-water mark of pending timed events
    std::uint64_t max_deltas_per_instant = 0; ///< worst delta-cycle count at one timestamp
    std::uint64_t wheel_hits = 0;             ///< timed entries bucketed in the wheel
    std::uint64_t heap_hits = 0;              ///< timed entries overflowed to the far heap
    std::uint64_t cascades = 0;               ///< heap entries migrated into the wheel
    std::uint64_t processes_registered = 0;   ///< register_process calls
    std::uint64_t collapsed_notifications = 0;///< delta notify() calls absorbed by a pending one
    SnapshotStats snapshot;                   ///< checkpoint encode/restore accounting
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Accounting hooks for the snapshot machinery (replay layer).
  void note_snapshot_encode(std::uint64_t bytes, std::uint64_t sections_dirty,
                            std::uint64_t sections_total, std::uint64_t wall_ns) {
    ++stats_.snapshot.encodes;
    stats_.snapshot.bytes_written += bytes;
    stats_.snapshot.sections_dirty += sections_dirty;
    stats_.snapshot.sections_total += sections_total;
    stats_.snapshot.encode_wall_ns += wall_ns;
  }
  void note_snapshot_restore(std::uint64_t wall_ns) {
    ++stats_.snapshot.restores;
    stats_.snapshot.restore_wall_ns += wall_ns;
  }

  /// Change-detection fingerprint over everything Checkpoint captures.
  /// Sound because no checkpoint-visible state moves without one of the
  /// mixed counters moving: schedule bumps the sequence, every executed
  /// process (the only way now() advances) bumps events_processed, and
  /// expect/fulfill/restore_checkpoint bump a dedicated op counter.
  /// Incremental checkpointing skips re-capturing the kernel section while
  /// the revision holds still.
  [[nodiscard]] std::uint64_t revision() const {
    std::uint64_t hash = 1469598103934665603ULL;
    for (std::uint64_t value : {sequence_, events_processed_, expectation_ops_,
                                static_cast<std::uint64_t>(processes_.size()),
                                static_cast<std::uint64_t>(expectations_.size())}) {
      hash ^= value;
      hash *= 1099511628211ULL;
    }
    return hash;
  }

  // --- Checkpoint / restore --------------------------------------------------

  /// Serializable scheduler state. Pending timed events are captured as
  /// {time, sequence, ProcessId} metadata — process *bodies* are not
  /// captured; a restoring kernel must have registered the same processes in
  /// the same order (deterministic construction), which makes ProcessIds
  /// stable addresses across processes.
  struct Checkpoint {
    std::uint64_t now_ps = 0;
    std::uint64_t sequence = 0;
    std::uint64_t delta_count = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t process_count = 0;  ///< Registered processes at capture time.

    struct PendingTimed {
      std::uint64_t at_ps = 0;
      std::uint64_t sequence = 0;  ///< FIFO tiebreak among same-time events.
      ProcessId process = kInvalidProcess;
    };
    std::vector<PendingTimed> timed;  ///< Sorted by (at_ps, sequence).

    struct ExpectationEntry {
      std::string label;
      std::uint64_t outstanding = 0;
    };
    std::vector<ExpectationEntry> expectations;  ///< One per registered id.
  };

  /// Captures the scheduler state between run() calls — or from inside a
  /// process that is the *only* member of its delta batch (a background
  /// checkpoint tick). Fails (returns false, reports through `sink`) when
  /// called mid-delta: runnable processes, batch co-members still to run,
  /// or pending signal updates exist, because their in-flight work would be
  /// invisible to the capture.
  bool capture_checkpoint(Checkpoint& out, support::DiagnosticSink& sink) const;

  /// Replaces the scheduler state with `checkpoint`: time, sequence counter,
  /// counters, every pending timed event, and expectation counters. All
  /// previously pending work is discarded (a deterministic setup schedules
  /// its initial events at construction; the snapshot supersedes them).
  /// Validates before mutating: unknown ProcessIds, events in the past, or
  /// expectation labels that do not match this kernel's registrations report
  /// through `sink` and return false with the kernel unchanged.
  bool restore_checkpoint(const Checkpoint& checkpoint, support::DiagnosticSink& sink);

  /// Attaches (or detaches, with nullptr) an event recorder/verifier. The
  /// hot-path cost when detached is a single pointer null check per event.
  void set_recorder(EventRecorder* recorder) { recorder_ = recorder; }
  [[nodiscard]] EventRecorder* recorder() const { return recorder_; }

  static constexpr std::uint64_t kMaxDeltasPerInstant = 10000;

  /// Wheel geometry: buckets of 2^kWheelShift ps (≈1ns), kWheelBuckets of
  /// them — events within ~4.2us of now() go to the wheel, farther ones to
  /// the overflow heap.
  static constexpr std::uint32_t kWheelShift = 10;
  static constexpr std::uint32_t kWheelBuckets = 4096;

 private:
  struct TimedEntry {
    std::uint64_t at_ps;
    std::uint64_t sequence;
    ProcessId process;
    std::int32_t next;  // intrusive chain link within a wheel bucket
  };

  static bool heap_later(const TimedEntry& a, const TimedEntry& b) {
    if (a.at_ps != b.at_ps) return a.at_ps > b.at_ps;
    return a.sequence > b.sequence;
  }

  static constexpr std::uint32_t kWheelMask = kWheelBuckets - 1;
  static constexpr std::uint32_t kWheelWords = kWheelBuckets / 64;

  // Called by SimEvent.
  friend class SimEvent;
  void enqueue_delta_subscribers(SimEvent& event);

  void push_timed(std::uint64_t at_ps, ProcessId process);
  void push_wheel(const TimedEntry& entry);
  void cascade_heap();
  /// Earliest pending timed timestamp; timed_size_ must be nonzero. Caches
  /// the wheel slot holding it (or -1 for heap) for collect_runnable_at.
  [[nodiscard]] std::uint64_t peek_next_timed();
  /// Wheel slot of the first occupied bucket at/after the cursor in window
  /// order, or -1 when the wheel is empty.
  [[nodiscard]] int first_occupied_slot() const;
  /// Moves every wheel entry at exactly `at_ps` into runnable_ (FIFO by
  /// sequence). Caller must have advanced now_/wheel base first.
  void collect_runnable_at(std::uint64_t at_ps);

  void run_process(ProcessId process);
  /// Out-of-line recorder notification (recorder_ already known non-null).
  void record_event(ProcessId process);
  /// Promotes next_runnable_ to runnable_ and clears pending-notification
  /// flags (their subscribers are now in the runnable set).
  void begin_delta();
  void run_delta_loop();
  /// Clears all delta-cycle state so the kernel survives a thrown
  /// combinational-loop error; timed events stay pending.
  void clear_delta_state();

  SimTime now_;
  std::uint64_t sequence_ = 0;
  std::uint64_t expectation_ops_ = 0;  ///< expect/fulfill/restore calls (see revision()).
  std::uint64_t delta_count_ = 0;
  std::uint64_t events_processed_ = 0;

  // Process table. deque: references stay stable while callbacks register
  // further processes mid-run.
  std::deque<std::function<void()>> processes_;
  std::deque<std::string> labels_;  // parallel to processes_
  EventRecorder* recorder_ = nullptr;

  // Timed events: wheel (intrusive chains over a pooled arena — bucket
  // heads are one contiguous array and freed pool slots are reused LIFO,
  // so the steady-state working set stays cache-resident) + occupancy
  // bitmaps + overflow heap.
  std::vector<std::int32_t> wheel_heads_;  // kWheelBuckets, -1 = empty
  std::vector<TimedEntry> pool_;
  std::vector<std::int32_t> free_pool_;
  std::uint64_t occupancy_[kWheelWords] = {};
  std::uint64_t occupancy_summary_ = 0;
  std::vector<TimedEntry> heap_;  // min-heap via heap_later
  std::uint64_t wheel_base_quantum_ = 0;
  std::uint64_t wheel_count_ = 0;
  std::uint64_t timed_size_ = 0;
  int peeked_slot_ = -1;  // wheel slot found by peek_next_timed, -1 = heap
  // When exactly one timed event is pending and it sits in the wheel, its
  // slot; -1 = unknown (fall back to the bitmap scan). Lets the sparse
  // steady state (single self-rescheduling process) pop in O(1) flat.
  int solo_slot_ = -1;

  // Delta-cycle working sets (members so run_delta_loop allocates nothing
  // in steady state: capacity is retained across deltas and runs).
  std::vector<ProcessId> runnable_;
  std::vector<ProcessId> next_runnable_;
  std::vector<ProcessId> current_;
  // Batch co-members still to run after the currently-executing process.
  // capture_checkpoint refuses while nonzero: a multi-entry evaluate batch
  // is walked from current_, which the runnable_-emptiness check alone
  // cannot see (an in-simulation checkpoint tick is only sound when it is
  // the lone member of its batch).
  std::size_t batch_remaining_ = 0;
  std::vector<Updatable*> update_requests_;
  std::vector<Updatable*> update_scratch_;
  std::vector<TimedEntry> collect_scratch_;
  std::vector<SimEvent*> pending_delta_events_;

  // Expectation registry (resilience diagnostics). deque: labels referenced
  // by the report builder stay stable as registrations grow the table.
  struct Expectation {
    std::string label;
    std::uint64_t outstanding = 0;
  };
  std::deque<Expectation> expectations_;
  std::uint64_t outstanding_total_ = 0;
  QuiescenceReport report_;

  Stats stats_;
};

// ---- inline hot path ------------------------------------------------------
// Scheduling an already-registered handle is the per-event steady-state
// path; defining it here lets callers (Clock, Signal, generated modules,
// benchmarks) inline the wheel push instead of paying a cross-TU call.

inline void Kernel::push_wheel(const TimedEntry& entry) {
  const std::uint32_t slot =
      static_cast<std::uint32_t>(entry.at_ps >> kWheelShift) & kWheelMask;
  std::int32_t index;
  if (!free_pool_.empty()) {
    index = free_pool_.back();
    free_pool_.pop_back();
    pool_[static_cast<std::size_t>(index)] = entry;
  } else {
    index = static_cast<std::int32_t>(pool_.size());
    pool_.push_back(entry);
  }
  pool_[static_cast<std::size_t>(index)].next = wheel_heads_[slot];
  wheel_heads_[slot] = index;
  occupancy_[slot >> 6] |= 1ULL << (slot & 63);
  occupancy_summary_ |= 1ULL << (slot >> 6);
  ++wheel_count_;
}

inline void Kernel::push_timed(std::uint64_t at_ps, ProcessId process) {
  const TimedEntry entry{at_ps, ++sequence_, process, -1};
  const std::uint64_t quantum = at_ps >> kWheelShift;
  if (quantum - wheel_base_quantum_ < kWheelBuckets) {
    push_wheel(entry);
    ++stats_.wheel_hits;
    solo_slot_ = timed_size_ == 0
                     ? static_cast<int>(static_cast<std::uint32_t>(quantum) & kWheelMask)
                     : -1;
  } else {
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), heap_later);
    ++stats_.heap_hits;
    solo_slot_ = -1;
  }
  ++timed_size_;
  // timed_peak is sampled at the top of each run() timestep (exact: pushes
  // land between collections), keeping this hot path lean.
}

inline void Kernel::schedule(SimTime delay, ProcessId process) {
  push_timed((now_ + delay).picoseconds(), process);
}

inline void Kernel::schedule_delta(ProcessId process) {
  next_runnable_.push_back(process);
}

inline void Kernel::enqueue_delta_subscribers(SimEvent& event) {
  if (event.subscribers_.size() == 1) {
    next_runnable_.push_back(event.subscribers_.front());
  } else {
    next_runnable_.insert(next_runnable_.end(), event.subscribers_.begin(),
                          event.subscribers_.end());
  }
  pending_delta_events_.push_back(&event);
}

inline void SimEvent::notify() {
  if (subscribers_.empty()) return;
  if (delta_pending_) {
    ++kernel_.stats_.collapsed_notifications;
    return;
  }
  delta_pending_ = true;
  kernel_.enqueue_delta_subscribers(*this);
}

inline void SimEvent::notify(SimTime delay) {
  for (ProcessId subscriber : subscribers_) kernel_.schedule(delay, subscriber);
}

inline void SimEvent::subscribe(ProcessId process) { subscribers_.push_back(process); }

}  // namespace umlsoc::sim
