// Deterministic-replay support: an event-sequence recorder for the kernel.
//
// Attached via Kernel::set_recorder, the recorder observes every process
// execution as a {sim time, ProcessId} pair. Because the kernel is
// deterministic (FIFO same-time ordering by sequence number, seeded fault
// streams), the recorded sequence is a complete fingerprint of a run: two
// runs of the same setup diverge exactly where their event streams first
// differ.
//
// Two modes:
//  * kRecord — append events to the log (optionally a bounded ring that
//    keeps the last N events: the flight-recorder configuration for long
//    adversarial runs).
//  * kVerify — compare each event against an expected log and latch the
//    first divergence (expected vs actual process, time, label) instead of
//    crashing or silently drifting. Recording continues during verification
//    so the actual log stays available for inspection.
//
// Cost: detached, one pointer null check per event in the kernel hot path;
// attached, one bounds check and a 16-byte append.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/kernel.hpp"

namespace umlsoc::sim {

/// One executed process activation.
struct RecordedEvent {
  std::uint64_t at_ps = 0;
  ProcessId process = kInvalidProcess;

  friend bool operator==(const RecordedEvent&, const RecordedEvent&) = default;
};

class EventRecorder {
 public:
  enum class Mode : std::uint8_t { kRecord, kVerify };

  /// First point where a verified run departs from the expected log.
  struct Divergence {
    std::uint64_t index = 0;    ///< Position in the event stream (0-based).
    bool extra_event = false;   ///< Actual run produced events past the log's end.
    RecordedEvent expected;     ///< Valid when !extra_event.
    RecordedEvent actual;
    std::string expected_label;
    std::string actual_label;

    /// "diverged at event #12: expected process 3 'bus.axi.completion' at
    /// 96ns, got process 5 'wd.main' at 104ns".
    [[nodiscard]] std::string str() const;
  };

  /// ring_capacity 0 keeps the full log; otherwise only the most recent
  /// `ring_capacity` events are retained (total_events() still counts all).
  explicit EventRecorder(std::size_t ring_capacity = 0);

  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] std::size_t ring_capacity() const { return ring_capacity_; }

  /// Events observed over the recorder's life (including overwritten ring
  /// entries and events restored from a snapshot).
  [[nodiscard]] std::uint64_t total_events() const { return total_; }
  /// Events no longer retained (ring overwrites).
  [[nodiscard]] std::uint64_t dropped_events() const { return total_ - retained_count(); }

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<RecordedEvent> log() const;

  /// Replaces the log (snapshot restore): `events` become the retained
  /// prefix and `total` the running count. Recording continues after them,
  /// so a restored run's final log is directly comparable with an
  /// uninterrupted run's.
  void restore_log(std::vector<RecordedEvent> events, std::uint64_t total);

  /// Switches to verify mode: events from stream position `start_index`
  /// onward are compared against `expected[start_index...]`. Pass the full
  /// expected log with start_index = total_events() to verify a restored
  /// run's continuation against an uninterrupted reference.
  void begin_verify(std::vector<RecordedEvent> expected, std::uint64_t start_index = 0);

  /// Returns to record mode after a verify window, keeping the stream
  /// position and the retained log. Events past the expected log's end no
  /// longer latch an extra-event divergence — required when a rollback
  /// replays a verified suffix and then *resumes* live execution beyond
  /// the recording. Any divergence latched during the window survives.
  void end_verify();

  /// First mismatch latched so far (std::nullopt: no divergence yet).
  [[nodiscard]] const std::optional<Divergence>& divergence() const { return divergence_; }

  /// End-of-run check in verify mode: reports a divergence when the
  /// expected log has unconsumed events (the verified run stopped short).
  [[nodiscard]] std::optional<Divergence> missing_events() const;

  /// Kernel hook: called once per executed process. The common case —
  /// unbounded recording — inlines to a 16-byte append; ring and verify
  /// modes take the out-of-line path.
  void on_event(std::uint64_t at_ps, ProcessId process, const Kernel& kernel) {
    if (mode_ == Mode::kRecord) {
      ++total_;
      if (ring_capacity_ == 0 || events_.size() < ring_capacity_) {
        events_.push_back(RecordedEvent{at_ps, process});
        return;
      }
      events_[ring_head_] = RecordedEvent{at_ps, process};
      if (++ring_head_ == ring_capacity_) ring_head_ = 0;
      return;
    }
    on_event_slow(at_ps, process, kernel);
  }

 private:
  void on_event_slow(std::uint64_t at_ps, ProcessId process, const Kernel& kernel);

  [[nodiscard]] std::uint64_t retained_count() const {
    return events_.size();
  }

  Mode mode_ = Mode::kRecord;
  std::size_t ring_capacity_ = 0;
  std::vector<RecordedEvent> events_;  // Ring when ring_capacity_ != 0.
  std::size_t ring_head_ = 0;          // Oldest retained entry (ring mode).
  std::uint64_t total_ = 0;
  std::vector<RecordedEvent> expected_;
  std::optional<Divergence> divergence_;
};

/// Offline comparison of two complete logs; labels resolved through
/// `kernel` when provided. Returns the first mismatch (including length
/// mismatches) or std::nullopt when identical.
[[nodiscard]] std::optional<EventRecorder::Divergence> first_divergence(
    const std::vector<RecordedEvent>& expected, const std::vector<RecordedEvent>& actual,
    const Kernel* kernel = nullptr);

}  // namespace umlsoc::sim
