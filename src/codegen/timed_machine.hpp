// Binding of state machines to the simulation kernel: UML time events
// ("after(10ns)") realized as kernel-scheduled event injections. This is
// the real-time face of the executable-UML story (UML-RT lineage, paper §2).
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>

#include <memory>

#include "sim/kernel.hpp"
#include "statechart/compile.hpp"
#include "statechart/interpreter.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::codegen {

/// Parses "after(<n><ps|ns|us>)"; nullopt when `text` is not a time trigger
/// at all, and an engaged-but-zero result is never returned (a malformed
/// after(...) yields nullopt too — callers distinguish via looks_like).
[[nodiscard]] std::optional<sim::SimTime> parse_after_trigger(const std::string& text);
[[nodiscard]] bool looks_like_after_trigger(const std::string& text);

/// Wraps a statechart engine and a sim::Kernel. after(state, delay,
/// event) arms a timer whenever `state` is entered; if the state is still
/// active (same activation) when the timer expires, `event` is dispatched.
/// Leaving the state cancels the pending timer (by activation epoch).
///
/// Process activations run on the AOT-compiled plan-table engine when the
/// machine compiles (EngineMode::kAuto, the default — timer dispatch is the
/// sim kernel's hot path); unsupported machines, or kInterpreted, use the
/// reference interpreter. Timer semantics are engine-independent: epochs
/// key off the state-listener callbacks both engines emit identically.
class TimedStateMachine {
 public:
  enum class EngineMode : std::uint8_t {
    kAuto,         ///< Compiled when possible, interpreter otherwise.
    kInterpreted,  ///< Always the reference interpreter.
  };

  TimedStateMachine(const statechart::StateMachine& machine, sim::Kernel& kernel,
                    EngineMode mode = EngineMode::kAuto);

  /// Declares a time trigger: `delay` after entering `state_name`, dispatch
  /// Event{event_name}. Call before start().
  void after(const std::string& state_name, sim::SimTime delay, std::string event_name);

  /// Scans the machine for transitions whose trigger text is a UML time
  /// trigger — "after(5ns)", "after(2us)", "after(100ps)" — and arms the
  /// corresponding timer on the source state automatically. The trigger
  /// string itself is the dispatched event, so the model stays plain text
  /// (and survives XMI). Returns the number of triggers bound; unparsable
  /// after(...) texts are reported through `sink`.
  std::size_t bind_after_triggers(support::DiagnosticSink& sink);

  void start() { engine_->start(); }
  bool dispatch(statechart::Event event) { return engine_->dispatch(std::move(event)); }

  [[nodiscard]] statechart::Engine& instance() { return *engine_; }
  [[nodiscard]] const statechart::Engine& instance() const { return *engine_; }
  /// True when activations run on the compiled plan-table engine.
  [[nodiscard]] bool compiled() const { return compiled_ != nullptr; }
  [[nodiscard]] std::uint64_t timeouts_fired() const { return timeouts_fired_; }
  [[nodiscard]] std::uint64_t timeouts_cancelled() const { return timeouts_cancelled_; }

 private:
  struct Timeout {
    sim::SimTime delay;
    std::string event;
    // One registered kernel process per timeout (handle API): re-armed by
    // scheduling the handle, never by constructing per-arm closures. All
    // arms of one timeout share the delay, so expiries pop armed_epochs in
    // FIFO order to recover each arm's activation epoch.
    sim::ProcessId process = sim::kInvalidProcess;
    std::deque<std::uint64_t> armed_epochs;
  };

  void on_state(const statechart::State& state, bool entered);
  void on_timeout(const statechart::State& state, Timeout& timeout);

  std::unique_ptr<statechart::CompiledMachine> compiled_;
  std::unique_ptr<statechart::StateMachineInstance> interpreted_;
  statechart::Engine* engine_ = nullptr;  ///< Whichever of the two is live.
  sim::Kernel& kernel_;
  std::multimap<std::string, Timeout> timeouts_;       // Keyed by state name.
  std::map<const statechart::State*, std::uint64_t> epochs_;
  std::uint64_t timeouts_fired_ = 0;
  std::uint64_t timeouts_cancelled_ = 0;
};

}  // namespace umlsoc::codegen
