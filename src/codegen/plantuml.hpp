// PlantUML text emitters for every supported diagram type. The concrete
// syntax is the de-facto textual exchange format for UML diagrams, which
// makes generated models reviewable without a GUI tool (the "notation"
// half of the paper's tooling story).
#pragma once

#include <string>

#include "activity/model.hpp"
#include "interaction/model.hpp"
#include "statechart/model.hpp"
#include "uml/package.hpp"
#include "usecase/model.hpp"

namespace umlsoc::codegen {

/// Class diagram of every classifier under `root` (classes, interfaces,
/// enumerations, associations, generalizations, realizations).
[[nodiscard]] std::string to_plantuml_class_diagram(uml::Package& root);

/// Object diagram of the InstanceSpecifications under `root`.
[[nodiscard]] std::string to_plantuml_object_diagram(uml::Package& root);

/// Component diagram: components with provided/required interfaces.
[[nodiscard]] std::string to_plantuml_component_diagram(uml::Package& root);

/// Composite structure of one class: parts, ports, connectors.
[[nodiscard]] std::string to_plantuml_structure_diagram(const uml::Class& cls);

/// State machine diagram.
[[nodiscard]] std::string to_plantuml_statechart(const statechart::StateMachine& machine);

/// Activity diagram.
[[nodiscard]] std::string to_plantuml_activity(const activity::Activity& activity);

/// Sequence diagram.
[[nodiscard]] std::string to_plantuml_sequence(const interaction::Interaction& interaction);

/// Use case diagram.
[[nodiscard]] std::string to_plantuml_use_cases(const usecase::UseCaseModel& model);

}  // namespace umlsoc::codegen
