#include "codegen/timed_machine.hpp"

#include <cctype>
#include <cstdlib>

namespace umlsoc::codegen {

bool looks_like_after_trigger(const std::string& text) {
  return text.rfind("after(", 0) == 0 && !text.empty() && text.back() == ')';
}

std::optional<sim::SimTime> parse_after_trigger(const std::string& text) {
  if (!looks_like_after_trigger(text)) return std::nullopt;
  const std::string inner = text.substr(6, text.size() - 7);
  char* end = nullptr;
  const unsigned long long value = std::strtoull(inner.c_str(), &end, 10);
  if (end == inner.c_str()) return std::nullopt;
  const std::string unit(end);
  if (unit == "ps") return sim::SimTime::ps(value);
  if (unit == "ns") return sim::SimTime::ns(value);
  if (unit == "us") return sim::SimTime::us(value);
  return std::nullopt;
}

TimedStateMachine::TimedStateMachine(const statechart::StateMachine& machine,
                                     sim::Kernel& kernel, EngineMode mode)
    : kernel_(kernel) {
  if (mode == EngineMode::kAuto) {
    support::DiagnosticSink compile_sink;  // Rejection = documented fallback.
    compiled_ = statechart::compile(machine, compile_sink);
  }
  if (compiled_ != nullptr) {
    engine_ = compiled_.get();
  } else {
    interpreted_ = std::make_unique<statechart::StateMachineInstance>(machine);
    engine_ = interpreted_.get();
  }
  engine_->set_state_listener(
      [this](const statechart::State& state, bool entered) { on_state(state, entered); });
}

void TimedStateMachine::after(const std::string& state_name, sim::SimTime delay,
                              std::string event_name) {
  timeouts_.emplace(state_name, Timeout{delay, std::move(event_name), sim::kInvalidProcess, {}});
}

std::size_t TimedStateMachine::bind_after_triggers(support::DiagnosticSink& sink) {
  std::size_t bound = 0;
  for (const statechart::Transition* transition : engine_->machine().all_transitions()) {
    const std::string& trigger = transition->trigger();
    if (!looks_like_after_trigger(trigger)) continue;
    std::optional<sim::SimTime> delay = parse_after_trigger(trigger);
    if (!delay.has_value()) {
      sink.error(transition->source().qualified_name(),
                 "unparsable time trigger '" + trigger + "' (use after(<n><ps|ns|us>))");
      continue;
    }
    const auto* source = dynamic_cast<const statechart::State*>(&transition->source());
    if (source == nullptr) {
      sink.error(transition->source().qualified_name(),
                 "time trigger on a pseudostate is not supported");
      continue;
    }
    after(source->name(), *delay, trigger);
    ++bound;
  }
  return bound;
}

void TimedStateMachine::on_state(const statechart::State& state, bool entered) {
  // Every entry/exit bumps the epoch; a timer armed for epoch E only fires
  // if the state's epoch is still E at expiry (i.e. no exit in between).
  std::uint64_t epoch = ++epochs_[&state];
  if (!entered) return;

  auto [begin, end] = timeouts_.equal_range(state.name());
  for (auto it = begin; it != end; ++it) {
    Timeout& timeout = it->second;
    if (timeout.process == sim::kInvalidProcess) {
      // First arm: register the expiry process once. Multimap values and
      // State objects are address-stable, so the captures stay valid.
      const statechart::State* target = &state;
      Timeout* slot = &timeout;
      timeout.process =
          kernel_.register_process([this, target, slot] { on_timeout(*target, *slot); });
    }
    timeout.armed_epochs.push_back(epoch);
    kernel_.schedule(timeout.delay, timeout.process);
  }
}

void TimedStateMachine::on_timeout(const statechart::State& state, Timeout& timeout) {
  // Arms of this timeout all use the same delay, so expiries arrive in arm
  // order: the front epoch belongs to the arm that just fired.
  const std::uint64_t armed_epoch = timeout.armed_epochs.front();
  timeout.armed_epochs.pop_front();
  if (epochs_[&state] != armed_epoch) {
    ++timeouts_cancelled_;  // State was left (or re-entered) meanwhile.
    return;
  }
  ++timeouts_fired_;
  engine_->dispatch(statechart::Event{timeout.event});
}

}  // namespace umlsoc::codegen
