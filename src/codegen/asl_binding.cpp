#include "codegen/asl_binding.hpp"

#include <memory>

#include "asl/parser.hpp"
#include "statechart/interpreter.hpp"

namespace umlsoc::codegen {

namespace {

/// Delegates to the user's context but adds var()/set_var() operations that
/// touch the dispatching machine instance's variable store.
class MachineScopedContext : public asl::ObjectContext {
 public:
  MachineScopedContext(asl::ObjectContext& base, statechart::Engine& instance)
      : base_(base), instance_(instance) {}

  asl::Value get_attribute(const std::string& name) override {
    return base_.get_attribute(name);
  }
  void set_attribute(const std::string& name, asl::Value value) override {
    base_.set_attribute(name, std::move(value));
  }
  asl::Value call(const std::string& operation,
                  const std::vector<asl::Value>& arguments) override {
    if (operation == "var" && arguments.size() == 1) {
      return asl::Value{instance_.variable(arguments[0].as_string())};
    }
    if (operation == "set_var" && arguments.size() == 2) {
      instance_.set_variable(arguments[0].as_string(), arguments[1].as_int());
      return asl::Value{};
    }
    return base_.call(operation, arguments);
  }
  void send_signal(const std::string& target, const std::string& signal,
                   const std::vector<asl::Value>& arguments) override {
    base_.send_signal(target, signal, arguments);
  }

 private:
  asl::ObjectContext& base_;
  statechart::Engine& instance_;
};

std::shared_ptr<const asl::Program> compile(const std::string& source,
                                            const std::string& subject, bool expression,
                                            support::DiagnosticSink& sink, bool& ok) {
  support::DiagnosticSink local_sink;
  std::optional<asl::Program> program =
      asl::parse(expression ? "return (" + source + ");" : source, local_sink);
  if (!program.has_value()) {
    sink.error(subject, "ASL does not parse: " + source + "\n" + local_sink.str());
    ok = false;
    return nullptr;
  }
  return std::make_shared<const asl::Program>(std::move(*program));
}

void seed_event_locals(asl::Environment& environment, const statechart::ActionContext& ctx) {
  environment.set_local("data", asl::Value{ctx.event != nullptr ? ctx.event->data : 0});
  environment.set_local(
      "event", asl::Value{ctx.event != nullptr ? ctx.event->name : std::string{}});
}

class MachineBinder {
 public:
  MachineBinder(asl::ObjectContext& context, support::DiagnosticSink& sink)
      : context_(context), sink_(sink) {}

  bool bind(statechart::StateMachine& machine) {
    bind_region(machine.top());
    return ok_;
  }

 private:
  void bind_region(statechart::Region& region) {
    for (const auto& vertex : region.vertices()) {
      auto* state = dynamic_cast<statechart::State*>(vertex.get());
      if (state == nullptr) continue;
      bind_state_behavior(*state, state->entry(), &statechart::State::set_entry);
      bind_state_behavior(*state, state->exit_behavior(), &statechart::State::set_exit);
      bind_state_behavior(*state, state->do_activity(), &statechart::State::set_do_activity);
      for (const auto& subregion : state->regions()) bind_region(*subregion);
    }
    for (const auto& transition : region.transitions()) {
      bind_transition(*transition);
    }
  }

  void bind_state_behavior(statechart::State& state, const statechart::Behavior& behavior,
                           void (statechart::State::*setter)(statechart::Behavior)) {
    if (behavior.text.empty() || behavior.fn != nullptr) return;
    std::shared_ptr<const asl::Program> program =
        compile(behavior.text, state.qualified_name(), /*expression=*/false, sink_, ok_);
    if (program == nullptr) return;
    asl::ObjectContext* base = &context_;
    (state.*setter)(statechart::Behavior{
        behavior.text, [program, base](statechart::ActionContext& ctx) {
          MachineScopedContext scoped(*base, ctx.instance);
          asl::Environment environment(scoped);
          seed_event_locals(environment, ctx);
          asl::Interpreter interpreter;
          interpreter.execute(*program, environment);
        }});
  }

  void bind_transition(statechart::Transition& transition) {
    const statechart::Guard& guard = transition.guard();
    if (!guard.text.empty() && !guard.is_else() && guard.fn == nullptr) {
      std::shared_ptr<const asl::Program> program = compile(
          guard.text, "guard [" + guard.text + "]", /*expression=*/true, sink_, ok_);
      if (program != nullptr) {
        asl::ObjectContext* base = &context_;
        transition.set_guard(statechart::Guard{
            guard.text, [program, base](const statechart::ActionContext& ctx) {
              MachineScopedContext scoped(*base, ctx.instance);
              asl::Environment environment(scoped);
              seed_event_locals(environment, ctx);
              asl::Interpreter interpreter;
              std::optional<asl::Value> result = interpreter.execute(*program, environment);
              return result.has_value() && result->as_bool();
            }});
      }
    }
    const statechart::Behavior& effect = transition.effect();
    if (!effect.text.empty() && effect.fn == nullptr) {
      std::shared_ptr<const asl::Program> program =
          compile(effect.text, "effect / " + effect.text, /*expression=*/false, sink_, ok_);
      if (program != nullptr) {
        asl::ObjectContext* base = &context_;
        transition.set_effect(statechart::Behavior{
            effect.text, [program, base](statechart::ActionContext& ctx) {
              MachineScopedContext scoped(*base, ctx.instance);
              asl::Environment environment(scoped);
              seed_event_locals(environment, ctx);
              asl::Interpreter interpreter;
              interpreter.execute(*program, environment);
            }});
      }
    }
  }

  asl::ObjectContext& context_;
  support::DiagnosticSink& sink_;
  bool ok_ = true;
};

}  // namespace

bool bind_statechart_asl(statechart::StateMachine& machine, asl::ObjectContext& context,
                         support::DiagnosticSink& sink) {
  return MachineBinder(context, sink).bind(machine);
}

bool bind_activity_asl(activity::Activity& activity, asl::ObjectContext& context,
                       support::DiagnosticSink& sink) {
  bool ok = true;
  for (const auto& node : activity.nodes()) {
    if (node->node_kind() != activity::NodeKind::kAction) continue;
    if (node->script().empty() || node->behavior() != nullptr) continue;
    std::shared_ptr<const asl::Program> program =
        compile(node->script(), activity.name() + "." + node->name(), /*expression=*/false,
                sink, ok);
    if (program == nullptr) continue;
    asl::ObjectContext* base = &context;
    node->set_behavior([program, base](activity::ActionFiring& firing) {
      asl::Environment environment(*base);
      environment.set_local(
          "input", asl::Value{firing.inputs.empty() ? 0 : firing.inputs.front().value});
      asl::Interpreter interpreter;
      std::optional<asl::Value> result = interpreter.execute(*program, environment);
      if (result.has_value()) {
        firing.output = result->as_int();
      } else if (environment.has_local("output")) {
        firing.output = environment.local("output").as_int();
      }
    });
  }
  for (const auto& edge : activity.edges()) {
    const activity::EdgeGuard& guard = edge->guard();
    if (guard.text.empty() || guard.is_else() || guard.fn != nullptr) continue;
    std::shared_ptr<const asl::Program> program =
        compile(guard.text, activity.name() + " edge [" + guard.text + "]",
                /*expression=*/true, sink, ok);
    if (program == nullptr) continue;
    asl::ObjectContext* base = &context;
    edge->set_guard(activity::EdgeGuard{guard.text, [program, base](const activity::Token& token) {
                                          asl::Environment environment(*base);
                                          environment.set_local("token",
                                                                asl::Value{token.value});
                                          asl::Interpreter interpreter;
                                          std::optional<asl::Value> result =
                                              interpreter.execute(*program, environment);
                                          return result.has_value() && result->as_bool();
                                        }});
  }
  return ok;
}

}  // namespace umlsoc::codegen
