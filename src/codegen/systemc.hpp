// SystemC-style C++ module text generation from hardware PSM components.
// The emitted code targets umlsoc::sim (our SystemC-kernel substitute);
// see codegen/hwmodel.hpp for the runtime-interpreted equivalent used by
// the end-to-end experiments.
#pragma once

#include <string>

#include "soc/profile.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::codegen {

/// Emits a C++ class: one sim::Signal member per UML port, plain members
/// with reset values per «Register» property, read_reg/write_reg decode
/// methods honoring access modes, and a reset() method.
[[nodiscard]] std::string generate_sim_module(const uml::Class& module,
                                              const soc::SocProfile& profile,
                                              support::DiagnosticSink& sink);

/// Structural sanity check over generated C++: balanced braces/parens and
/// the presence of the class declaration.
bool check_cpp_structure(const std::string& text, support::DiagnosticSink& sink);

}  // namespace umlsoc::codegen
