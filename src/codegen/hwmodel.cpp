#include "codegen/hwmodel.hpp"

namespace umlsoc::codegen {

HwModuleSim::HwModuleSim(const uml::Class& psm_module, const soc::SocProfile& profile,
                         support::DiagnosticSink& sink)
    : name_(psm_module.name()) {
  std::uint64_t next_free = 0;
  for (const auto& property : psm_module.properties()) {
    if (!property->has_stereotype(*profile.hw_register)) continue;
    Register reg;
    reg.name = property->name();
    std::optional<std::uint64_t> address = profile.register_address(*property);
    if (!address.has_value()) {
      sink.warning(property->qualified_name(), "register address missing; auto-assigned");
      address = next_free;
    }
    next_free = std::max(next_free, *address + 4);
    const std::string access = profile.register_access(*property);
    reg.readable = access.find('r') != std::string::npos;
    reg.writable = access.find('w') != std::string::npos;
    reg.reset =
        soc::parse_address(property->tagged_value(*profile.hw_register, "reset")).value_or(0);
    reg.value = reg.reset;
    if (!registers_.emplace(*address, std::move(reg)).second) {
      sink.error(property->qualified_name(), "duplicate register address in module");
    }
  }
}

std::uint64_t HwModuleSim::read_register(std::uint64_t offset) {
  ++bus_reads_;
  auto it = registers_.find(offset);
  if (it == registers_.end() || !it->second.readable) return 0;
  dispatch("read_" + it->second.name, static_cast<std::int64_t>(it->second.value));
  return it->second.value;
}

void HwModuleSim::write_register(std::uint64_t offset, std::uint64_t value) {
  ++bus_writes_;
  auto it = registers_.find(offset);
  if (it == registers_.end() || !it->second.writable) return;
  it->second.value = value;
  dispatch("write_" + it->second.name, static_cast<std::int64_t>(value));
}

sim::BusStatus HwModuleSim::read_register_checked(std::uint64_t offset, std::uint64_t& value) {
  auto it = registers_.find(offset);
  if (it == registers_.end() || !it->second.readable) {
    value = 0;
    ++bus_reads_;
    return sim::BusStatus::kError;
  }
  value = read_register(offset);
  return sim::BusStatus::kOk;
}

sim::BusStatus HwModuleSim::write_register_checked(std::uint64_t offset, std::uint64_t value) {
  auto it = registers_.find(offset);
  if (it == registers_.end() || !it->second.writable) {
    ++bus_writes_;
    return sim::BusStatus::kError;
  }
  write_register(offset, value);
  return sim::BusStatus::kOk;
}

std::uint64_t HwModuleSim::peek(const std::string& register_name) const {
  for (const auto& [offset, reg] : registers_) {
    if (reg.name == register_name) return reg.value;
  }
  return 0;
}

void HwModuleSim::poke(const std::string& register_name, std::uint64_t value) {
  for (auto& [offset, reg] : registers_) {
    if (reg.name == register_name) {
      reg.value = value;
      return;
    }
  }
}

void HwModuleSim::reset() {
  for (auto& [offset, reg] : registers_) reg.value = reg.reset;
  if (behavior_ != nullptr) {
    behavior_ = std::make_unique<statechart::StateMachineInstance>(behavior_->machine());
    behavior_->set_trace_enabled(false);
    sync_to_behavior();
    behavior_->start();
    sync_from_behavior();
  }
}

void HwModuleSim::map_onto(sim::MemoryMappedBus& bus, std::uint64_t base) {
  std::uint64_t span = 0;
  for (const auto& [offset, reg] : registers_) span = std::max(span, offset + 4);
  if (span == 0) span = 4;
  bus.map_device(
      name_, base, span,
      [this, base](std::uint64_t address) { return read_register(address - base); },
      [this, base](std::uint64_t address, std::uint64_t value) {
        write_register(address - base, value);
      });
}

void HwModuleSim::attach_behavior(const statechart::StateMachine& machine) {
  behavior_ = std::make_unique<statechart::StateMachineInstance>(machine);
  behavior_->set_trace_enabled(false);
  sync_to_behavior();
  behavior_->start();
  sync_from_behavior();
}

void HwModuleSim::sync_to_behavior() {
  for (const auto& [offset, reg] : registers_) {
    behavior_->set_variable(reg.name, static_cast<std::int64_t>(reg.value));
  }
}

void HwModuleSim::sync_from_behavior() {
  for (auto& [offset, reg] : registers_) {
    reg.value = static_cast<std::uint64_t>(behavior_->variable(reg.name));
  }
}

void HwModuleSim::dispatch(const std::string& event, std::int64_t data) {
  if (behavior_ == nullptr) return;
  sync_to_behavior();
  behavior_->dispatch(statechart::Event{event, data});
  sync_from_behavior();
}

std::vector<std::pair<std::string, std::uint64_t>> HwModuleSim::capture_values() const {
  std::vector<std::pair<std::string, std::uint64_t>> values;
  values.reserve(registers_.size() + 2);
  for (const auto& [offset, reg] : registers_) values.emplace_back(reg.name, reg.value);
  values.emplace_back("#bus-reads", bus_reads_);
  values.emplace_back("#bus-writes", bus_writes_);
  return values;
}

bool HwModuleSim::restore_values(const std::vector<std::pair<std::string, std::uint64_t>>& values,
                                 support::DiagnosticSink& sink) {
  bool ok = true;
  for (const auto& [key, value] : values) {
    if (key == "#bus-reads") {
      bus_reads_ = value;
      continue;
    }
    if (key == "#bus-writes") {
      bus_writes_ = value;
      continue;
    }
    bool found = false;
    for (auto& [offset, reg] : registers_) {
      if (reg.name == key) {
        reg.value = value;
        found = true;
        break;
      }
    }
    if (!found) {
      sink.error("hw-module " + name_, "snapshot names unknown register '" + key + "'");
      ok = false;
    }
  }
  if (ok && behavior_ != nullptr) sync_to_behavior();
  return ok;
}

}  // namespace umlsoc::codegen
