#include "codegen/plantuml.hpp"

#include "uml/instance.hpp"
#include "uml/query.hpp"

namespace umlsoc::codegen {

namespace {

std::string stereotype_suffix(const uml::Element& element) {
  std::string out;
  for (const uml::StereotypeApplication& application : element.stereotype_applications()) {
    out += " <<" + application.stereotype->name() + ">>";
  }
  return out;
}

std::string type_suffix(const uml::Classifier* type) {
  return type == nullptr ? std::string{} : " : " + type->name();
}

void emit_class_body(const uml::Class& cls, std::string& out) {
  for (const auto& property : cls.properties()) {
    out += "  " + property->name() + type_suffix(property->type());
    if (!property->default_value().empty()) out += " = " + property->default_value();
    out += "\n";
  }
  for (const auto& operation : cls.operations()) {
    out += "  " + operation->name() + "(";
    bool first = true;
    for (const auto& parameter : operation->parameters()) {
      if (parameter->direction() == uml::ParameterDirection::kReturn) continue;
      if (!first) out += ", ";
      out += parameter->name() + type_suffix(parameter->type());
      first = false;
    }
    out += ")";
    if (operation->return_type() != nullptr) out += " : " + operation->return_type()->name();
    out += "\n";
  }
}

}  // namespace

std::string to_plantuml_class_diagram(uml::Package& root) {
  std::string out = "@startuml\n";

  for (uml::Class* cls : uml::collect<uml::Class>(root)) {
    out += cls->is_abstract() ? "abstract class " : "class ";
    out += cls->name() + stereotype_suffix(*cls) + " {\n";
    emit_class_body(*cls, out);
    out += "}\n";
  }
  for (uml::Interface* interface : uml::collect<uml::Interface>(root)) {
    out += "interface " + interface->name() + " {\n";
    for (const auto& operation : interface->operations()) {
      out += "  " + operation->name() + "()\n";
    }
    out += "}\n";
  }
  for (uml::Enumeration* enumeration : uml::collect<uml::Enumeration>(root)) {
    out += "enum " + enumeration->name() + " {\n";
    for (const std::string& literal : enumeration->literals()) out += "  " + literal + "\n";
    out += "}\n";
  }

  for (uml::Class* cls : uml::collect<uml::Class>(root)) {
    for (uml::Classifier* general : cls->generals()) {
      out += general->name() + " <|-- " + cls->name() + "\n";
    }
    for (uml::Interface* contract : cls->interface_realizations()) {
      out += contract->name() + " <|.. " + cls->name() + "\n";
    }
  }
  for (uml::Association* association : uml::collect<uml::Association>(root)) {
    if (!association->is_binary()) continue;
    const uml::Property& a = *association->ends()[0];
    const uml::Property& b = *association->ends()[1];
    if (a.type() == nullptr || b.type() == nullptr) continue;
    out += a.type()->name() + " \"" + a.multiplicity().str() + "\" -- \"" +
           b.multiplicity().str() + "\" " + b.type()->name() + " : " + association->name() +
           "\n";
  }
  out += "@enduml\n";
  return out;
}

std::string to_plantuml_object_diagram(uml::Package& root) {
  std::string out = "@startuml\n";
  std::vector<uml::InstanceSpecification*> instances =
      uml::collect<uml::InstanceSpecification>(root);
  for (uml::InstanceSpecification* instance : instances) {
    out += "object " + instance->name();
    if (instance->classifier() != nullptr) {
      out += " : " + instance->classifier()->name();
    }
    out += " {\n";
    for (const uml::Slot& slot : instance->slots()) {
      if (slot.defining_feature == nullptr || slot.reference != nullptr) continue;
      out += "  " + slot.defining_feature->name() + " = " + slot.value + "\n";
    }
    out += "}\n";
  }
  for (uml::InstanceSpecification* instance : instances) {
    for (const uml::Slot& slot : instance->slots()) {
      if (slot.reference != nullptr && slot.defining_feature != nullptr) {
        out += instance->name() + " --> " + slot.reference->name() + " : " +
               slot.defining_feature->name() + "\n";
      }
    }
  }
  out += "@enduml\n";
  return out;
}

std::string to_plantuml_component_diagram(uml::Package& root) {
  std::string out = "@startuml\n";
  for (uml::Component* component : uml::collect<uml::Component>(root)) {
    out += "component " + component->name() + stereotype_suffix(*component) + "\n";
    for (uml::Interface* provided : component->provided()) {
      out += "interface " + provided->name() + "\n";
      out += provided->name() + " - " + component->name() + "\n";
    }
    for (uml::Interface* required : component->required()) {
      out += "interface " + required->name() + "\n";
      out += component->name() + " ..> " + required->name() + " : use\n";
    }
  }
  out += "@enduml\n";
  return out;
}

std::string to_plantuml_structure_diagram(const uml::Class& cls) {
  std::string out = "@startuml\ncomponent " + cls.name() + " {\n";
  for (const auto& part : cls.properties()) {
    if (!part->is_part()) continue;
    out += "  component " + part->name();
    if (part->type() != nullptr) out += " : " + part->type()->name();
    out += "\n";
  }
  out += "}\n";
  for (const auto& port : cls.ports()) {
    out += "portin \"" + port->name() + "\" as " + cls.name() + "_" + port->name() + "\n";
  }
  for (const auto& connector : cls.connectors()) {
    if (connector->ends().size() < 2) continue;
    auto end_name = [&](const uml::ConnectorEnd& end) -> std::string {
      if (end.part != nullptr) return end.part->name();
      if (end.port != nullptr) return cls.name() + "_" + end.port->name();
      return "?";
    };
    out += end_name(connector->ends()[0]) + " -- " + end_name(connector->ends()[1]) + " : " +
           connector->name() + "\n";
  }
  out += "@enduml\n";
  return out;
}

namespace {

void emit_region(const statechart::Region& region, std::string& out, int depth);

void emit_vertex(const statechart::Vertex& vertex, std::string& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  using statechart::VertexKind;
  switch (vertex.vertex_kind()) {
    case VertexKind::kState: {
      const auto& state = static_cast<const statechart::State&>(vertex);
      if (state.is_composite()) {
        out += pad + "state " + state.name() + " {\n";
        bool first = true;
        for (const auto& region : state.regions()) {
          if (!first) out += pad + "  --\n";
          emit_region(*region, out, depth + 1);
          first = false;
        }
        out += pad + "}\n";
      } else {
        out += pad + "state " + state.name() + "\n";
      }
      if (!state.entry().text.empty()) {
        out += pad + state.name() + " : entry / " + state.entry().text + "\n";
      }
      if (!state.exit_behavior().text.empty()) {
        out += pad + state.name() + " : exit / " + state.exit_behavior().text + "\n";
      }
      break;
    }
    case VertexKind::kChoice:
      out += pad + "state " + vertex.name() + " <<choice>>\n";
      break;
    case VertexKind::kJunction:
      out += pad + "state " + vertex.name() + " <<junction>>\n";
      break;
    case VertexKind::kShallowHistory:
    case VertexKind::kDeepHistory:
    case VertexKind::kInitial:
    case VertexKind::kFinal:
    case VertexKind::kTerminate:
      break;  // Rendered implicitly via transition endpoints.
  }
}

std::string vertex_ref(const statechart::Vertex& vertex) {
  using statechart::VertexKind;
  switch (vertex.vertex_kind()) {
    case VertexKind::kInitial:
      return "[*]";
    case VertexKind::kFinal:
    case VertexKind::kTerminate:
      return "[*]";
    case VertexKind::kShallowHistory:
      return vertex.container()->owner_state() != nullptr
                 ? vertex.container()->owner_state()->name() + "[H]"
                 : "[H]";
    case VertexKind::kDeepHistory:
      return vertex.container()->owner_state() != nullptr
                 ? vertex.container()->owner_state()->name() + "[H*]"
                 : "[H*]";
    default:
      return vertex.name();
  }
}

void emit_region(const statechart::Region& region, std::string& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const auto& vertex : region.vertices()) emit_vertex(*vertex, out, depth);
  for (const auto& transition : region.transitions()) {
    out += pad + vertex_ref(transition->source()) + " --> " +
           vertex_ref(transition->target());
    std::string label;
    if (!transition->trigger().empty()) label += transition->trigger();
    if (!transition->guard().text.empty()) label += " [" + transition->guard().text + "]";
    if (!transition->effect().text.empty()) label += " / " + transition->effect().text;
    if (!label.empty()) out += " : " + label;
    out += "\n";
  }
}

}  // namespace

std::string to_plantuml_statechart(const statechart::StateMachine& machine) {
  std::string out = "@startuml\ntitle " + machine.name() + "\n";
  emit_region(machine.top(), out, 0);
  out += "@enduml\n";
  return out;
}

std::string to_plantuml_activity(const activity::Activity& activity) {
  // PlantUML's structured activity syntax cannot express arbitrary graphs;
  // emit the general graph form with explicit labels.
  std::string out = "@startuml\ntitle " + activity.name() + "\n";
  auto node_ref = [](const activity::ActivityNode& node) -> std::string {
    using activity::NodeKind;
    switch (node.node_kind()) {
      case NodeKind::kInitial:
      case NodeKind::kActivityFinal:
        return "(*)";
      case NodeKind::kFlowFinal:
        return "(*)";
      default:
        return "\"" + node.name() + "\"";
    }
  };
  for (const auto& edge : activity.edges()) {
    out += node_ref(edge->source()) + " --> ";
    if (!edge->guard().text.empty()) out += "[" + edge->guard().text + "] ";
    out += node_ref(edge->target()) + "\n";
  }
  out += "@enduml\n";
  return out;
}

namespace {

void emit_fragments(const std::vector<std::unique_ptr<interaction::Fragment>>& fragments,
                    std::string& out, int depth);

void emit_fragment(const interaction::Fragment& fragment, std::string& out, int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (fragment.fragment_kind() == interaction::FragmentKind::kMessage) {
    const char* arrow = fragment.message_kind() == interaction::MessageKind::kReply
                            ? " --> "
                            : fragment.message_kind() == interaction::MessageKind::kSync
                                  ? " -> "
                                  : " ->> ";
    out += pad + fragment.from()->name() + arrow + fragment.to()->name() + " : " +
           fragment.message_name() + "\n";
    return;
  }
  const std::string op(interaction::to_string(fragment.combined_operator()));
  bool first = true;
  for (const auto& operand : fragment.operands()) {
    if (first) {
      out += pad + op;
      if (!operand->guard().empty()) out += " " + operand->guard();
      out += "\n";
    } else {
      out += pad + "else " + operand->guard() + "\n";
    }
    emit_fragments(operand->fragments(), out, depth + 1);
    first = false;
  }
  out += pad + "end\n";
}

void emit_fragments(const std::vector<std::unique_ptr<interaction::Fragment>>& fragments,
                    std::string& out, int depth) {
  for (const auto& fragment : fragments) emit_fragment(*fragment, out, depth);
}

}  // namespace

std::string to_plantuml_sequence(const interaction::Interaction& interaction) {
  std::string out = "@startuml\ntitle " + interaction.name() + "\n";
  for (const auto& lifeline : interaction.lifelines()) {
    out += "participant " + lifeline->name() + "\n";
  }
  emit_fragments(interaction.fragments(), out, 0);
  out += "@enduml\n";
  return out;
}

std::string to_plantuml_use_cases(const usecase::UseCaseModel& model) {
  std::string out = "@startuml\nleft to right direction\n";
  for (const auto& actor : model.actors()) {
    out += "actor " + actor->name() + "\n";
    for (const usecase::Actor* general : actor->generals()) {
      out += general->name() + " <|-- " + actor->name() + "\n";
    }
  }
  out += "rectangle " + model.system_name() + " {\n";
  for (const auto& use_case : model.use_cases()) {
    out += "  usecase \"" + use_case->name() + "\" as " + use_case->name() + "\n";
  }
  out += "}\n";
  for (const auto& use_case : model.use_cases()) {
    for (const usecase::Actor* actor : use_case->actors()) {
      out += actor->name() + " --> " + use_case->name() + "\n";
    }
    for (const usecase::UseCase* included : use_case->includes()) {
      out += use_case->name() + " ..> " + included->name() + " : <<include>>\n";
    }
    for (const usecase::UseCase::Extend& extend : use_case->extends()) {
      out += use_case->name() + " ..> " + extend.extended->name() + " : <<extend>>\n";
    }
  }
  out += "@enduml\n";
  return out;
}

}  // namespace umlsoc::codegen
