// Binding ASL text to executable behavior: the last mile of the xUML story
// (paper §3: ASL "closes the last gap to complete system specification").
// After binding, a state machine or activity whose guards/effects/actions
// were authored purely as model text executes with no C++ lambdas at all.
//
// State machines — for every non-empty text:
//   * transition guards become ASL boolean expressions; the event payload is
//     visible as `data` and the event name as `event` (string),
//   * transition effects and state entry/exit/do behaviors become ASL
//     statement programs with the same event locals (entry/exit see data 0),
//   * all programs execute against one shared ObjectContext (`self`), and
//     can additionally read/write the instance's variables via the
//     `var("name")` / `set_var("name", v)` operations.
//
// Activities:
//   * action scripts (ActivityNode::script) run with local `input` (first
//     consumed token's value); `output := expr;` or `return expr;` sets the
//     produced token value (default: input),
//   * edge guards become ASL boolean expressions over local `token`.
#pragma once

#include "activity/model.hpp"
#include "asl/interpreter.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::codegen {

/// Compiles and installs every textual behavior of `machine` against
/// `context`. Returns false (with per-element diagnostics) when any text
/// fails to parse; successfully parsed texts are still bound.
bool bind_statechart_asl(statechart::StateMachine& machine, asl::ObjectContext& context,
                         support::DiagnosticSink& sink);

/// Same for activities: action scripts and edge guard texts.
bool bind_activity_asl(activity::Activity& activity, asl::ObjectContext& context,
                       support::DiagnosticSink& sink);

}  // namespace umlsoc::codegen
