// Software-side runtime: an ASL ObjectContext whose bus_read/bus_write
// operations drive a sim::MemoryMappedBus synchronously. Together with
// HwModuleSim this closes the executable MDA loop: generated driver code
// (ASL bodies on the SW PSM) really talks to generated hardware models over
// the simulated bus.
//
// Transactions go through a sim::BusMasterPort, so a RetryPolicy gives the
// driver timeout supervision and retry/backoff against injected bus faults.
// An optional error sink (a statechart instance) receives the port's
// notices on its error-event channel — "bus_timeout" / "bus_error" /
// "bus_failed" as error events, "bus_recovered" when a retry succeeds — so
// a model's declared error/recovery states are driven by real fault
// injections.
#pragma once

#include <cstdint>
#include <map>

#include "asl/interpreter.hpp"
#include "sim/bus.hpp"
#include "statechart/engine.hpp"

namespace umlsoc::codegen {

class BusMasterContext : public asl::ObjectContext {
 public:
  BusMasterContext(sim::Kernel& kernel, sim::MemoryMappedBus& bus,
                   sim::RetryPolicy policy = {});

  asl::Value get_attribute(const std::string& name) override;
  void set_attribute(const std::string& name, asl::Value value) override;

  /// Supports "bus_read(addr)" and "bus_write(addr, value)"; both block
  /// (advance simulation time) until the bus transaction completes.
  asl::Value call(const std::string& operation,
                  const std::vector<asl::Value>& arguments) override;

  void send_signal(const std::string& target, const std::string& signal,
                   const std::vector<asl::Value>& arguments) override;

  struct SentSignal {
    std::string target;
    std::string signal;
    std::vector<asl::Value> arguments;
  };
  [[nodiscard]] const std::vector<SentSignal>& sent_signals() const { return sent_signals_; }

  /// Runs an ASL source (a driver operation body) against this context.
  std::optional<asl::Value> run(const std::string& asl_source);

  /// Statechart to drive with bus fault/recovery events (may be null).
  void set_error_sink(statechart::Engine* sink);

  /// Status of the most recent completed transaction.
  [[nodiscard]] sim::BusStatus last_status() const { return last_status_; }
  [[nodiscard]] const sim::BusMasterPort& port() const { return port_; }
  [[nodiscard]] sim::BusMasterPort& port() { return port_; }

 private:
  /// Advances simulation until `done` turns true (bounded; throws on hang,
  /// including the kernel's quiescence report in the message).
  void wait_for(const bool& done);
  void on_notice(const sim::BusMasterPort::Notice& notice);

  sim::Kernel& kernel_;
  sim::BusMasterPort port_;
  statechart::Engine* error_sink_ = nullptr;
  sim::BusStatus last_status_ = sim::BusStatus::kOk;
  std::map<std::string, asl::Value> attributes_;
  std::vector<SentSignal> sent_signals_;
};

}  // namespace umlsoc::codegen
