// Software-side runtime: an ASL ObjectContext whose bus_read/bus_write
// operations drive a sim::MemoryMappedBus synchronously. Together with
// HwModuleSim this closes the executable MDA loop: generated driver code
// (ASL bodies on the SW PSM) really talks to generated hardware models over
// the simulated bus.
#pragma once

#include <cstdint>
#include <map>

#include "asl/interpreter.hpp"
#include "sim/bus.hpp"

namespace umlsoc::codegen {

class BusMasterContext : public asl::ObjectContext {
 public:
  BusMasterContext(sim::Kernel& kernel, sim::MemoryMappedBus& bus)
      : kernel_(kernel), bus_(bus) {}

  asl::Value get_attribute(const std::string& name) override;
  void set_attribute(const std::string& name, asl::Value value) override;

  /// Supports "bus_read(addr)" and "bus_write(addr, value)"; both block
  /// (advance simulation time) until the bus transaction completes.
  asl::Value call(const std::string& operation,
                  const std::vector<asl::Value>& arguments) override;

  void send_signal(const std::string& target, const std::string& signal,
                   const std::vector<asl::Value>& arguments) override;

  struct SentSignal {
    std::string target;
    std::string signal;
    std::vector<asl::Value> arguments;
  };
  [[nodiscard]] const std::vector<SentSignal>& sent_signals() const { return sent_signals_; }

  /// Runs an ASL source (a driver operation body) against this context.
  std::optional<asl::Value> run(const std::string& asl_source);

 private:
  /// Advances simulation until `done` turns true (bounded; throws on hang).
  void wait_for(const bool& done);

  sim::Kernel& kernel_;
  sim::MemoryMappedBus& bus_;
  std::map<std::string, asl::Value> attributes_;
  std::vector<SentSignal> sent_signals_;
};

}  // namespace umlsoc::codegen
