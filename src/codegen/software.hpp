// Software C++ code generation from SW-platform PSM classes, including the
// translation of ASL operation bodies into C++ statements (the xUML
// "complete code generation" step of the MDA flow, paper §3).
#pragma once

#include <string>

#include "support/diagnostics.hpp"
#include "uml/types.hpp"

namespace umlsoc::codegen {

/// Translates an ASL program into C++ statement text (":=" to "=", "self."
/// to "this->", "send T.sig(a)" to "send_signal(\"T\", \"sig\", {a})").
/// Returns empty text (with diagnostics) on syntax errors.
[[nodiscard]] std::string translate_asl_to_cpp(const std::string& asl_source,
                                               support::DiagnosticSink& sink);

/// Emits a C++ class for one SW PSM class: typed fields from properties
/// (Integer/Word/Byte/Boolean/String map to fixed-width C++ types), method
/// definitions with translated ASL bodies, and task metadata as comments.
[[nodiscard]] std::string generate_sw_class(const uml::Class& cls,
                                            support::DiagnosticSink& sink);

}  // namespace umlsoc::codegen
