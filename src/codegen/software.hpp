// Software C++ code generation from SW-platform PSM classes, including the
// translation of ASL operation bodies into C++ statements (the xUML
// "complete code generation" step of the MDA flow, paper §3).
#pragma once

#include <string>

#include "statechart/compile.hpp"
#include "support/diagnostics.hpp"
#include "uml/types.hpp"

namespace umlsoc::codegen {

/// Translates an ASL program into C++ statement text (":=" to "=", "self."
/// to "this->", "send T.sig(a)" to "send_signal(\"T\", \"sig\", {a})").
/// Returns empty text (with diagnostics) on syntax errors.
[[nodiscard]] std::string translate_asl_to_cpp(const std::string& asl_source,
                                               support::DiagnosticSink& sink);

/// Emits a C++ class for one SW PSM class: typed fields from properties
/// (Integer/Word/Byte/Boolean/String map to fixed-width C++ types), method
/// definitions with translated ASL bodies, and task metadata as comments.
[[nodiscard]] std::string generate_sw_class(const uml::Class& cls,
                                            support::DiagnosticSink& sink);

/// Emits the AOT plan tables of a compiled statechart as self-contained C++
/// static data (constexpr arrays): step programs, candidate rows with claim
/// masks, plan index, interned configurations and the event-name table.
/// This is the software-platform twin of the RTL case-table generator — an
/// embedded runtime executes the tables directly, with guards and effects
/// linked by transition index. `identifier` prefixes every emitted symbol
/// and must be a valid C++ identifier stem.
[[nodiscard]] std::string generate_statechart_tables(
    const statechart::CompiledMachine& compiled, const std::string& identifier);

}  // namespace umlsoc::codegen
