// RTL (Verilog-2001 subset) code generation from hardware PSM elements —
// the step the paper calls out as undemonstrated: "the application of such
// code generation for hardware descriptions still needs to be demonstrated"
// (§3). Generates synthesizable-style register files from «HwModule»
// components and Moore FSMs from flattened state machines.
#pragma once

#include <string>

#include "soc/profile.hpp"
#include "statechart/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::codegen {

struct RtlOptions {
  int data_width = 32;
  /// Emit the generated register-file bus (reg_addr/wdata/wen/rdata).
  bool include_register_file = true;
};

/// Emits one Verilog module for a «HwModule» class/component: ports from
/// the UML ports, a register file from «Register» properties (reset values
/// from the "reset" tag, write/read decode honoring the access mode).
[[nodiscard]] std::string generate_rtl_module(const uml::Class& module,
                                              const soc::SocProfile& profile,
                                              support::DiagnosticSink& sink,
                                              const RtlOptions& options = {});

/// Emits a Moore FSM module from a flattenable state machine: one input
/// wire per trigger, a state register, and a case-based transition block.
/// Guards/effects appear as comments (they are not synthesizable as text).
[[nodiscard]] std::string generate_rtl_fsm(const statechart::StateMachine& machine,
                                           support::DiagnosticSink& sink);

/// Emits the structural top: one instantiation per composite part, with
/// connector-driven port wiring.
[[nodiscard]] std::string generate_rtl_top(const uml::Class& top,
                                           const soc::SocProfile& profile,
                                           support::DiagnosticSink& sink);

/// Emits a self-checking testbench for a generated register-file module:
/// clock/reset generation, a write_reg/read_check task pair, one write +
/// read-back check per rw register (reset-value check for r registers).
[[nodiscard]] std::string generate_rtl_testbench(const uml::Class& module,
                                                 const soc::SocProfile& profile,
                                                 support::DiagnosticSink& sink);

/// Lightweight structural syntax check over generated text: balanced
/// module/endmodule, begin/end, case/endcase pairs. Reports imbalances.
bool check_rtl_structure(const std::string& text, support::DiagnosticSink& sink);

}  // namespace umlsoc::codegen
