#include "codegen/swruntime.hpp"

#include <stdexcept>

namespace umlsoc::codegen {

BusMasterContext::BusMasterContext(sim::Kernel& kernel, sim::MemoryMappedBus& bus,
                                   sim::RetryPolicy policy)
    : kernel_(kernel), port_(kernel, bus, "sw-driver", policy) {}

void BusMasterContext::set_error_sink(statechart::Engine* sink) {
  error_sink_ = sink;
  if (sink == nullptr) {
    port_.set_listener(nullptr);
    return;
  }
  port_.set_listener([this](const sim::BusMasterPort::Notice& notice) { on_notice(notice); });
}

void BusMasterContext::on_notice(const sim::BusMasterPort::Notice& notice) {
  using Kind = sim::BusMasterPort::Notice::Kind;
  const auto address = static_cast<std::int64_t>(notice.address);
  switch (notice.kind) {
    case Kind::kTimeout:
      error_sink_->dispatch_error(statechart::Event{"bus_timeout", address});
      break;
    case Kind::kExhausted:
      error_sink_->dispatch_error(statechart::Event{"bus_failed", address});
      break;
    case Kind::kCompleted:
      if (notice.status == sim::BusStatus::kError) {
        error_sink_->dispatch_error(statechart::Event{"bus_error", address});
      } else if (notice.attempt > 0) {
        error_sink_->dispatch(statechart::Event{"bus_recovered", address});
      }
      break;
    case Kind::kRetry:
      break;  // The retry outcome (recovered/exhausted) is what models care about.
  }
}

asl::Value BusMasterContext::get_attribute(const std::string& name) {
  auto it = attributes_.find(name);
  return it == attributes_.end() ? asl::Value{} : it->second;
}

void BusMasterContext::set_attribute(const std::string& name, asl::Value value) {
  attributes_[name] = std::move(value);
}

void BusMasterContext::wait_for(const bool& done) {
  // The bus completion is scheduled at now + latency; step simulated time
  // forward in small quanta until it lands (clocks may keep the queue busy
  // forever, so "run to idle" is not an option). The deadline accumulates
  // independently of kernel.now(), which only advances when events run.
  sim::SimTime deadline = kernel_.now();
  for (int i = 0; i < 1000000 && !done; ++i) {
    deadline = deadline + sim::SimTime::ns(1);
    kernel_.run(deadline);
    if (kernel_.idle() && !done) break;
  }
  if (!done) {
    std::string message = "BusMasterContext: bus transaction never completed";
    const sim::QuiescenceReport& report = kernel_.quiescence_report();
    if (report.deadlocked()) message += " (" + report.str() + ")";
    throw std::runtime_error(message);
  }
}

asl::Value BusMasterContext::call(const std::string& operation,
                                  const std::vector<asl::Value>& arguments) {
  if (operation == "bus_read") {
    if (arguments.size() != 1) throw std::runtime_error("bus_read expects 1 argument");
    bool done = false;
    std::uint64_t result = 0;
    port_.read(static_cast<std::uint64_t>(arguments[0].as_int()),
               [this, &done, &result](sim::BusStatus status, std::uint64_t value) {
                 last_status_ = status;
                 result = value;
                 done = true;
               });
    wait_for(done);
    return asl::Value{static_cast<std::int64_t>(result)};
  }
  if (operation == "bus_write") {
    if (arguments.size() != 2) throw std::runtime_error("bus_write expects 2 arguments");
    bool done = false;
    port_.write(static_cast<std::uint64_t>(arguments[0].as_int()),
                static_cast<std::uint64_t>(arguments[1].as_int()),
                [this, &done](sim::BusStatus status) {
                  last_status_ = status;
                  done = true;
                });
    wait_for(done);
    return asl::Value{};
  }
  throw std::runtime_error("BusMasterContext: unknown operation '" + operation + "'");
}

void BusMasterContext::send_signal(const std::string& target, const std::string& signal,
                                   const std::vector<asl::Value>& arguments) {
  sent_signals_.push_back(SentSignal{target, signal, arguments});
}

std::optional<asl::Value> BusMasterContext::run(const std::string& asl_source) {
  return asl::run_asl(asl_source, *this);
}

}  // namespace umlsoc::codegen
