// Runtime-interpreted hardware module: the executable twin of the text
// generators. A HwModuleSim is built directly from a hardware-PSM class —
// register file with addresses/access/reset from the «Register» tags — and
// can be mapped onto a sim::MemoryMappedBus and driven by an attached state
// machine. This realizes the paper's "early prototyping and inherent
// software simulation capabilities" (§4) without a C++ compile step.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/bus.hpp"
#include "soc/profile.hpp"
#include "statechart/interpreter.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::codegen {

class HwModuleSim {
 public:
  /// Builds the register file from `psm_module`'s «Register» properties.
  HwModuleSim(const uml::Class& psm_module, const soc::SocProfile& profile,
              support::DiagnosticSink& sink);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Local (bus-relative) register access honoring access modes: reading a
  /// write-only register returns 0; writing a read-only register is ignored.
  [[nodiscard]] std::uint64_t read_register(std::uint64_t offset);
  void write_register(std::uint64_t offset, std::uint64_t value);

  /// Status-carrying variants mirroring the generated read_reg_checked /
  /// write_reg_checked: an unknown offset or access violation reports
  /// BusStatus::kError instead of a silent 0 / ignored write.
  sim::BusStatus read_register_checked(std::uint64_t offset, std::uint64_t& value);
  sim::BusStatus write_register_checked(std::uint64_t offset, std::uint64_t value);

  /// Register value by name (test/introspection path, ignores access mode).
  [[nodiscard]] std::uint64_t peek(const std::string& register_name) const;
  void poke(const std::string& register_name, std::uint64_t value);

  /// Restores every register to its reset tag value.
  void reset();

  /// Maps this module at `base` on the bus.
  void map_onto(sim::MemoryMappedBus& bus, std::uint64_t base);

  /// Attaches a behavior machine. Bus writes to register R become events
  /// "write_R" (data = value); reads become "read_R". Machine variables
  /// named like registers are synchronized both ways around each dispatch,
  /// so transition effects can update registers.
  void attach_behavior(const statechart::StateMachine& machine);
  [[nodiscard]] statechart::StateMachineInstance* behavior() { return behavior_.get(); }

  [[nodiscard]] std::uint64_t bus_reads() const { return bus_reads_; }
  [[nodiscard]] std::uint64_t bus_writes() const { return bus_writes_; }

  /// Flat checkpoint view for the replay module's generic value banks:
  /// every register (key = register name, ascending offset order) plus the
  /// access counters under the reserved keys "#bus-reads" / "#bus-writes"
  /// ('#' cannot occur in a model property name). The attached behavior
  /// machine is snapshotted separately through its StateMachineInstance.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> capture_values() const;

  /// Restores a capture_values() view. Unknown keys report through `sink`
  /// and fail the restore (registers already matched stay written — callers
  /// treat a failed restore as fatal).
  bool restore_values(const std::vector<std::pair<std::string, std::uint64_t>>& values,
                      support::DiagnosticSink& sink);

 private:
  struct Register {
    std::string name;
    std::uint64_t value = 0;
    std::uint64_t reset = 0;
    bool readable = true;
    bool writable = true;
  };

  void sync_to_behavior();
  void sync_from_behavior();
  void dispatch(const std::string& event, std::int64_t data);

  std::string name_;
  std::map<std::uint64_t, Register> registers_;  // Keyed by offset.
  std::unique_ptr<statechart::StateMachineInstance> behavior_;
  std::uint64_t bus_reads_ = 0;
  std::uint64_t bus_writes_ = 0;
};

}  // namespace umlsoc::codegen
