#include "codegen/software.hpp"

#include <set>
#include <vector>

#include "asl/parser.hpp"
#include "support/strings.hpp"

namespace umlsoc::codegen {

namespace {

using asl::BinaryOp;
using asl::Expr;
using asl::ExprKind;
using asl::Stmt;
using asl::StmtKind;
using asl::UnaryOp;

std::string cpp_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* binary_op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return " + ";
    case BinaryOp::kSub: return " - ";
    case BinaryOp::kMul: return " * ";
    case BinaryOp::kDiv: return " / ";
    case BinaryOp::kMod: return " % ";
    case BinaryOp::kEq: return " == ";
    case BinaryOp::kNe: return " != ";
    case BinaryOp::kLt: return " < ";
    case BinaryOp::kLe: return " <= ";
    case BinaryOp::kGt: return " > ";
    case BinaryOp::kGe: return " >= ";
    case BinaryOp::kAnd: return " && ";
    case BinaryOp::kOr: return " || ";
  }
  return " ? ";
}

class CppPrinter {
 public:
  std::string expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        if (e.literal.is_string()) return "\"" + cpp_escape(e.literal.as_string()) + "\"";
        return e.literal.str();
      case ExprKind::kName:
        return e.name == "self" ? "(*this)" : e.name;
      case ExprKind::kSelfAttr:
        return "this->" + e.name;
      case ExprKind::kUnary:
        return (e.unary_op == UnaryOp::kNeg ? "-(" : "!(") + expr(*e.lhs) + ")";
      case ExprKind::kBinary:
        return "(" + expr(*e.lhs) + binary_op_text(e.binary_op) + expr(*e.rhs) + ")";
      case ExprKind::kCall: {
        std::string out = "this->" + e.name + "(";
        for (std::size_t i = 0; i < e.arguments.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr(*e.arguments[i]);
        }
        return out + ")";
      }
    }
    return "/*?*/";
  }

  void stmt(const Stmt& s, std::string& out, int depth) {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    switch (s.kind) {
      case StmtKind::kAssign:
        out += pad;
        if (s.self_target) {
          out += "this->" + s.target;
        } else {
          if (locals_.insert(s.target).second) out += "auto ";
          out += s.target;
        }
        out += " = " + expr(*s.value) + ";\n";
        break;
      case StmtKind::kExpr:
        out += pad + expr(*s.value) + ";\n";
        break;
      case StmtKind::kIf:
        out += pad + "if (" + expr(*s.value) + ") {\n";
        for (const auto& inner : s.body) stmt(*inner, out, depth + 1);
        if (!s.else_body.empty()) {
          out += pad + "} else {\n";
          for (const auto& inner : s.else_body) stmt(*inner, out, depth + 1);
        }
        out += pad + "}\n";
        break;
      case StmtKind::kWhile:
        out += pad + "while (" + expr(*s.value) + ") {\n";
        for (const auto& inner : s.body) stmt(*inner, out, depth + 1);
        out += pad + "}\n";
        break;
      case StmtKind::kReturn:
        out += pad + "return";
        if (s.value != nullptr) out += " " + expr(*s.value);
        out += ";\n";
        break;
      case StmtKind::kSend: {
        out += pad + "send_signal(\"" + s.send_target + "\", \"" + s.signal + "\", {";
        for (std::size_t i = 0; i < s.arguments.size(); ++i) {
          if (i != 0) out += ", ";
          out += expr(*s.arguments[i]);
        }
        out += "});\n";
        break;
      }
      case StmtKind::kBlock:
        out += pad + "{\n";
        for (const auto& inner : s.body) stmt(*inner, out, depth + 1);
        out += pad + "}\n";
        break;
    }
  }

 private:
  std::set<std::string> locals_;
};

std::string cpp_type_for(const uml::Classifier* type) {
  if (type == nullptr) return "std::int64_t";
  const std::string& name = type->name();
  if (name == "Boolean" || name == "Bit") return "bool";
  if (name == "Byte") return "std::uint8_t";
  if (name == "Word") return "std::uint32_t";
  if (name == "Integer") return "std::int32_t";
  if (name == "String") return "std::string";
  if (dynamic_cast<const uml::Enumeration*>(type) != nullptr) return type->name();
  if (dynamic_cast<const uml::Class*>(type) != nullptr) return type->name() + "*";
  return type->name();
}

}  // namespace

std::string translate_asl_to_cpp(const std::string& asl_source,
                                 support::DiagnosticSink& sink) {
  std::optional<asl::Program> program = asl::parse(asl_source, sink);
  if (!program.has_value()) return {};
  CppPrinter printer;
  std::string out;
  for (const auto& statement : program->statements) printer.stmt(*statement, out, 0);
  return out;
}

std::string generate_sw_class(const uml::Class& cls, support::DiagnosticSink& sink) {
  std::string out = "// Generated by umlsoc from " + cls.qualified_name() + "\n";
  out += "#include <cstdint>\n#include <string>\n\n";
  if (cls.is_active()) out += "// Active class: instantiate as a task.\n";
  out += "class " + cls.name();

  std::vector<std::string> bases;
  for (const uml::Classifier* general : cls.generals()) bases.push_back(general->name());
  for (const uml::Interface* contract : cls.interface_realizations()) {
    bases.push_back(contract->name());
  }
  if (!bases.empty()) {
    out += " : ";
    for (std::size_t i = 0; i < bases.size(); ++i) {
      if (i != 0) out += ", ";
      out += "public " + bases[i];
    }
  }
  out += " {\n public:\n";

  for (const auto& operation : cls.operations()) {
    const uml::Classifier* return_type = operation->return_type();
    out += "  " + (return_type != nullptr ? cpp_type_for(return_type) : std::string("void"));
    out += " " + operation->name() + "(";
    bool first = true;
    for (const auto& parameter : operation->parameters()) {
      if (parameter->direction() == uml::ParameterDirection::kReturn) continue;
      if (!first) out += ", ";
      out += cpp_type_for(parameter->type()) + " " + parameter->name();
      first = false;
    }
    out += ")";
    if (operation->is_query()) out += " const";
    if (operation->body().empty()) {
      out += ";\n";
      continue;
    }
    const std::size_t errors_before = sink.error_count();
    std::string body = translate_asl_to_cpp(operation->body(), sink);
    if (sink.error_count() != errors_before) {
      sink.warning(operation->qualified_name(), "ASL body not translatable; emitted as comment");
      out += " { /* " + operation->body() + " */ }\n";
      continue;
    }
    out += " {\n" + support::indent(body, 2) + "\n  }\n";
  }

  out += "\n private:\n";
  for (const auto& property : cls.properties()) {
    out += "  " + cpp_type_for(property->type()) + " " + property->name();
    if (!property->default_value().empty() && property->type() != nullptr &&
        dynamic_cast<const uml::Enumeration*>(property->type()) == nullptr) {
      out += " = " + property->default_value();
    } else {
      out += "{}";
    }
    out += ";\n";
  }
  out += "};\n";
  return out;
}

namespace {

const char* step_op_name(statechart::CompiledMachine::Op op) {
  using Op = statechart::CompiledMachine::Op;
  switch (op) {
    case Op::kRecordShallow: return "kRecordShallow";
    case Op::kRecordDeep: return "kRecordDeep";
    case Op::kExitState: return "kExitState";
    case Op::kClearFinal: return "kClearFinal";
    case Op::kEffect: return "kEffect";
    case Op::kEnterState: return "kEnterState";
    case Op::kEnterFinal: return "kEnterFinal";
    case Op::kTerminate: return "kTerminate";
  }
  return "kEffect";
}

}  // namespace

std::string generate_statechart_tables(const statechart::CompiledMachine& compiled,
                                       const std::string& identifier) {
  const statechart::StateMachine& machine = compiled.machine();
  std::string out;
  out += "// AOT statechart plan tables for '" + machine.name() + "' — generated, do not edit.\n";
  out += "// " + std::to_string(compiled.configuration_count()) + " configurations, " +
         std::to_string(compiled.plan_table().size()) + " plans, " +
         std::to_string(compiled.candidate_table().size()) + " candidates, " +
         std::to_string(compiled.step_table().size()) + " steps (" +
         std::to_string(compiled.table_bytes()) + " table bytes at compile time).\n";
  out += "// Guards/effects are linked by transition index; an embedded runtime\n";
  out += "// executes the step programs directly (see statechart/compile.hpp).\n";
  out += "#include <cstdint>\n\n";
  out += "namespace " + identifier + "_tables {\n\n";
  out += "enum class Op : std::uint8_t { kRecordShallow, kRecordDeep, kExitState,\n";
  out += "  kClearFinal, kEffect, kEnterState, kEnterFinal, kTerminate };\n";
  out += "struct Step { Op op; std::uint32_t a; std::uint32_t b; };\n";
  out += "struct Candidate { std::uint32_t transition, claim_offset, first_step, step_count,\n";
  out += "  entry_target, entry_scope; bool internal, has_guard, dynamic_entry; };\n";
  out += "struct Plan { std::uint32_t config, event, first_candidate, candidate_count;\n";
  out += "  bool defer_if_unfired; };\n";
  out += "struct Transition { std::uint32_t source, target, domain; bool internal, completion; };\n\n";
  out += "inline constexpr std::uint32_t kWords = " + std::to_string(compiled.words()) + ";\n";
  out += "inline constexpr std::uint32_t kVertices = " +
         std::to_string(compiled.vertex_count()) + ";\n";
  out += "inline constexpr std::uint32_t kRegions = " +
         std::to_string(compiled.region_count()) + ";\n\n";

  out += "inline constexpr const char* kEvents[] = {\n";
  for (std::size_t i = 0; i < compiled.event_count(); ++i) {
    out += "  \"" + cpp_escape(compiled.event_name(static_cast<std::uint32_t>(i))) + "\",\n";
  }
  out += "};\n\n";

  out += "inline constexpr Transition kTransitions[] = {\n";
  for (const auto& row : compiled.transition_table()) {
    out += "  {" + std::to_string(row.source) + ", " + std::to_string(row.target) + ", " +
           std::to_string(row.domain) + ", " + (row.internal ? "true" : "false") + ", " +
           (row.completion ? "true" : "false") + "},  // " + cpp_escape(row.origin->str()) +
           "\n";
  }
  out += "};\n\n";

  out += "inline constexpr Step kSteps[] = {\n";
  for (const auto& step : compiled.step_table()) {
    out += "  {Op::" + std::string(step_op_name(step.op)) + ", " + std::to_string(step.a) +
           ", " + std::to_string(step.b) + "},\n";
  }
  out += "};\n\n";

  out += "inline constexpr std::uint64_t kClaims[] = {\n  ";
  for (std::size_t i = 0; i < compiled.claim_pool().size(); ++i) {
    out += std::to_string(compiled.claim_pool()[i]) + "ull, ";
    if (i % 8 == 7) out += "\n  ";
  }
  out += "\n};\n\n";

  out += "inline constexpr std::uint32_t kLeaves[] = {";
  for (const std::uint32_t leaf : compiled.leaf_pool()) out += std::to_string(leaf) + ", ";
  out += "};\n\n";

  out += "inline constexpr Candidate kCandidates[] = {\n";
  for (const auto& candidate : compiled.candidate_table()) {
    out += "  {" + std::to_string(candidate.transition) + ", " +
           std::to_string(candidate.claim_offset) + ", " +
           std::to_string(candidate.first_step) + ", " + std::to_string(candidate.step_count) +
           ", " + std::to_string(candidate.entry_target) + ", " +
           std::to_string(candidate.entry_scope) + ", " +
           (candidate.internal ? "true" : "false") + ", " +
           (candidate.has_guard ? "true" : "false") + ", " +
           (candidate.dynamic_entry ? "true" : "false") + "},\n";
  }
  out += "};\n\n";

  out += "inline constexpr Plan kPlans[] = {\n";
  for (const auto& plan : compiled.plan_table()) {
    out += "  {" + std::to_string(plan.config) + ", " + std::to_string(plan.event) + ", " +
           std::to_string(plan.first_candidate) + ", " + std::to_string(plan.candidate_count) +
           ", " + (plan.defer_if_unfired ? "true" : "false") + "},  // (" +
           std::to_string(plan.config) + ", \"" +
           cpp_escape(compiled.event_name(plan.event)) + "\")\n";
  }
  out += "};\n\n";

  out += "// Interned configurations as active vertex-index lists (states then finals).\n";
  out += "inline constexpr std::uint32_t kConfigMembers[] = {";
  std::vector<std::uint32_t> config_offsets;
  std::size_t member_total = 0;
  for (std::size_t c = 0; c < compiled.configuration_count(); ++c) {
    config_offsets.push_back(static_cast<std::uint32_t>(member_total));
    const auto members = compiled.configuration_members(static_cast<std::uint32_t>(c));
    member_total += members.size();
    for (const std::uint32_t member : members) out += std::to_string(member) + ", ";
  }
  out += "};\n";
  out += "inline constexpr std::uint32_t kConfigOffsets[] = {";
  for (const std::uint32_t offset : config_offsets) out += std::to_string(offset) + ", ";
  out += std::to_string(member_total) + "};\n\n";
  out += "}  // namespace " + identifier + "_tables\n";
  return out;
}

}  // namespace umlsoc::codegen
