#include "mda/platform.hpp"

namespace umlsoc::mda {

std::string_view to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kSoftware:
      return "software";
    case PlatformKind::kHardware:
      return "hardware";
  }
  return "software";
}

PlatformDescription PlatformDescription::software() {
  PlatformDescription platform;
  platform.name = "cxx-tasks";
  platform.kind = PlatformKind::kSoftware;
  platform.parameters["language"] = "c++";
  platform.parameters["scheduler"] = "priority";
  return platform;
}

PlatformDescription PlatformDescription::hardware() {
  PlatformDescription platform;
  platform.name = "axi-rtl";
  platform.kind = PlatformKind::kHardware;
  platform.parameters["bus_base"] = "0x40000000";
  platform.parameters["module_stride"] = "0x1000";
  platform.parameters["protocol"] = "axi-lite";
  return platform;
}

}  // namespace umlsoc::mda
