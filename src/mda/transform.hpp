// PIM -> PSM transformation engine.
//
// Mappings implemented (DESIGN.md E7):
//  * Software platform: plain/«SwTask» classes become active task classes;
//    «HwModule» classes become driver classes (register-address constants +
//    read_*/write_* accessor operations with ASL bodies); associations
//    become navigable reference properties on the end classes.
//  * Hardware platform: plain/«HwModule» classes become «HwModule»
//    components with clk/rst_n ports and auto-assigned register addresses;
//    «SwTask» classes are dropped (they live on the processor, not in RTL);
//    a synthesized Top component instantiates every module plus an AXI-lite
//    «Bus» and wires connectors; a memory map assigns each module a base
//    address window.
// Every created element is recorded as a PIM->PSM trace link.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mda/platform.hpp"
#include "soc/profile.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::mda {

/// One PIM element mapped to one PSM element by a named rule.
struct TraceLink {
  std::string pim_element;  // Qualified name in the PIM.
  std::string psm_element;  // Qualified name in the PSM.
  std::string rule;
};

/// Address window of one hardware module on the generated bus.
struct MemoryWindow {
  std::string module;  // PSM qualified name.
  std::uint64_t base = 0;
  std::uint64_t span = 0;
};

struct MdaResult {
  std::unique_ptr<uml::Model> psm;
  std::vector<TraceLink> links;
  std::vector<MemoryWindow> memory_map;  // Hardware platform only.

  [[nodiscard]] const TraceLink* find_link_for(const std::string& pim_element) const {
    for (const TraceLink& link : links) {
      if (link.pim_element == pim_element) return &link;
    }
    return nullptr;
  }
};

/// Transforms `pim` for `platform` (dispatching on platform.kind).
/// The PIM is not modified. Returns a null psm on hard errors.
[[nodiscard]] MdaResult transform(const uml::Model& pim, const PlatformDescription& platform,
                                  support::DiagnosticSink& sink);

}  // namespace umlsoc::mda
