// Platform descriptions for the MDA mapping step (paper §3: a PIM "is to be
// more or less automatically transformed to a PSM for a different platform
// using a platform-specific mapping").
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace umlsoc::mda {

enum class PlatformKind { kSoftware, kHardware };

[[nodiscard]] std::string_view to_string(PlatformKind kind);

/// Named target platform plus free-form parameters consumed by the mapping
/// (e.g. "bus_base", "module_stride" for hardware; "scheduler" for software).
struct PlatformDescription {
  std::string name;
  PlatformKind kind = PlatformKind::kSoftware;
  std::map<std::string, std::string> parameters;

  [[nodiscard]] std::string parameter(const std::string& key, std::string fallback) const {
    auto it = parameters.find(key);
    return it == parameters.end() ? std::move(fallback) : it->second;
  }

  /// Canned software platform: C++ tasks over a priority scheduler.
  [[nodiscard]] static PlatformDescription software();
  /// Canned hardware platform: memory-mapped RTL modules on an AXI-lite bus.
  [[nodiscard]] static PlatformDescription hardware();
};

}  // namespace umlsoc::mda
