#include "mda/transform.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/strings.hpp"
#include "uml/query.hpp"

namespace umlsoc::mda {

using namespace uml;

namespace {

/// Shared machinery: package skeleton replication, type rebinding, links.
class TransformerBase {
 public:
  TransformerBase(const Model& pim, const PlatformDescription& platform,
                  support::DiagnosticSink& sink)
      : pim_(const_cast<Model&>(pim)),  // Read-only traversal; uml queries are non-const.
        platform_(platform),
        sink_(sink) {
    pim_profile_ = soc::SocProfile::find(pim_);
  }

  MdaResult take_result() && {
    MdaResult result;
    result.psm = std::move(psm_);
    result.links = std::move(links_);
    result.memory_map = std::move(memory_map_);
    return result;
  }

 protected:
  void link(const NamedElement& pim_element, const NamedElement& psm_element,
            std::string rule) {
    links_.push_back(
        TraceLink{pim_element.qualified_name(), psm_element.qualified_name(), std::move(rule)});
  }

  /// PSM package mirroring the PIM package (created on demand).
  Package& psm_package_for(Package& pim_package) {
    auto it = package_map_.find(&pim_package);
    if (it != package_map_.end()) return *it->second;
    if (pim_package.kind() == ElementKind::kModel) return *psm_;
    Package& parent = psm_package_for(*static_cast<Package*>(pim_package.owner()));
    Package& copy = parent.add_package(pim_package.name());
    package_map_[&pim_package] = &copy;
    link(pim_package, copy, "package-copy");
    return copy;
  }

  Classifier* rebind_type(Classifier* type) {
    if (type == nullptr) return nullptr;
    if (auto* primitive = dynamic_cast<PrimitiveType*>(type)) {
      return &psm_->primitive(primitive->name(), primitive->bit_width());
    }
    auto it = type_map_.find(type);
    return it == type_map_.end() ? nullptr : it->second;
  }

  /// Copies enumerations / data types shared by both mappings.
  void map_data_type(Package& psm_package, NamedElement& member) {
    if (auto* enumeration = dynamic_cast<Enumeration*>(&member)) {
      Enumeration& copy = psm_package.add_enumeration(enumeration->name());
      for (const std::string& literal : enumeration->literals()) copy.add_literal(literal);
      type_map_[enumeration] = &copy;
      link(*enumeration, copy, "enumeration-copy");
    } else if (auto* primitive = dynamic_cast<PrimitiveType*>(&member)) {
      type_map_[primitive] = &psm_->primitive(primitive->name(), primitive->bit_width());
    } else if (auto* data_type = dynamic_cast<DataType*>(&member)) {
      DataType& copy = psm_package.add_data_type(data_type->name());
      type_map_[data_type] = &copy;
      link(*data_type, copy, "datatype-copy");
    }
  }

  void copy_operation_into(Operation& source, Operation& copy) {
    copy.set_body(source.body());
    copy.set_query(source.is_query());
    copy.set_abstract(source.is_abstract());
    for (const auto& parameter : source.parameters()) {
      Parameter& parameter_copy =
          copy.add_parameter(parameter->name(), nullptr, parameter->direction());
      if (Classifier* type = rebind_type(parameter->type())) parameter_copy.set_type(*type);
      parameter_copy.set_default_value(parameter->default_value());
    }
  }

  [[nodiscard]] bool is_hw(const Class& cls) const {
    return pim_profile_.has_value() && cls.has_stereotype(*pim_profile_->hw_module);
  }
  [[nodiscard]] bool is_sw_task(const Class& cls) const {
    return pim_profile_.has_value() && cls.has_stereotype(*pim_profile_->sw_task);
  }
  [[nodiscard]] bool is_register(const Property& property) const {
    return pim_profile_.has_value() && property.has_stereotype(*pim_profile_->hw_register);
  }

  Model& pim_;
  const PlatformDescription& platform_;
  support::DiagnosticSink& sink_;
  std::optional<soc::SocProfile> pim_profile_;
  std::unique_ptr<Model> psm_;
  std::vector<TraceLink> links_;
  std::vector<MemoryWindow> memory_map_;
  std::unordered_map<const Package*, Package*> package_map_;
  std::unordered_map<const Classifier*, Classifier*> type_map_;
};

// --- Software platform ---------------------------------------------------------

class SoftwareTransformer : public TransformerBase {
 public:
  using TransformerBase::TransformerBase;

  void run() {
    psm_ = std::make_unique<Model>(pim_.name() + "_" + platform_.name);

    // Pass 1: classifiers.
    for (Class* cls : collect<Class>(pim_)) {
      Package& target = psm_package_for(*static_cast<Package*>(cls->owner()));
      if (is_hw(*cls)) {
        Class& driver = target.add_class(cls->name() + "Driver");
        driver.set_documentation("Driver for «HwModule» " + cls->name());
        type_map_[cls] = &driver;
        link(*cls, driver, "hw-module-to-driver");
      } else {
        Class& task = target.add_class(cls->name());
        if (is_sw_task(*cls) || cls->is_active()) task.set_active(true);
        type_map_[cls] = &task;
        link(*cls, task, is_sw_task(*cls) ? "sw-task-to-active-class" : "class-copy");
      }
    }
    for (Interface* interface : collect<Interface>(pim_)) {
      Package& target = psm_package_for(*static_cast<Package*>(interface->owner()));
      Interface& copy = target.add_interface(interface->name());
      type_map_[interface] = &copy;
      link(*interface, copy, "interface-copy");
    }
    for (Package* package : collect<Package>(pim_)) {
      if (package == &pim_ || dynamic_cast<Profile*>(package) != nullptr) continue;
      if (package->name() == "<primitives>") continue;
      Package& target = psm_package_for(*package);
      for (const auto& member : package->members()) map_data_type(target, *member);
    }

    // Pass 2: features and relationships.
    for (Class* cls : collect<Class>(pim_)) {
      auto* target = static_cast<Class*>(type_map_.at(cls));
      if (is_hw(*cls)) {
        fill_driver(*cls, *target);
      } else {
        fill_task(*cls, *target);
      }
    }
    for (Interface* interface : collect<Interface>(pim_)) {
      auto* target = static_cast<Interface*>(type_map_.at(interface));
      for (const auto& operation : interface->operations()) {
        copy_operation_into(*operation, target->add_operation(operation->name()));
      }
    }
    for (Association* association : collect<Association>(pim_)) {
      map_association(*association);
    }
  }

 private:
  void fill_task(Class& source, Class& copy) {
    for (const auto& property : source.properties()) {
      Property& property_copy = copy.add_property(property->name());
      if (Classifier* type = rebind_type(property->type())) property_copy.set_type(*type);
      property_copy.set_multiplicity(property->multiplicity());
      property_copy.set_default_value(property->default_value());
    }
    for (const auto& operation : source.operations()) {
      copy_operation_into(*operation, copy.add_operation(operation->name()));
    }
    for (Classifier* general : source.generals()) {
      if (Classifier* mapped = rebind_type(general)) copy.add_generalization(*mapped);
    }
    for (Interface* contract : source.interface_realizations()) {
      if (auto* mapped = dynamic_cast<Interface*>(rebind_type(contract))) {
        copy.add_interface_realization(*mapped);
      }
    }
  }

  void fill_driver(Class& source, Class& driver) {
    Property& base = driver.add_property("base", &psm_->primitive("Word", 32));
    base.set_default_value("0x0");
    for (const auto& property : source.properties()) {
      if (!is_register(*property)) continue;
      std::optional<std::uint64_t> address = pim_profile_->register_address(*property);
      const std::string offset = address.has_value() ? std::to_string(*address) : "0";
      const std::string constant_name =
          support::to_snake_case(property->name()) + "_offset";
      Property& offset_property =
          driver.add_property(constant_name, &psm_->primitive("Word", 32));
      offset_property.set_default_value(offset);
      offset_property.set_read_only(true);
      offset_property.set_static(true);

      const std::string access = pim_profile_->register_access(*property);
      if (access.find('r') != std::string::npos) {
        Operation& read = driver.add_operation("read_" + property->name());
        read.set_return_type(psm_->primitive("Word", 32));
        read.set_body("return bus_read(self.base + " + offset + ");");
        read.set_query(true);
      }
      if (access.find('w') != std::string::npos) {
        Operation& write = driver.add_operation("write_" + property->name());
        write.add_parameter("value", &psm_->primitive("Word", 32));
        write.set_body("bus_write(self.base + " + offset + ", value);");
      }
    }
  }

  void map_association(Association& association) {
    if (!association.is_binary()) {
      sink_.warning(association.qualified_name(),
                    "n-ary association not mapped to references");
      return;
    }
    Property& end_a = *association.ends()[0];
    Property& end_b = *association.ends()[1];
    auto* class_a = dynamic_cast<Class*>(rebind_type(end_a.type()));
    auto* class_b = dynamic_cast<Class*>(rebind_type(end_b.type()));
    if (class_a == nullptr || class_b == nullptr) {
      sink_.warning(association.qualified_name(),
                    "association ends not mapped; skipping reference generation");
      return;
    }
    // Each class receives a reference named after the opposite end.
    Property& ref_in_a = class_a->add_property(end_b.name(), class_b);
    ref_in_a.set_multiplicity(end_b.multiplicity());
    Property& ref_in_b = class_b->add_property(end_a.name(), class_a);
    ref_in_b.set_multiplicity(end_a.multiplicity());
    link(association, ref_in_a, "association-to-references");
  }
};

// --- Hardware platform ------------------------------------------------------------

class HardwareTransformer : public TransformerBase {
 public:
  using TransformerBase::TransformerBase;

  void run() {
    psm_ = std::make_unique<Model>(pim_.name() + "_" + platform_.name);
    psm_profile_ = soc::SocProfile::install(*psm_);

    for (Package* package : collect<Package>(pim_)) {
      if (package == &pim_ || dynamic_cast<Profile*>(package) != nullptr) continue;
      if (package->name() == "<primitives>") continue;
      Package& target = psm_package_for(*package);
      for (const auto& member : package->members()) map_data_type(target, *member);
    }

    std::vector<Component*> modules;
    for (Class* cls : collect<Class>(pim_)) {
      if (is_sw_task(*cls)) {
        sink_.note(cls->qualified_name(),
                   "«SwTask» not mapped to hardware (runs on the processor)");
        continue;
      }
      modules.push_back(&map_module(*cls));
    }

    // Features after all modules exist (cross-references).
    for (Class* cls : collect<Class>(pim_)) {
      auto it = type_map_.find(cls);
      if (it == type_map_.end()) continue;
      fill_module(*cls, *static_cast<Component*>(it->second));
    }

    build_memory_map(modules);
    build_top(modules);
  }

 private:
  Component& map_module(Class& cls) {
    Package& target = psm_package_for(*static_cast<Package*>(cls.owner()));
    Component& module = target.add_component(cls.name());
    module.apply_stereotype(*psm_profile_.hw_module);
    if (pim_profile_.has_value() && is_hw(cls)) {
      module.set_tagged_value(*psm_profile_.hw_module, "clockMHz",
                              cls.tagged_value(*pim_profile_->hw_module, "clockMHz"));
      module.set_tagged_value(*psm_profile_.hw_module, "areaGates",
                              cls.tagged_value(*pim_profile_->hw_module, "areaGates"));
    }
    type_map_[&cls] = &module;
    link(cls, module, "class-to-hw-module");
    return module;
  }

  void fill_module(Class& source, Component& module) {
    // Mandatory infrastructure ports.
    if (source.find_port("clk") == nullptr) {
      Port& clk = module.add_port("clk", PortDirection::kIn);
      clk.apply_stereotype(*psm_profile_.clock);
    }
    if (source.find_port("rst_n") == nullptr) {
      module.add_port("rst_n", PortDirection::kIn);
    }
    Port& s_axi = module.add_port("s_axi", PortDirection::kIn);
    s_axi.set_width(psm_profile_.bus_width(module));

    for (const auto& port : source.ports()) {
      Port& port_copy = module.add_port(port->name(), port->direction());
      port_copy.set_width(port->width());
      if (Classifier* type = rebind_type(port->type())) port_copy.set_type(*type);
      if (pim_profile_.has_value() && port->has_stereotype(*pim_profile_->clock)) {
        port_copy.apply_stereotype(*psm_profile_.clock);
      }
    }

    // Registers: keep tags, auto-assign missing/duplicate addresses.
    std::uint64_t next_free = 0;
    for (const auto& property : source.properties()) {
      Property& property_copy = module.add_property(property->name());
      if (Classifier* type = rebind_type(property->type())) property_copy.set_type(*type);
      property_copy.set_default_value(property->default_value());

      const bool reg = is_register(*property) || property->type() != nullptr;
      if (!reg) continue;
      property_copy.apply_stereotype(*psm_profile_.hw_register);
      std::optional<std::uint64_t> address;
      if (is_register(*property)) {
        address = pim_profile_->register_address(*property);
        property_copy.set_tagged_value(*psm_profile_.hw_register, "access",
                                       pim_profile_->register_access(*property));
      }
      if (!address.has_value()) address = next_free;
      next_free = std::max(next_free, *address + 4);
      property_copy.set_tagged_value(*psm_profile_.hw_register, "address",
                                     "0x" + to_hex(*address));
    }

    for (const auto& operation : source.operations()) {
      copy_operation_into(*operation, module.add_operation(operation->name()));
    }
  }

  static std::string to_hex(std::uint64_t value) {
    if (value == 0) return "0";
    const char* digits = "0123456789abcdef";
    std::string out;
    while (value != 0) {
      out.insert(out.begin(), digits[value & 0xF]);
      value >>= 4;
    }
    return out;
  }

  void build_memory_map(const std::vector<Component*>& modules) {
    std::uint64_t base =
        soc::parse_address(platform_.parameter("bus_base", "0x40000000")).value_or(0x40000000);
    std::uint64_t stride =
        soc::parse_address(platform_.parameter("module_stride", "0x1000")).value_or(0x1000);
    for (Component* module : modules) {
      std::uint64_t max_address = 0;
      bool has_registers = false;
      for (const auto& property : module->properties()) {
        if (!property->has_stereotype(*psm_profile_.hw_register)) continue;
        has_registers = true;
        max_address =
            std::max(max_address, psm_profile_.register_address(*property).value_or(0));
      }
      if (!has_registers) continue;
      std::uint64_t span = ((max_address + 4 + 0xFF) / 0x100) * 0x100;
      memory_map_.push_back(MemoryWindow{module->qualified_name(), base, span});
      base += std::max(stride, span);
    }
  }

  void build_top(const std::vector<Component*>& modules) {
    if (modules.empty()) return;
    Package& top_package = psm_->add_package("top");

    Component& bus = top_package.add_component("AxiLiteBus");
    bus.apply_stereotype(*psm_profile_.bus);
    bus.set_tagged_value(*psm_profile_.bus, "protocol",
                         platform_.parameter("protocol", "axi-lite"));
    Port& m_axi = bus.add_port("m_axi", PortDirection::kOut);
    m_axi.set_width(psm_profile_.bus_width(bus));

    Component& top = top_package.add_component("Top");
    Property& bus_part = top.add_property("bus0", &bus);
    bus_part.set_aggregation(AggregationKind::kComposite);

    for (Component* module : modules) {
      Property& part =
          top.add_property(support::to_snake_case(module->name()) + "0", module);
      part.set_aggregation(AggregationKind::kComposite);
      Connector& wire = top.add_connector("axi_" + part.name());
      wire.add_end(ConnectorEnd{&part, module->find_port("s_axi")});
      wire.add_end(ConnectorEnd{&bus_part, &m_axi});
      wire.apply_stereotype(*psm_profile_.channel);
    }
    link(pim_, top, "model-to-top-structure");
  }

  soc::SocProfile psm_profile_;
};

}  // namespace

MdaResult transform(const Model& pim, const PlatformDescription& platform,
                    support::DiagnosticSink& sink) {
  if (platform.kind == PlatformKind::kSoftware) {
    SoftwareTransformer transformer(pim, platform, sink);
    transformer.run();
    return std::move(transformer).take_result();
  }
  HardwareTransformer transformer(pim, platform, sink);
  transformer.run();
  return std::move(transformer).take_result();
}

}  // namespace umlsoc::mda
