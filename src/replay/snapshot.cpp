#include "replay/snapshot.hpp"

#include <charconv>
#include <chrono>
#include <map>
#include <memory>

#include "xmi/xml.hpp"

namespace umlsoc::replay {

namespace {

constexpr std::string_view kRootName = "umlsoc-snapshot";

// --- checksums ---------------------------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over the canonical serialization of the root's children. The xmi
/// writer is canonical (attribute insertion order preserved, fixed indent,
/// whitespace-only text dropped by the parser), so parse + re-serialize
/// reproduces the hashed bytes exactly and any corruption of the stored
/// content shows up as a mismatch.
std::uint64_t fnv1a(std::string_view data, std::uint64_t hash = kFnvOffset) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t content_checksum(const xmi::XmlNode& root) {
  std::uint64_t hash = kFnvOffset;
  for (const auto& child : root.children()) hash = fnv1a(child->str(1), hash);
  return hash;
}

/// Structural hash of one section subtree, excluding the section's own
/// top-level "checksum" attribute (absent at save time, present at restore
/// time — both sides hash the same content). Separator bytes keep field
/// boundaries from aliasing.
void hash_node_into(const xmi::XmlNode& node, std::uint64_t& hash, bool skip_checksum_attr) {
  hash = fnv1a(node.name(), hash);
  for (const auto& [key, value] : node.attributes()) {
    if (skip_checksum_attr && key == "checksum") continue;
    hash = fnv1a("\x01", hash);
    hash = fnv1a(key, hash);
    hash = fnv1a("\x02", hash);
    hash = fnv1a(value, hash);
  }
  hash = fnv1a("\x03", hash);
  hash = fnv1a(node.text(), hash);
  for (const auto& child : node.children()) {
    hash = fnv1a("\x04", hash);
    hash_node_into(*child, hash, false);
  }
}

std::uint64_t section_checksum(const xmi::XmlNode& section) {
  std::uint64_t hash = kFnvOffset;
  hash_node_into(section, hash, true);
  return hash;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  buffer[16] = '\0';
  return std::string(buffer);
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

/// "<machine name='link'>" — how diagnostics refer to one section.
std::string describe_section(const xmi::XmlNode& node) {
  const std::string* name = node.attribute("name");
  if (name == nullptr) return "<" + node.name() + ">";
  return "<" + node.name() + " name='" + *name + "'>";
}

// --- strict attribute readers ------------------------------------------------

std::string subject_of(const xmi::XmlNode& node) { return "snapshot <" + node.name() + ">"; }

template <typename T>
bool read_integer(const xmi::XmlNode& node, std::string_view key, T& out,
                  support::DiagnosticSink& sink, int base = 10) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  const char* first = raw->data();
  const char* last = first + raw->size();
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc() || ptr != last || raw->empty()) {
    sink.error(subject_of(node),
               "attribute '" + std::string(key) + "' is not a valid integer: '" + *raw + "'");
    return false;
  }
  out = value;
  return true;
}

bool read_bool(const xmi::XmlNode& node, std::string_view key, bool& out,
               support::DiagnosticSink& sink) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  if (*raw == "0") {
    out = false;
  } else if (*raw == "1") {
    out = true;
  } else {
    sink.error(subject_of(node),
               "attribute '" + std::string(key) + "' must be 0 or 1, got '" + *raw + "'");
    return false;
  }
  return true;
}

bool read_string(const xmi::XmlNode& node, std::string_view key, std::string& out,
                 support::DiagnosticSink& sink) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  out = *raw;
  return true;
}

std::string bool_str(bool value) { return value ? "1" : "0"; }

// --- section writers (image -> XML nodes) ------------------------------------

void write_kernel(xmi::XmlNode& root, const SnapshotImage& image) {
  const sim::Kernel::Checkpoint& checkpoint = image.kernel;
  xmi::XmlNode& node = root.add_child("kernel");
  node.set_attribute("now-ps", std::to_string(checkpoint.now_ps));
  node.set_attribute("sequence", std::to_string(checkpoint.sequence));
  node.set_attribute("delta-count", std::to_string(checkpoint.delta_count));
  node.set_attribute("events-processed", std::to_string(checkpoint.events_processed));
  node.set_attribute("process-count", std::to_string(checkpoint.process_count));
  for (std::size_t i = 0; i < checkpoint.timed.size(); ++i) {
    const auto& timed = checkpoint.timed[i];
    xmi::XmlNode& entry = node.add_child("timed");
    entry.set_attribute("at-ps", std::to_string(timed.at_ps));
    entry.set_attribute("seq", std::to_string(timed.sequence));
    entry.set_attribute("process", std::to_string(timed.process));
    if (i < image.kernel_timed_labels.size() && !image.kernel_timed_labels[i].empty()) {
      entry.set_attribute("label", image.kernel_timed_labels[i]);
    }
  }
  for (const auto& expectation : checkpoint.expectations) {
    xmi::XmlNode& entry = node.add_child("expectation");
    entry.set_attribute("label", expectation.label);
    entry.set_attribute("outstanding", std::to_string(expectation.outstanding));
  }
}

void write_fault_plan(xmi::XmlNode& root, const SnapshotImage::FaultPlanState& plan) {
  xmi::XmlNode& node = root.add_child("fault-plan");
  node.set_attribute("seed", std::to_string(plan.seed));
  for (const auto& [site, state] : plan.sites) {
    xmi::XmlNode& entry = node.add_child("site");
    entry.set_attribute("name", std::string(sim::to_string(site)));
    entry.set_attribute("rng-state", std::to_string(state.rng_state));
    entry.set_attribute("consults", std::to_string(state.counters.consults));
    entry.set_attribute("errors", std::to_string(state.counters.errors));
    entry.set_attribute("drops", std::to_string(state.counters.drops));
    entry.set_attribute("delays", std::to_string(state.counters.delays));
    entry.set_attribute("bit-flips", std::to_string(state.counters.bit_flips));
    entry.set_attribute("glitches", std::to_string(state.counters.glitches));
  }
}

void write_recorder(xmi::XmlNode& root, const SnapshotImage::RecorderState& recorder) {
  xmi::XmlNode& node = root.add_child("recorder");
  node.set_attribute("total", std::to_string(recorder.total));
  for (const sim::RecordedEvent& event : recorder.events) {
    xmi::XmlNode& entry = node.add_child("event");
    entry.set_attribute("at-ps", std::to_string(event.at_ps));
    entry.set_attribute("process", std::to_string(event.process));
  }
}

void write_event_records(xmi::XmlNode& node, const char* element,
                         const std::vector<statechart::InstanceSnapshot::EventRecord>& records) {
  for (const auto& record : records) {
    xmi::XmlNode& entry = node.add_child(element);
    entry.set_attribute("name", record.name);
    entry.set_attribute("data", std::to_string(record.data));
    if (!record.tag.empty()) entry.set_attribute("tag", record.tag);
  }
}

void write_machine(xmi::XmlNode& root, const std::string& name,
                   const statechart::InstanceSnapshot& snapshot) {
  xmi::XmlNode& node = root.add_child("machine");
  node.set_attribute("name", name);
  node.set_attribute("started", bool_str(snapshot.started));
  node.set_attribute("terminated", bool_str(snapshot.terminated));
  node.set_attribute("events-processed", std::to_string(snapshot.events_processed));
  node.set_attribute("transitions-fired", std::to_string(snapshot.transitions_fired));
  node.set_attribute("errors-raised", std::to_string(snapshot.errors_raised));
  node.set_attribute("errors-unhandled", std::to_string(snapshot.errors_unhandled));
  for (std::uint32_t index : snapshot.active_states) {
    node.add_child("active-state").set_attribute("index", std::to_string(index));
  }
  for (std::uint32_t index : snapshot.active_finals) {
    node.add_child("active-final").set_attribute("index", std::to_string(index));
  }
  for (const auto& [region, state] : snapshot.shallow_history) {
    xmi::XmlNode& entry = node.add_child("shallow-history");
    entry.set_attribute("region", std::to_string(region));
    entry.set_attribute("state", std::to_string(state));
  }
  for (const auto& [region, leaves] : snapshot.deep_history) {
    xmi::XmlNode& entry = node.add_child("deep-history");
    entry.set_attribute("region", std::to_string(region));
    for (std::uint32_t leaf : leaves) {
      entry.add_child("leaf").set_attribute("index", std::to_string(leaf));
    }
  }
  for (const auto& [var_name, value] : snapshot.variables) {
    xmi::XmlNode& entry = node.add_child("variable");
    entry.set_attribute("name", var_name);
    entry.set_attribute("value", std::to_string(value));
  }
  write_event_records(node, "queued", snapshot.queue);
  write_event_records(node, "deferred", snapshot.deferred);
}

void write_bus(xmi::XmlNode& root, const std::string& name,
               const sim::MemoryMappedBus::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("bus");
  node.set_attribute("name", name);
  node.set_attribute("reads", std::to_string(checkpoint.stats.reads));
  node.set_attribute("writes", std::to_string(checkpoint.stats.writes));
  node.set_attribute("errors", std::to_string(checkpoint.stats.errors));
  node.set_attribute("injected-errors", std::to_string(checkpoint.stats.injected_errors));
  node.set_attribute("injected-drops", std::to_string(checkpoint.stats.injected_drops));
  node.set_attribute("injected-delays", std::to_string(checkpoint.stats.injected_delays));
  node.set_attribute("injected-bit-flips", std::to_string(checkpoint.stats.injected_bit_flips));
  node.set_attribute("completions", std::to_string(checkpoint.stats.completions));
  node.set_attribute("dropped-completions",
                     std::to_string(checkpoint.stats.dropped_completions));
  node.set_attribute("last-completion-ps", std::to_string(checkpoint.last_completion_ps));
}

void write_watchdog(xmi::XmlNode& root, const std::string& name,
                    const sim::Watchdog::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("watchdog");
  node.set_attribute("name", name);
  node.set_attribute("armed", bool_str(checkpoint.armed));
  node.set_attribute("tripped", bool_str(checkpoint.tripped));
  node.set_attribute("check-pending", bool_str(checkpoint.check_pending));
  node.set_attribute("trip-at-ps", std::to_string(checkpoint.trip_at_ps));
  node.set_attribute("trips", std::to_string(checkpoint.trips));
  node.set_attribute("kicks", std::to_string(checkpoint.kicks));
}

void write_supervisor(xmi::XmlNode& root, const std::string& name,
                      const sim::Supervisor::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("supervisor");
  node.set_attribute("name", name);
  node.set_attribute("suspended", bool_str(checkpoint.suspended));
  node.set_attribute("gave-up", bool_str(checkpoint.gave_up));
  node.set_attribute("give-up-reason", checkpoint.give_up_reason);
  node.set_attribute("escalations", std::to_string(checkpoint.escalations));
  for (std::uint64_t at_ps : checkpoint.window) {
    node.add_child("window").set_attribute("at-ps", std::to_string(at_ps));
  }
  for (const auto& child : checkpoint.children) {
    xmi::XmlNode& entry = node.add_child("child");
    entry.set_attribute("failures", std::to_string(child.failures));
    entry.set_attribute("restarts", std::to_string(child.restarts));
    entry.set_attribute("failed-restarts", std::to_string(child.failed_restarts));
    entry.set_attribute("consecutive", std::to_string(child.consecutive));
    entry.set_attribute("last-failure-ps", std::to_string(child.last_failure_ps));
  }
  for (const auto& pending : checkpoint.pending) {
    xmi::XmlNode& entry = node.add_child("pending");
    entry.set_attribute("due-ps", std::to_string(pending.due_ps));
    entry.set_attribute("child", std::to_string(pending.child));
  }
}

void write_breaker(xmi::XmlNode& root, const std::string& name,
                   const sim::CircuitBreaker::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("breaker");
  node.set_attribute("name", name);
  node.set_attribute("state", std::to_string(checkpoint.state));
  node.set_attribute("outcomes", std::to_string(checkpoint.outcomes));
  node.set_attribute("cursor", std::to_string(checkpoint.cursor));
  node.set_attribute("samples", std::to_string(checkpoint.samples));
  node.set_attribute("failures-in-window", std::to_string(checkpoint.failures_in_window));
  node.set_attribute("open-duration-ps", std::to_string(checkpoint.open_duration_ps));
  node.set_attribute("reopen-at-ps", std::to_string(checkpoint.reopen_at_ps));
  node.set_attribute("timer-pending", bool_str(checkpoint.timer_pending));
  node.set_attribute("probe-in-flight", bool_str(checkpoint.probe_in_flight));
  node.set_attribute("issued", std::to_string(checkpoint.stats.issued));
  node.set_attribute("ok", std::to_string(checkpoint.stats.ok));
  node.set_attribute("failures", std::to_string(checkpoint.stats.failures));
  node.set_attribute("fast-failed", std::to_string(checkpoint.stats.fast_failed));
  node.set_attribute("opens", std::to_string(checkpoint.stats.opens));
  node.set_attribute("closes", std::to_string(checkpoint.stats.closes));
  node.set_attribute("probes", std::to_string(checkpoint.stats.probes));
  node.set_attribute("probe-failures", std::to_string(checkpoint.stats.probe_failures));
}

void write_health(xmi::XmlNode& root, const std::string& name,
                  const sim::HealthRegistry::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("health");
  node.set_attribute("name", name);
  node.set_attribute("transitions", std::to_string(checkpoint.transitions));
  for (std::uint8_t value : checkpoint.health) {
    node.add_child("unit").set_attribute("health", std::to_string(value));
  }
}

void write_bank(xmi::XmlNode& root, const std::string& name,
                const std::vector<std::pair<std::string, std::uint64_t>>& values) {
  xmi::XmlNode& node = root.add_child("bank");
  node.set_attribute("name", name);
  for (const auto& [key, value] : values) {
    xmi::XmlNode& entry = node.add_child("value");
    entry.set_attribute("key", key);
    entry.set_attribute("value", std::to_string(value));
  }
}

// --- section readers (decode only, no targets touched) -----------------------

bool read_kernel(const xmi::XmlNode& node, sim::Kernel::Checkpoint& out,
                 std::vector<std::string>& labels, support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "now-ps", out.now_ps, sink);
  ok = read_integer(node, "sequence", out.sequence, sink) && ok;
  ok = read_integer(node, "delta-count", out.delta_count, sink) && ok;
  ok = read_integer(node, "events-processed", out.events_processed, sink) && ok;
  ok = read_integer(node, "process-count", out.process_count, sink) && ok;
  for (const auto& child : node.children()) {
    if (child->name() == "timed") {
      sim::Kernel::Checkpoint::PendingTimed timed;
      ok = read_integer(*child, "at-ps", timed.at_ps, sink) && ok;
      ok = read_integer(*child, "seq", timed.sequence, sink) && ok;
      ok = read_integer(*child, "process", timed.process, sink) && ok;
      out.timed.push_back(timed);
      labels.push_back(child->attribute_or("label", ""));
    } else if (child->name() == "expectation") {
      sim::Kernel::Checkpoint::ExpectationEntry entry;
      ok = read_string(*child, "label", entry.label, sink) && ok;
      ok = read_integer(*child, "outstanding", entry.outstanding, sink) && ok;
      out.expectations.push_back(std::move(entry));
    } else {
      sink.error(subject_of(node), "unknown element <" + child->name() + ">");
      ok = false;
    }
  }
  return ok;
}

bool read_fault_plan(const xmi::XmlNode& node, SnapshotImage::FaultPlanState& out,
                     support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "seed", out.seed, sink);
  for (const xmi::XmlNode* entry : node.children_named("site")) {
    std::string name;
    if (!read_string(*entry, "name", name, sink)) {
      ok = false;
      continue;
    }
    bool known = false;
    sim::FaultSite site = sim::FaultSite::kBusRead;
    for (std::size_t i = 0; i < sim::kFaultSiteCount; ++i) {
      if (name == sim::to_string(static_cast<sim::FaultSite>(i))) {
        site = static_cast<sim::FaultSite>(i);
        known = true;
        break;
      }
    }
    if (!known) {
      sink.error(subject_of(node), "unknown fault site '" + name + "'");
      ok = false;
      continue;
    }
    sim::FaultPlan::SiteState state;
    ok = read_integer(*entry, "rng-state", state.rng_state, sink) && ok;
    ok = read_integer(*entry, "consults", state.counters.consults, sink) && ok;
    ok = read_integer(*entry, "errors", state.counters.errors, sink) && ok;
    ok = read_integer(*entry, "drops", state.counters.drops, sink) && ok;
    ok = read_integer(*entry, "delays", state.counters.delays, sink) && ok;
    ok = read_integer(*entry, "bit-flips", state.counters.bit_flips, sink) && ok;
    ok = read_integer(*entry, "glitches", state.counters.glitches, sink) && ok;
    out.sites.emplace_back(site, state);
  }
  return ok;
}

bool read_recorder(const xmi::XmlNode& node, SnapshotImage::RecorderState& out,
                   support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "total", out.total, sink);
  for (const xmi::XmlNode* entry : node.children_named("event")) {
    sim::RecordedEvent event;
    ok = read_integer(*entry, "at-ps", event.at_ps, sink) && ok;
    ok = read_integer(*entry, "process", event.process, sink) && ok;
    out.events.push_back(event);
  }
  if (ok && out.events.size() > out.total) {
    sink.error(subject_of(node), "log holds " + std::to_string(out.events.size()) +
                                     " events but total says " + std::to_string(out.total));
    ok = false;
  }
  return ok;
}

bool read_event_records(const xmi::XmlNode& node, const char* element,
                        std::vector<statechart::InstanceSnapshot::EventRecord>& out,
                        support::DiagnosticSink& sink) {
  bool ok = true;
  for (const xmi::XmlNode* entry : node.children_named(element)) {
    statechart::InstanceSnapshot::EventRecord record;
    ok = read_string(*entry, "name", record.name, sink) && ok;
    ok = read_integer(*entry, "data", record.data, sink) && ok;
    record.tag = entry->attribute_or("tag", "");
    out.push_back(std::move(record));
  }
  return ok;
}

bool read_machine(const xmi::XmlNode& node, statechart::InstanceSnapshot& out,
                  support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "started", out.started, sink);
  ok = read_bool(node, "terminated", out.terminated, sink) && ok;
  ok = read_integer(node, "events-processed", out.events_processed, sink) && ok;
  ok = read_integer(node, "transitions-fired", out.transitions_fired, sink) && ok;
  ok = read_integer(node, "errors-raised", out.errors_raised, sink) && ok;
  ok = read_integer(node, "errors-unhandled", out.errors_unhandled, sink) && ok;
  for (const xmi::XmlNode* entry : node.children_named("active-state")) {
    std::uint32_t index = 0;
    ok = read_integer(*entry, "index", index, sink) && ok;
    out.active_states.push_back(index);
  }
  for (const xmi::XmlNode* entry : node.children_named("active-final")) {
    std::uint32_t index = 0;
    ok = read_integer(*entry, "index", index, sink) && ok;
    out.active_finals.push_back(index);
  }
  for (const xmi::XmlNode* entry : node.children_named("shallow-history")) {
    std::uint32_t region = 0;
    std::uint32_t state = 0;
    ok = read_integer(*entry, "region", region, sink) && ok;
    ok = read_integer(*entry, "state", state, sink) && ok;
    out.shallow_history.emplace_back(region, state);
  }
  for (const xmi::XmlNode* entry : node.children_named("deep-history")) {
    std::uint32_t region = 0;
    ok = read_integer(*entry, "region", region, sink) && ok;
    std::vector<std::uint32_t> leaves;
    for (const xmi::XmlNode* leaf : entry->children_named("leaf")) {
      std::uint32_t index = 0;
      ok = read_integer(*leaf, "index", index, sink) && ok;
      leaves.push_back(index);
    }
    out.deep_history.emplace_back(region, std::move(leaves));
  }
  for (const xmi::XmlNode* entry : node.children_named("variable")) {
    std::string name;
    std::int64_t value = 0;
    ok = read_string(*entry, "name", name, sink) && ok;
    ok = read_integer(*entry, "value", value, sink) && ok;
    out.variables.emplace_back(std::move(name), value);
  }
  ok = read_event_records(node, "queued", out.queue, sink) && ok;
  ok = read_event_records(node, "deferred", out.deferred, sink) && ok;
  return ok;
}

bool read_bus(const xmi::XmlNode& node, sim::MemoryMappedBus::Checkpoint& out,
              support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "reads", out.stats.reads, sink);
  ok = read_integer(node, "writes", out.stats.writes, sink) && ok;
  ok = read_integer(node, "errors", out.stats.errors, sink) && ok;
  ok = read_integer(node, "injected-errors", out.stats.injected_errors, sink) && ok;
  ok = read_integer(node, "injected-drops", out.stats.injected_drops, sink) && ok;
  ok = read_integer(node, "injected-delays", out.stats.injected_delays, sink) && ok;
  ok = read_integer(node, "injected-bit-flips", out.stats.injected_bit_flips, sink) && ok;
  ok = read_integer(node, "completions", out.stats.completions, sink) && ok;
  ok = read_integer(node, "dropped-completions", out.stats.dropped_completions, sink) && ok;
  ok = read_integer(node, "last-completion-ps", out.last_completion_ps, sink) && ok;
  return ok;
}

bool read_watchdog(const xmi::XmlNode& node, sim::Watchdog::Checkpoint& out,
                   support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "armed", out.armed, sink);
  ok = read_bool(node, "tripped", out.tripped, sink) && ok;
  ok = read_bool(node, "check-pending", out.check_pending, sink) && ok;
  ok = read_integer(node, "trip-at-ps", out.trip_at_ps, sink) && ok;
  ok = read_integer(node, "trips", out.trips, sink) && ok;
  ok = read_integer(node, "kicks", out.kicks, sink) && ok;
  return ok;
}

bool read_supervisor(const xmi::XmlNode& node, sim::Supervisor::Checkpoint& out,
                     support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "suspended", out.suspended, sink);
  ok = read_bool(node, "gave-up", out.gave_up, sink) && ok;
  ok = read_string(node, "give-up-reason", out.give_up_reason, sink) && ok;
  ok = read_integer(node, "escalations", out.escalations, sink) && ok;
  for (const xmi::XmlNode* entry : node.children_named("window")) {
    std::uint64_t at_ps = 0;
    ok = read_integer(*entry, "at-ps", at_ps, sink) && ok;
    out.window.push_back(at_ps);
  }
  for (const xmi::XmlNode* entry : node.children_named("child")) {
    sim::Supervisor::Checkpoint::ChildState child;
    ok = read_integer(*entry, "failures", child.failures, sink) && ok;
    ok = read_integer(*entry, "restarts", child.restarts, sink) && ok;
    ok = read_integer(*entry, "failed-restarts", child.failed_restarts, sink) && ok;
    ok = read_integer(*entry, "consecutive", child.consecutive, sink) && ok;
    ok = read_integer(*entry, "last-failure-ps", child.last_failure_ps, sink) && ok;
    out.children.push_back(child);
  }
  for (const xmi::XmlNode* entry : node.children_named("pending")) {
    sim::Supervisor::Checkpoint::PendingRestart pending;
    ok = read_integer(*entry, "due-ps", pending.due_ps, sink) && ok;
    ok = read_integer(*entry, "child", pending.child, sink) && ok;
    out.pending.push_back(pending);
  }
  return ok;
}

bool read_breaker(const xmi::XmlNode& node, sim::CircuitBreaker::Checkpoint& out,
                  support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "state", out.state, sink);
  ok = read_integer(node, "outcomes", out.outcomes, sink) && ok;
  ok = read_integer(node, "cursor", out.cursor, sink) && ok;
  ok = read_integer(node, "samples", out.samples, sink) && ok;
  ok = read_integer(node, "failures-in-window", out.failures_in_window, sink) && ok;
  ok = read_integer(node, "open-duration-ps", out.open_duration_ps, sink) && ok;
  ok = read_integer(node, "reopen-at-ps", out.reopen_at_ps, sink) && ok;
  ok = read_bool(node, "timer-pending", out.timer_pending, sink) && ok;
  ok = read_bool(node, "probe-in-flight", out.probe_in_flight, sink) && ok;
  ok = read_integer(node, "issued", out.stats.issued, sink) && ok;
  ok = read_integer(node, "ok", out.stats.ok, sink) && ok;
  ok = read_integer(node, "failures", out.stats.failures, sink) && ok;
  ok = read_integer(node, "fast-failed", out.stats.fast_failed, sink) && ok;
  ok = read_integer(node, "opens", out.stats.opens, sink) && ok;
  ok = read_integer(node, "closes", out.stats.closes, sink) && ok;
  ok = read_integer(node, "probes", out.stats.probes, sink) && ok;
  ok = read_integer(node, "probe-failures", out.stats.probe_failures, sink) && ok;
  return ok;
}

bool read_health(const xmi::XmlNode& node, sim::HealthRegistry::Checkpoint& out,
                 support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "transitions", out.transitions, sink);
  for (const xmi::XmlNode* entry : node.children_named("unit")) {
    std::uint8_t value = 0;
    ok = read_integer(*entry, "health", value, sink) && ok;
    out.health.push_back(value);
  }
  return ok;
}

bool read_bank(const xmi::XmlNode& node,
               std::vector<std::pair<std::string, std::uint64_t>>& out,
               support::DiagnosticSink& sink) {
  bool ok = true;
  for (const xmi::XmlNode* entry : node.children_named("value")) {
    std::string key;
    std::uint64_t value = 0;
    ok = read_string(*entry, "key", key, sink) && ok;
    ok = read_integer(*entry, "value", value, sink) && ok;
    out.emplace_back(std::move(key), value);
  }
  return ok;
}

/// Checks that the image's named sections of one kind and the targets' names
/// match one-to-one. `order` receives, per target, the image index holding
/// its section.
template <typename Section, typename Target>
bool match_sections(std::string_view element,
                    const std::vector<SnapshotImage::Named<Section>>& sections,
                    const std::vector<Target>& targets, std::vector<std::size_t>& order,
                    support::DiagnosticSink& sink) {
  bool ok = true;
  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    if (!by_name.emplace(sections[i].name, i).second) {
      sink.error("snapshot", "duplicate <" + std::string(element) + "> section '" +
                                 sections[i].name + "'");
      ok = false;
    }
  }
  order.assign(targets.size(), 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto it = by_name.find(targets[i].name);
    if (it == by_name.end()) {
      sink.error("snapshot",
                 "no <" + std::string(element) + "> section named '" + targets[i].name + "'");
      ok = false;
      continue;
    }
    order[i] = it->second;
  }
  for (const auto& [name, index] : by_name) {
    bool registered = false;
    for (const Target& target : targets) registered = registered || target.name == name;
    if (!registered) {
      sink.error("snapshot", "<" + std::string(element) + "> section '" + name +
                                 "' has no registered target");
      ok = false;
    }
  }
  return ok;
}

}  // namespace

// --- capture -----------------------------------------------------------------

bool capture_image(const SnapshotTargets& targets, SnapshotImage& image,
                   support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }

  SnapshotImage out;
  if (!targets.kernel->capture_checkpoint(out.kernel, sink)) return false;

  bool ok = true;
  for (const BusTarget& target : targets.buses) {
    if (target.bus->pending_transactions() != 0) {
      sink.error("snapshot", "bus '" + target.name + "' has " +
                                 std::to_string(target.bus->pending_transactions()) +
                                 " pending transactions; checkpoint between quiescent points");
      ok = false;
    }
  }
  // Outstanding expectations are restorable only when a registered target
  // owns them: a watchdog's armed flag travels in the watchdog section, a
  // supervisor's pending-restart queue in the supervisor section. Anything
  // else — an in-flight bus-port transaction, a custom expectation — holds
  // callbacks this format cannot serialize.
  for (const auto& expectation : out.kernel.expectations) {
    if (expectation.outstanding == 0) continue;
    bool owned = false;
    for (const WatchdogTarget& target : targets.watchdogs) {
      owned = owned ||
              expectation.label == "watchdog " + target.watchdog->name() + " armed";
    }
    for (const SupervisorTarget& target : targets.supervisors) {
      owned = owned || expectation.label == target.supervisor->restart_expectation_label();
    }
    if (!owned) {
      sink.error("snapshot",
                 "expectation '" + expectation.label + "' has " +
                     std::to_string(expectation.outstanding) +
                     " outstanding instances not owned by a registered watchdog or supervisor");
      ok = false;
    }
  }
  if (!ok) return false;

  out.kernel_timed_labels.reserve(out.kernel.timed.size());
  for (const auto& timed : out.kernel.timed) {
    out.kernel_timed_labels.push_back(targets.kernel->process_label(timed.process));
  }
  if (targets.fault_plan != nullptr) {
    SnapshotImage::FaultPlanState plan;
    plan.seed = targets.fault_plan->seed();
    for (std::size_t i = 0; i < sim::kFaultSiteCount; ++i) {
      const auto site = static_cast<sim::FaultSite>(i);
      plan.sites.emplace_back(site, targets.fault_plan->site_state(site));
    }
    out.fault_plan = std::move(plan);
  }
  if (targets.recorder != nullptr) {
    out.recorder = SnapshotImage::RecorderState{targets.recorder->total_events(),
                                                targets.recorder->log()};
  }
  for (const MachineTarget& target : targets.machines) {
    out.machines.push_back({target.name, target.instance->capture()});
  }
  for (const BusTarget& target : targets.buses) {
    out.buses.push_back({target.name, target.bus->capture_checkpoint()});
  }
  for (const WatchdogTarget& target : targets.watchdogs) {
    out.watchdogs.push_back({target.name, target.watchdog->capture_checkpoint()});
  }
  for (const SupervisorTarget& target : targets.supervisors) {
    out.supervisors.push_back({target.name, target.supervisor->capture_checkpoint()});
  }
  for (const BreakerTarget& target : targets.breakers) {
    out.breakers.push_back({target.name, target.breaker->capture_checkpoint()});
  }
  for (const HealthTarget& target : targets.health) {
    out.health.push_back({target.name, target.registry->capture_checkpoint()});
  }
  for (const ValueBank& bank : targets.banks) {
    out.banks.push_back({bank.name, bank.capture()});
  }
  image = std::move(out);
  return true;
}

// --- XML encoding ------------------------------------------------------------

std::string image_to_xml(const SnapshotImage& image) {
  xmi::XmlNode root{std::string(kRootName)};
  write_kernel(root, image);
  if (image.fault_plan) write_fault_plan(root, *image.fault_plan);
  if (image.recorder) write_recorder(root, *image.recorder);
  for (const auto& entry : image.machines) write_machine(root, entry.name, entry.state);
  for (const auto& entry : image.buses) write_bus(root, entry.name, entry.state);
  for (const auto& entry : image.watchdogs) write_watchdog(root, entry.name, entry.state);
  for (const auto& entry : image.supervisors) write_supervisor(root, entry.name, entry.state);
  for (const auto& entry : image.breakers) write_breaker(root, entry.name, entry.state);
  for (const auto& entry : image.health) write_health(root, entry.name, entry.state);
  for (const auto& entry : image.banks) write_bank(root, entry.name, entry.state);

  // Per-section checksums first (they become part of the hashed document
  // content), then the document-level attributes.
  for (const auto& child : root.children()) {
    child->set_attribute("checksum", to_hex(section_checksum(*child)));
  }
  root.set_attribute("version", std::to_string(kSnapshotVersion));
  root.set_attribute("checksum", to_hex(content_checksum(root)));
  return root.str();
}

// --- XML decoding ------------------------------------------------------------

bool image_from_xml(std::string_view input, SnapshotImage& image,
                    support::DiagnosticSink& sink) {
  const std::unique_ptr<xmi::XmlNode> root = xmi::parse_xml(input, sink);
  if (root == nullptr) {
    sink.error("snapshot", "input is not a well-formed snapshot document");
    return false;
  }
  if (root->name() != kRootName) {
    sink.error("snapshot", "root element is <" + root->name() + ">, expected <" +
                               std::string(kRootName) + ">");
    return false;
  }
  int version = 0;
  if (!read_integer(*root, "version", version, sink)) return false;
  if (version != kSnapshotVersion) {
    sink.error("snapshot", "unsupported snapshot version " + std::to_string(version) +
                               " (this build reads version " +
                               std::to_string(kSnapshotVersion) + ")");
    return false;
  }
  std::uint64_t stored_checksum = 0;
  if (!read_integer(*root, "checksum", stored_checksum, sink, 16)) return false;
  const std::uint64_t computed = content_checksum(*root);
  if (computed != stored_checksum) {
    sink.error("snapshot", "checksum mismatch: stored " + to_hex(stored_checksum) +
                               ", computed " + to_hex(computed) +
                               " — the snapshot is corrupted");
    // Re-verify every section's own checksum so the report names the
    // damaged section(s) instead of just the document hash.
    std::size_t index = 0;
    for (const auto& child : root->children()) {
      std::uint64_t stored_section = 0;
      support::DiagnosticSink quiet;
      if (read_integer(*child, "checksum", stored_section, quiet, 16)) {
        const std::uint64_t section_computed = section_checksum(*child);
        if (section_computed != stored_section) {
          sink.error("snapshot", "section checksum mismatch in " + describe_section(*child) +
                                     " (section #" + std::to_string(index) + "): stored " +
                                     to_hex(stored_section) + ", computed " +
                                     to_hex(section_computed));
        }
      } else {
        sink.error("snapshot", "section " + describe_section(*child) + " (section #" +
                                   std::to_string(index) +
                                   ") has a missing or malformed checksum attribute");
      }
      ++index;
    }
    return false;
  }
  // Document hash intact: still hold every section to a present, correct
  // checksum so hand-assembled documents keep the per-section framing.
  {
    bool sections_ok = true;
    std::size_t index = 0;
    for (const auto& child : root->children()) {
      std::uint64_t stored_section = 0;
      if (!read_integer(*child, "checksum", stored_section, sink, 16)) {
        sections_ok = false;
      } else if (section_checksum(*child) != stored_section) {
        sink.error("snapshot", "section checksum mismatch in " + describe_section(*child) +
                                   " (section #" + std::to_string(index) + "): stored " +
                                   to_hex(stored_section) + ", computed " +
                                   to_hex(section_checksum(*child)));
        sections_ok = false;
      }
      ++index;
    }
    if (!sections_ok) return false;
  }

  SnapshotImage out;
  bool ok = true;
  bool kernel_seen = false;
  for (const auto& child : root->children()) {
    const std::string& element = child->name();
    if (element == "kernel") {
      if (kernel_seen) {
        sink.error("snapshot", "duplicate <kernel> section");
        ok = false;
        continue;
      }
      kernel_seen = true;
      ok = read_kernel(*child, out.kernel, out.kernel_timed_labels, sink) && ok;
    } else if (element == "fault-plan") {
      if (out.fault_plan) {
        sink.error("snapshot", "duplicate <fault-plan> section");
        ok = false;
        continue;
      }
      SnapshotImage::FaultPlanState plan;
      ok = read_fault_plan(*child, plan, sink) && ok;
      out.fault_plan = std::move(plan);
    } else if (element == "recorder") {
      if (out.recorder) {
        sink.error("snapshot", "duplicate <recorder> section");
        ok = false;
        continue;
      }
      SnapshotImage::RecorderState recorder;
      ok = read_recorder(*child, recorder, sink) && ok;
      out.recorder = std::move(recorder);
    } else if (element == "machine") {
      SnapshotImage::Named<statechart::InstanceSnapshot> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_machine(*child, entry.state, sink) && ok;
      out.machines.push_back(std::move(entry));
    } else if (element == "bus") {
      SnapshotImage::Named<sim::MemoryMappedBus::Checkpoint> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_bus(*child, entry.state, sink) && ok;
      out.buses.push_back(std::move(entry));
    } else if (element == "watchdog") {
      SnapshotImage::Named<sim::Watchdog::Checkpoint> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_watchdog(*child, entry.state, sink) && ok;
      out.watchdogs.push_back(std::move(entry));
    } else if (element == "supervisor") {
      SnapshotImage::Named<sim::Supervisor::Checkpoint> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_supervisor(*child, entry.state, sink) && ok;
      out.supervisors.push_back(std::move(entry));
    } else if (element == "breaker") {
      SnapshotImage::Named<sim::CircuitBreaker::Checkpoint> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_breaker(*child, entry.state, sink) && ok;
      out.breakers.push_back(std::move(entry));
    } else if (element == "health") {
      SnapshotImage::Named<sim::HealthRegistry::Checkpoint> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_health(*child, entry.state, sink) && ok;
      out.health.push_back(std::move(entry));
    } else if (element == "bank") {
      SnapshotImage::Named<std::vector<std::pair<std::string, std::uint64_t>>> entry;
      ok = read_string(*child, "name", entry.name, sink) && ok;
      ok = read_bank(*child, entry.state, sink) && ok;
      out.banks.push_back(std::move(entry));
    } else {
      sink.error("snapshot", "unknown section <" + element + ">");
      ok = false;
    }
  }
  if (!kernel_seen) {
    sink.error("snapshot", "missing <kernel> section");
    ok = false;
  }
  if (!ok) return false;
  image = std::move(out);
  return true;
}

// --- apply -------------------------------------------------------------------

bool apply_image(const SnapshotTargets& targets, const SnapshotImage& image,
                 support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }

  bool ok = true;
  if (image.fault_plan.has_value() != (targets.fault_plan != nullptr)) {
    sink.error("snapshot", image.fault_plan
                               ? "snapshot has a <fault-plan> section but no plan is registered"
                               : "no <fault-plan> section for the registered plan");
    ok = false;
  } else if (image.fault_plan && image.fault_plan->seed != targets.fault_plan->seed()) {
    sink.error("snapshot", "fault-plan seed mismatch: snapshot " +
                               std::to_string(image.fault_plan->seed) + ", registered plan " +
                               std::to_string(targets.fault_plan->seed()));
    ok = false;
  }
  if (image.recorder.has_value() != (targets.recorder != nullptr)) {
    sink.error("snapshot", image.recorder
                               ? "snapshot has a <recorder> section but no recorder is registered"
                               : "no <recorder> section for the registered recorder");
    ok = false;
  }

  std::vector<std::size_t> machine_order;
  std::vector<std::size_t> bus_order;
  std::vector<std::size_t> watchdog_order;
  std::vector<std::size_t> supervisor_order;
  std::vector<std::size_t> breaker_order;
  std::vector<std::size_t> health_order;
  std::vector<std::size_t> bank_order;
  ok = match_sections("machine", image.machines, targets.machines, machine_order, sink) && ok;
  ok = match_sections("bus", image.buses, targets.buses, bus_order, sink) && ok;
  ok = match_sections("watchdog", image.watchdogs, targets.watchdogs, watchdog_order, sink) &&
       ok;
  ok = match_sections("supervisor", image.supervisors, targets.supervisors, supervisor_order,
                      sink) &&
       ok;
  ok = match_sections("breaker", image.breakers, targets.breakers, breaker_order, sink) && ok;
  ok = match_sections("health", image.health, targets.health, health_order, sink) && ok;
  ok = match_sections("bank", image.banks, targets.banks, bank_order, sink) && ok;
  if (!ok) return false;

  // Apply. The kernel goes first (it validates process addressing and wipes
  // construction-time scheduling); watchdogs after it (their expectation
  // counts arrive with the kernel's registry).
  if (!targets.kernel->restore_checkpoint(image.kernel, sink)) return false;
  if (image.fault_plan) {
    for (const auto& [site, state] : image.fault_plan->sites) {
      targets.fault_plan->restore_site_state(site, state);
    }
  }
  for (std::size_t i = 0; i < targets.machines.size(); ++i) {
    if (!targets.machines[i].instance->restore(image.machines[machine_order[i]].state, sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.buses.size(); ++i) {
    targets.buses[i].bus->restore_checkpoint(image.buses[bus_order[i]].state);
  }
  for (std::size_t i = 0; i < targets.watchdogs.size(); ++i) {
    targets.watchdogs[i].watchdog->restore_checkpoint(
        image.watchdogs[watchdog_order[i]].state);
  }
  for (std::size_t i = 0; i < targets.supervisors.size(); ++i) {
    if (!targets.supervisors[i].supervisor->restore_checkpoint(
            image.supervisors[supervisor_order[i]].state, sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.breakers.size(); ++i) {
    if (!targets.breakers[i].breaker->restore_checkpoint(image.breakers[breaker_order[i]].state,
                                                         sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.health.size(); ++i) {
    if (!targets.health[i].registry->restore_checkpoint(image.health[health_order[i]].state,
                                                        sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.banks.size(); ++i) {
    if (!targets.banks[i].restore(image.banks[bank_order[i]].state, sink)) return false;
  }
  if (targets.recorder != nullptr) {
    targets.recorder->restore_log(image.recorder->events, image.recorder->total);
  }
  return true;
}

// --- save / restore ----------------------------------------------------------

bool save_snapshot(const SnapshotTargets& targets, std::string& out,
                   support::DiagnosticSink& sink) {
  const auto started = std::chrono::steady_clock::now();
  SnapshotImage image;
  if (!capture_image(targets, image, sink)) return false;
  out = image_to_xml(image);
  const std::size_t sections = image.section_count();
  targets.kernel->note_snapshot_encode(out.size(), sections, sections, elapsed_ns(started));
  return true;
}

bool restore_snapshot(const SnapshotTargets& targets, std::string_view input,
                      support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }
  const auto started = std::chrono::steady_clock::now();
  SnapshotImage image;
  if (!image_from_xml(input, image, sink)) return false;
  if (!apply_image(targets, image, sink)) return false;
  targets.kernel->note_snapshot_restore(elapsed_ns(started));
  return true;
}

// --- warm-restart factories --------------------------------------------------

std::function<bool()> restart_from_snapshot(statechart::Engine& instance,
                                            support::DiagnosticSink& sink) {
  auto snapshot = std::make_shared<statechart::InstanceSnapshot>(instance.capture());
  return [&instance, &sink, snapshot] { return instance.restore(*snapshot, sink); };
}

std::function<bool()> restart_from_bank(ValueBank bank, support::DiagnosticSink& sink) {
  auto values = std::make_shared<std::vector<std::pair<std::string, std::uint64_t>>>(
      bank.capture());
  return [bank = std::move(bank), &sink, values] { return bank.restore(*values, sink); };
}

}  // namespace umlsoc::replay
