#include "replay/snapshot.hpp"

#include <charconv>
#include <map>
#include <memory>

#include "xmi/xml.hpp"

namespace umlsoc::replay {

namespace {

constexpr std::string_view kRootName = "umlsoc-snapshot";

// --- checksum ----------------------------------------------------------------

/// FNV-1a over the canonical serialization of the root's children. The xmi
/// writer is canonical (attribute insertion order preserved, fixed indent,
/// whitespace-only text dropped by the parser), so parse + re-serialize
/// reproduces the hashed bytes exactly and any corruption of the stored
/// content shows up as a mismatch.
std::uint64_t fnv1a(std::string_view data, std::uint64_t hash = 1469598103934665603ULL) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t content_checksum(const xmi::XmlNode& root) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const auto& child : root.children()) hash = fnv1a(child->str(1), hash);
  return hash;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  buffer[16] = '\0';
  return std::string(buffer);
}

// --- strict attribute readers ------------------------------------------------

std::string subject_of(const xmi::XmlNode& node) { return "snapshot <" + node.name() + ">"; }

template <typename T>
bool read_integer(const xmi::XmlNode& node, std::string_view key, T& out,
                  support::DiagnosticSink& sink, int base = 10) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  const char* first = raw->data();
  const char* last = first + raw->size();
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value, base);
  if (ec != std::errc() || ptr != last || raw->empty()) {
    sink.error(subject_of(node),
               "attribute '" + std::string(key) + "' is not a valid integer: '" + *raw + "'");
    return false;
  }
  out = value;
  return true;
}

bool read_bool(const xmi::XmlNode& node, std::string_view key, bool& out,
               support::DiagnosticSink& sink) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  if (*raw == "0") {
    out = false;
  } else if (*raw == "1") {
    out = true;
  } else {
    sink.error(subject_of(node),
               "attribute '" + std::string(key) + "' must be 0 or 1, got '" + *raw + "'");
    return false;
  }
  return true;
}

bool read_string(const xmi::XmlNode& node, std::string_view key, std::string& out,
                 support::DiagnosticSink& sink) {
  const std::string* raw = node.attribute(key);
  if (raw == nullptr) {
    sink.error(subject_of(node), "missing attribute '" + std::string(key) + "'");
    return false;
  }
  out = *raw;
  return true;
}

std::string bool_str(bool value) { return value ? "1" : "0"; }

// --- section writers ---------------------------------------------------------

void write_kernel(xmi::XmlNode& root, const sim::Kernel& kernel,
                  const sim::Kernel::Checkpoint& checkpoint) {
  xmi::XmlNode& node = root.add_child("kernel");
  node.set_attribute("now-ps", std::to_string(checkpoint.now_ps));
  node.set_attribute("sequence", std::to_string(checkpoint.sequence));
  node.set_attribute("delta-count", std::to_string(checkpoint.delta_count));
  node.set_attribute("events-processed", std::to_string(checkpoint.events_processed));
  node.set_attribute("process-count", std::to_string(checkpoint.process_count));
  for (const auto& timed : checkpoint.timed) {
    xmi::XmlNode& entry = node.add_child("timed");
    entry.set_attribute("at-ps", std::to_string(timed.at_ps));
    entry.set_attribute("seq", std::to_string(timed.sequence));
    entry.set_attribute("process", std::to_string(timed.process));
    const std::string& label = kernel.process_label(timed.process);
    if (!label.empty()) entry.set_attribute("label", label);
  }
  for (const auto& expectation : checkpoint.expectations) {
    xmi::XmlNode& entry = node.add_child("expectation");
    entry.set_attribute("label", expectation.label);
    entry.set_attribute("outstanding", std::to_string(expectation.outstanding));
  }
}

void write_fault_plan(xmi::XmlNode& root, const sim::FaultPlan& plan) {
  xmi::XmlNode& node = root.add_child("fault-plan");
  node.set_attribute("seed", std::to_string(plan.seed()));
  for (std::size_t i = 0; i < sim::kFaultSiteCount; ++i) {
    const auto site = static_cast<sim::FaultSite>(i);
    const sim::FaultPlan::SiteState state = plan.site_state(site);
    xmi::XmlNode& entry = node.add_child("site");
    entry.set_attribute("name", std::string(sim::to_string(site)));
    entry.set_attribute("rng-state", std::to_string(state.rng_state));
    entry.set_attribute("consults", std::to_string(state.counters.consults));
    entry.set_attribute("errors", std::to_string(state.counters.errors));
    entry.set_attribute("drops", std::to_string(state.counters.drops));
    entry.set_attribute("delays", std::to_string(state.counters.delays));
    entry.set_attribute("bit-flips", std::to_string(state.counters.bit_flips));
    entry.set_attribute("glitches", std::to_string(state.counters.glitches));
  }
}

void write_recorder(xmi::XmlNode& root, const sim::EventRecorder& recorder) {
  xmi::XmlNode& node = root.add_child("recorder");
  node.set_attribute("total", std::to_string(recorder.total_events()));
  for (const sim::RecordedEvent& event : recorder.log()) {
    xmi::XmlNode& entry = node.add_child("event");
    entry.set_attribute("at-ps", std::to_string(event.at_ps));
    entry.set_attribute("process", std::to_string(event.process));
  }
}

void write_event_records(xmi::XmlNode& node, const char* element,
                         const std::vector<statechart::InstanceSnapshot::EventRecord>& records) {
  for (const auto& record : records) {
    xmi::XmlNode& entry = node.add_child(element);
    entry.set_attribute("name", record.name);
    entry.set_attribute("data", std::to_string(record.data));
    if (!record.tag.empty()) entry.set_attribute("tag", record.tag);
  }
}

void write_machine(xmi::XmlNode& root, const MachineTarget& target) {
  const statechart::InstanceSnapshot snapshot = target.instance->capture();
  xmi::XmlNode& node = root.add_child("machine");
  node.set_attribute("name", target.name);
  node.set_attribute("started", bool_str(snapshot.started));
  node.set_attribute("terminated", bool_str(snapshot.terminated));
  node.set_attribute("events-processed", std::to_string(snapshot.events_processed));
  node.set_attribute("transitions-fired", std::to_string(snapshot.transitions_fired));
  node.set_attribute("errors-raised", std::to_string(snapshot.errors_raised));
  node.set_attribute("errors-unhandled", std::to_string(snapshot.errors_unhandled));
  for (std::uint32_t index : snapshot.active_states) {
    node.add_child("active-state").set_attribute("index", std::to_string(index));
  }
  for (std::uint32_t index : snapshot.active_finals) {
    node.add_child("active-final").set_attribute("index", std::to_string(index));
  }
  for (const auto& [region, state] : snapshot.shallow_history) {
    xmi::XmlNode& entry = node.add_child("shallow-history");
    entry.set_attribute("region", std::to_string(region));
    entry.set_attribute("state", std::to_string(state));
  }
  for (const auto& [region, leaves] : snapshot.deep_history) {
    xmi::XmlNode& entry = node.add_child("deep-history");
    entry.set_attribute("region", std::to_string(region));
    for (std::uint32_t leaf : leaves) {
      entry.add_child("leaf").set_attribute("index", std::to_string(leaf));
    }
  }
  for (const auto& [name, value] : snapshot.variables) {
    xmi::XmlNode& entry = node.add_child("variable");
    entry.set_attribute("name", name);
    entry.set_attribute("value", std::to_string(value));
  }
  write_event_records(node, "queued", snapshot.queue);
  write_event_records(node, "deferred", snapshot.deferred);
}

void write_bus(xmi::XmlNode& root, const BusTarget& target) {
  const sim::MemoryMappedBus::Checkpoint checkpoint = target.bus->capture_checkpoint();
  xmi::XmlNode& node = root.add_child("bus");
  node.set_attribute("name", target.name);
  node.set_attribute("reads", std::to_string(checkpoint.stats.reads));
  node.set_attribute("writes", std::to_string(checkpoint.stats.writes));
  node.set_attribute("errors", std::to_string(checkpoint.stats.errors));
  node.set_attribute("injected-errors", std::to_string(checkpoint.stats.injected_errors));
  node.set_attribute("injected-drops", std::to_string(checkpoint.stats.injected_drops));
  node.set_attribute("injected-delays", std::to_string(checkpoint.stats.injected_delays));
  node.set_attribute("injected-bit-flips", std::to_string(checkpoint.stats.injected_bit_flips));
  node.set_attribute("completions", std::to_string(checkpoint.stats.completions));
  node.set_attribute("dropped-completions",
                     std::to_string(checkpoint.stats.dropped_completions));
  node.set_attribute("last-completion-ps", std::to_string(checkpoint.last_completion_ps));
}

void write_watchdog(xmi::XmlNode& root, const WatchdogTarget& target) {
  const sim::Watchdog::Checkpoint checkpoint = target.watchdog->capture_checkpoint();
  xmi::XmlNode& node = root.add_child("watchdog");
  node.set_attribute("name", target.name);
  node.set_attribute("armed", bool_str(checkpoint.armed));
  node.set_attribute("tripped", bool_str(checkpoint.tripped));
  node.set_attribute("check-pending", bool_str(checkpoint.check_pending));
  node.set_attribute("trip-at-ps", std::to_string(checkpoint.trip_at_ps));
  node.set_attribute("trips", std::to_string(checkpoint.trips));
  node.set_attribute("kicks", std::to_string(checkpoint.kicks));
}

void write_supervisor(xmi::XmlNode& root, const SupervisorTarget& target) {
  const sim::Supervisor::Checkpoint checkpoint = target.supervisor->capture_checkpoint();
  xmi::XmlNode& node = root.add_child("supervisor");
  node.set_attribute("name", target.name);
  node.set_attribute("suspended", bool_str(checkpoint.suspended));
  node.set_attribute("gave-up", bool_str(checkpoint.gave_up));
  node.set_attribute("give-up-reason", checkpoint.give_up_reason);
  node.set_attribute("escalations", std::to_string(checkpoint.escalations));
  for (std::uint64_t at_ps : checkpoint.window) {
    node.add_child("window").set_attribute("at-ps", std::to_string(at_ps));
  }
  for (const auto& child : checkpoint.children) {
    xmi::XmlNode& entry = node.add_child("child");
    entry.set_attribute("failures", std::to_string(child.failures));
    entry.set_attribute("restarts", std::to_string(child.restarts));
    entry.set_attribute("failed-restarts", std::to_string(child.failed_restarts));
    entry.set_attribute("consecutive", std::to_string(child.consecutive));
    entry.set_attribute("last-failure-ps", std::to_string(child.last_failure_ps));
  }
  for (const auto& pending : checkpoint.pending) {
    xmi::XmlNode& entry = node.add_child("pending");
    entry.set_attribute("due-ps", std::to_string(pending.due_ps));
    entry.set_attribute("child", std::to_string(pending.child));
  }
}

void write_breaker(xmi::XmlNode& root, const BreakerTarget& target) {
  const sim::CircuitBreaker::Checkpoint checkpoint = target.breaker->capture_checkpoint();
  xmi::XmlNode& node = root.add_child("breaker");
  node.set_attribute("name", target.name);
  node.set_attribute("state", std::to_string(checkpoint.state));
  node.set_attribute("outcomes", std::to_string(checkpoint.outcomes));
  node.set_attribute("cursor", std::to_string(checkpoint.cursor));
  node.set_attribute("samples", std::to_string(checkpoint.samples));
  node.set_attribute("failures-in-window", std::to_string(checkpoint.failures_in_window));
  node.set_attribute("open-duration-ps", std::to_string(checkpoint.open_duration_ps));
  node.set_attribute("reopen-at-ps", std::to_string(checkpoint.reopen_at_ps));
  node.set_attribute("timer-pending", bool_str(checkpoint.timer_pending));
  node.set_attribute("probe-in-flight", bool_str(checkpoint.probe_in_flight));
  node.set_attribute("issued", std::to_string(checkpoint.stats.issued));
  node.set_attribute("ok", std::to_string(checkpoint.stats.ok));
  node.set_attribute("failures", std::to_string(checkpoint.stats.failures));
  node.set_attribute("fast-failed", std::to_string(checkpoint.stats.fast_failed));
  node.set_attribute("opens", std::to_string(checkpoint.stats.opens));
  node.set_attribute("closes", std::to_string(checkpoint.stats.closes));
  node.set_attribute("probes", std::to_string(checkpoint.stats.probes));
  node.set_attribute("probe-failures", std::to_string(checkpoint.stats.probe_failures));
}

void write_health(xmi::XmlNode& root, const HealthTarget& target) {
  const sim::HealthRegistry::Checkpoint checkpoint = target.registry->capture_checkpoint();
  xmi::XmlNode& node = root.add_child("health");
  node.set_attribute("name", target.name);
  node.set_attribute("transitions", std::to_string(checkpoint.transitions));
  for (std::uint8_t value : checkpoint.health) {
    node.add_child("unit").set_attribute("health", std::to_string(value));
  }
}

void write_bank(xmi::XmlNode& root, const ValueBank& bank) {
  xmi::XmlNode& node = root.add_child("bank");
  node.set_attribute("name", bank.name);
  for (const auto& [key, value] : bank.capture()) {
    xmi::XmlNode& entry = node.add_child("value");
    entry.set_attribute("key", key);
    entry.set_attribute("value", std::to_string(value));
  }
}

// --- section readers (decode only, no targets touched) -----------------------

bool read_kernel(const xmi::XmlNode& node, sim::Kernel::Checkpoint& out,
                 support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "now-ps", out.now_ps, sink);
  ok = read_integer(node, "sequence", out.sequence, sink) && ok;
  ok = read_integer(node, "delta-count", out.delta_count, sink) && ok;
  ok = read_integer(node, "events-processed", out.events_processed, sink) && ok;
  ok = read_integer(node, "process-count", out.process_count, sink) && ok;
  for (const auto& child : node.children()) {
    if (child->name() == "timed") {
      sim::Kernel::Checkpoint::PendingTimed timed;
      ok = read_integer(*child, "at-ps", timed.at_ps, sink) && ok;
      ok = read_integer(*child, "seq", timed.sequence, sink) && ok;
      ok = read_integer(*child, "process", timed.process, sink) && ok;
      out.timed.push_back(timed);
    } else if (child->name() == "expectation") {
      sim::Kernel::Checkpoint::ExpectationEntry entry;
      ok = read_string(*child, "label", entry.label, sink) && ok;
      ok = read_integer(*child, "outstanding", entry.outstanding, sink) && ok;
      out.expectations.push_back(std::move(entry));
    } else {
      sink.error(subject_of(node), "unknown element <" + child->name() + ">");
      ok = false;
    }
  }
  return ok;
}

bool read_fault_plan(const xmi::XmlNode& node, std::uint64_t& seed,
                     std::vector<std::pair<sim::FaultSite, sim::FaultPlan::SiteState>>& sites,
                     support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "seed", seed, sink);
  for (const xmi::XmlNode* entry : node.children_named("site")) {
    std::string name;
    if (!read_string(*entry, "name", name, sink)) {
      ok = false;
      continue;
    }
    bool known = false;
    sim::FaultSite site = sim::FaultSite::kBusRead;
    for (std::size_t i = 0; i < sim::kFaultSiteCount; ++i) {
      if (name == sim::to_string(static_cast<sim::FaultSite>(i))) {
        site = static_cast<sim::FaultSite>(i);
        known = true;
        break;
      }
    }
    if (!known) {
      sink.error(subject_of(node), "unknown fault site '" + name + "'");
      ok = false;
      continue;
    }
    sim::FaultPlan::SiteState state;
    ok = read_integer(*entry, "rng-state", state.rng_state, sink) && ok;
    ok = read_integer(*entry, "consults", state.counters.consults, sink) && ok;
    ok = read_integer(*entry, "errors", state.counters.errors, sink) && ok;
    ok = read_integer(*entry, "drops", state.counters.drops, sink) && ok;
    ok = read_integer(*entry, "delays", state.counters.delays, sink) && ok;
    ok = read_integer(*entry, "bit-flips", state.counters.bit_flips, sink) && ok;
    ok = read_integer(*entry, "glitches", state.counters.glitches, sink) && ok;
    sites.emplace_back(site, state);
  }
  return ok;
}

bool read_recorder(const xmi::XmlNode& node, std::uint64_t& total,
                   std::vector<sim::RecordedEvent>& events, support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "total", total, sink);
  for (const xmi::XmlNode* entry : node.children_named("event")) {
    sim::RecordedEvent event;
    ok = read_integer(*entry, "at-ps", event.at_ps, sink) && ok;
    ok = read_integer(*entry, "process", event.process, sink) && ok;
    events.push_back(event);
  }
  if (ok && events.size() > total) {
    sink.error(subject_of(node), "log holds " + std::to_string(events.size()) +
                                     " events but total says " + std::to_string(total));
    ok = false;
  }
  return ok;
}

bool read_event_records(const xmi::XmlNode& node, const char* element,
                        std::vector<statechart::InstanceSnapshot::EventRecord>& out,
                        support::DiagnosticSink& sink) {
  bool ok = true;
  for (const xmi::XmlNode* entry : node.children_named(element)) {
    statechart::InstanceSnapshot::EventRecord record;
    ok = read_string(*entry, "name", record.name, sink) && ok;
    ok = read_integer(*entry, "data", record.data, sink) && ok;
    record.tag = entry->attribute_or("tag", "");
    out.push_back(std::move(record));
  }
  return ok;
}

bool read_machine(const xmi::XmlNode& node, statechart::InstanceSnapshot& out,
                  support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "started", out.started, sink);
  ok = read_bool(node, "terminated", out.terminated, sink) && ok;
  ok = read_integer(node, "events-processed", out.events_processed, sink) && ok;
  ok = read_integer(node, "transitions-fired", out.transitions_fired, sink) && ok;
  ok = read_integer(node, "errors-raised", out.errors_raised, sink) && ok;
  ok = read_integer(node, "errors-unhandled", out.errors_unhandled, sink) && ok;
  for (const xmi::XmlNode* entry : node.children_named("active-state")) {
    std::uint32_t index = 0;
    ok = read_integer(*entry, "index", index, sink) && ok;
    out.active_states.push_back(index);
  }
  for (const xmi::XmlNode* entry : node.children_named("active-final")) {
    std::uint32_t index = 0;
    ok = read_integer(*entry, "index", index, sink) && ok;
    out.active_finals.push_back(index);
  }
  for (const xmi::XmlNode* entry : node.children_named("shallow-history")) {
    std::uint32_t region = 0;
    std::uint32_t state = 0;
    ok = read_integer(*entry, "region", region, sink) && ok;
    ok = read_integer(*entry, "state", state, sink) && ok;
    out.shallow_history.emplace_back(region, state);
  }
  for (const xmi::XmlNode* entry : node.children_named("deep-history")) {
    std::uint32_t region = 0;
    ok = read_integer(*entry, "region", region, sink) && ok;
    std::vector<std::uint32_t> leaves;
    for (const xmi::XmlNode* leaf : entry->children_named("leaf")) {
      std::uint32_t index = 0;
      ok = read_integer(*leaf, "index", index, sink) && ok;
      leaves.push_back(index);
    }
    out.deep_history.emplace_back(region, std::move(leaves));
  }
  for (const xmi::XmlNode* entry : node.children_named("variable")) {
    std::string name;
    std::int64_t value = 0;
    ok = read_string(*entry, "name", name, sink) && ok;
    ok = read_integer(*entry, "value", value, sink) && ok;
    out.variables.emplace_back(std::move(name), value);
  }
  ok = read_event_records(node, "queued", out.queue, sink) && ok;
  ok = read_event_records(node, "deferred", out.deferred, sink) && ok;
  return ok;
}

bool read_bus(const xmi::XmlNode& node, sim::MemoryMappedBus::Checkpoint& out,
              support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "reads", out.stats.reads, sink);
  ok = read_integer(node, "writes", out.stats.writes, sink) && ok;
  ok = read_integer(node, "errors", out.stats.errors, sink) && ok;
  ok = read_integer(node, "injected-errors", out.stats.injected_errors, sink) && ok;
  ok = read_integer(node, "injected-drops", out.stats.injected_drops, sink) && ok;
  ok = read_integer(node, "injected-delays", out.stats.injected_delays, sink) && ok;
  ok = read_integer(node, "injected-bit-flips", out.stats.injected_bit_flips, sink) && ok;
  ok = read_integer(node, "completions", out.stats.completions, sink) && ok;
  ok = read_integer(node, "dropped-completions", out.stats.dropped_completions, sink) && ok;
  ok = read_integer(node, "last-completion-ps", out.last_completion_ps, sink) && ok;
  return ok;
}

bool read_watchdog(const xmi::XmlNode& node, sim::Watchdog::Checkpoint& out,
                   support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "armed", out.armed, sink);
  ok = read_bool(node, "tripped", out.tripped, sink) && ok;
  ok = read_bool(node, "check-pending", out.check_pending, sink) && ok;
  ok = read_integer(node, "trip-at-ps", out.trip_at_ps, sink) && ok;
  ok = read_integer(node, "trips", out.trips, sink) && ok;
  ok = read_integer(node, "kicks", out.kicks, sink) && ok;
  return ok;
}

bool read_supervisor(const xmi::XmlNode& node, sim::Supervisor::Checkpoint& out,
                     support::DiagnosticSink& sink) {
  bool ok = read_bool(node, "suspended", out.suspended, sink);
  ok = read_bool(node, "gave-up", out.gave_up, sink) && ok;
  ok = read_string(node, "give-up-reason", out.give_up_reason, sink) && ok;
  ok = read_integer(node, "escalations", out.escalations, sink) && ok;
  for (const xmi::XmlNode* entry : node.children_named("window")) {
    std::uint64_t at_ps = 0;
    ok = read_integer(*entry, "at-ps", at_ps, sink) && ok;
    out.window.push_back(at_ps);
  }
  for (const xmi::XmlNode* entry : node.children_named("child")) {
    sim::Supervisor::Checkpoint::ChildState child;
    ok = read_integer(*entry, "failures", child.failures, sink) && ok;
    ok = read_integer(*entry, "restarts", child.restarts, sink) && ok;
    ok = read_integer(*entry, "failed-restarts", child.failed_restarts, sink) && ok;
    ok = read_integer(*entry, "consecutive", child.consecutive, sink) && ok;
    ok = read_integer(*entry, "last-failure-ps", child.last_failure_ps, sink) && ok;
    out.children.push_back(child);
  }
  for (const xmi::XmlNode* entry : node.children_named("pending")) {
    sim::Supervisor::Checkpoint::PendingRestart pending;
    ok = read_integer(*entry, "due-ps", pending.due_ps, sink) && ok;
    ok = read_integer(*entry, "child", pending.child, sink) && ok;
    out.pending.push_back(pending);
  }
  return ok;
}

bool read_breaker(const xmi::XmlNode& node, sim::CircuitBreaker::Checkpoint& out,
                  support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "state", out.state, sink);
  ok = read_integer(node, "outcomes", out.outcomes, sink) && ok;
  ok = read_integer(node, "cursor", out.cursor, sink) && ok;
  ok = read_integer(node, "samples", out.samples, sink) && ok;
  ok = read_integer(node, "failures-in-window", out.failures_in_window, sink) && ok;
  ok = read_integer(node, "open-duration-ps", out.open_duration_ps, sink) && ok;
  ok = read_integer(node, "reopen-at-ps", out.reopen_at_ps, sink) && ok;
  ok = read_bool(node, "timer-pending", out.timer_pending, sink) && ok;
  ok = read_bool(node, "probe-in-flight", out.probe_in_flight, sink) && ok;
  ok = read_integer(node, "issued", out.stats.issued, sink) && ok;
  ok = read_integer(node, "ok", out.stats.ok, sink) && ok;
  ok = read_integer(node, "failures", out.stats.failures, sink) && ok;
  ok = read_integer(node, "fast-failed", out.stats.fast_failed, sink) && ok;
  ok = read_integer(node, "opens", out.stats.opens, sink) && ok;
  ok = read_integer(node, "closes", out.stats.closes, sink) && ok;
  ok = read_integer(node, "probes", out.stats.probes, sink) && ok;
  ok = read_integer(node, "probe-failures", out.stats.probe_failures, sink) && ok;
  return ok;
}

bool read_health(const xmi::XmlNode& node, sim::HealthRegistry::Checkpoint& out,
                 support::DiagnosticSink& sink) {
  bool ok = read_integer(node, "transitions", out.transitions, sink);
  for (const xmi::XmlNode* entry : node.children_named("unit")) {
    std::uint8_t value = 0;
    ok = read_integer(*entry, "health", value, sink) && ok;
    out.health.push_back(value);
  }
  return ok;
}

bool read_bank(const xmi::XmlNode& node,
               std::vector<std::pair<std::string, std::uint64_t>>& out,
               support::DiagnosticSink& sink) {
  bool ok = true;
  for (const xmi::XmlNode* entry : node.children_named("value")) {
    std::string key;
    std::uint64_t value = 0;
    ok = read_string(*entry, "key", key, sink) && ok;
    ok = read_integer(*entry, "value", value, sink) && ok;
    out.emplace_back(std::move(key), value);
  }
  return ok;
}

/// Collects the document's sections of one element kind into a name->node
/// map, then checks that map and the targets' names match one-to-one.
template <typename Target>
bool match_sections(const xmi::XmlNode& root, std::string_view element,
                    const std::vector<Target>& targets,
                    std::map<std::string, const xmi::XmlNode*>& out,
                    support::DiagnosticSink& sink) {
  bool ok = true;
  for (const xmi::XmlNode* node : root.children_named(element)) {
    std::string name;
    if (!read_string(*node, "name", name, sink)) {
      ok = false;
      continue;
    }
    if (!out.emplace(name, node).second) {
      sink.error("snapshot", "duplicate <" + std::string(element) + "> section '" + name + "'");
      ok = false;
    }
  }
  for (const Target& target : targets) {
    if (out.find(target.name) == out.end()) {
      sink.error("snapshot",
                 "no <" + std::string(element) + "> section named '" + target.name + "'");
      ok = false;
    }
  }
  for (const auto& [name, node] : out) {
    bool registered = false;
    for (const Target& target : targets) registered = registered || target.name == name;
    if (!registered) {
      sink.error("snapshot", "<" + std::string(element) + "> section '" + name +
                                 "' has no registered target");
      ok = false;
    }
  }
  return ok;
}

}  // namespace

// --- save --------------------------------------------------------------------

bool save_snapshot(const SnapshotTargets& targets, std::string& out,
                   support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }

  sim::Kernel::Checkpoint kernel_checkpoint;
  if (!targets.kernel->capture_checkpoint(kernel_checkpoint, sink)) return false;

  bool ok = true;
  for (const BusTarget& target : targets.buses) {
    if (target.bus->pending_transactions() != 0) {
      sink.error("snapshot", "bus '" + target.name + "' has " +
                                 std::to_string(target.bus->pending_transactions()) +
                                 " pending transactions; checkpoint between quiescent points");
      ok = false;
    }
  }
  // Outstanding expectations are restorable only when a registered target
  // owns them: a watchdog's armed flag travels in the watchdog section, a
  // supervisor's pending-restart queue in the supervisor section. Anything
  // else — an in-flight bus-port transaction, a custom expectation — holds
  // callbacks this format cannot serialize.
  for (const auto& expectation : kernel_checkpoint.expectations) {
    if (expectation.outstanding == 0) continue;
    bool owned = false;
    for (const WatchdogTarget& target : targets.watchdogs) {
      owned = owned ||
              expectation.label == "watchdog " + target.watchdog->name() + " armed";
    }
    for (const SupervisorTarget& target : targets.supervisors) {
      owned = owned || expectation.label == target.supervisor->restart_expectation_label();
    }
    if (!owned) {
      sink.error("snapshot",
                 "expectation '" + expectation.label + "' has " +
                     std::to_string(expectation.outstanding) +
                     " outstanding instances not owned by a registered watchdog or supervisor");
      ok = false;
    }
  }
  if (!ok) return false;

  xmi::XmlNode root{std::string(kRootName)};
  write_kernel(root, *targets.kernel, kernel_checkpoint);
  if (targets.fault_plan != nullptr) write_fault_plan(root, *targets.fault_plan);
  if (targets.recorder != nullptr) write_recorder(root, *targets.recorder);
  for (const MachineTarget& target : targets.machines) write_machine(root, target);
  for (const BusTarget& target : targets.buses) write_bus(root, target);
  for (const WatchdogTarget& target : targets.watchdogs) write_watchdog(root, target);
  for (const SupervisorTarget& target : targets.supervisors) write_supervisor(root, target);
  for (const BreakerTarget& target : targets.breakers) write_breaker(root, target);
  for (const HealthTarget& target : targets.health) write_health(root, target);
  for (const ValueBank& bank : targets.banks) write_bank(root, bank);

  root.set_attribute("version", std::to_string(kSnapshotVersion));
  root.set_attribute("checksum", to_hex(content_checksum(root)));
  out = root.str();
  return true;
}

// --- restore -----------------------------------------------------------------

bool restore_snapshot(const SnapshotTargets& targets, std::string_view input,
                      support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }

  const std::unique_ptr<xmi::XmlNode> root = xmi::parse_xml(input, sink);
  if (root == nullptr) {
    sink.error("snapshot", "input is not a well-formed snapshot document");
    return false;
  }
  if (root->name() != kRootName) {
    sink.error("snapshot", "root element is <" + root->name() + ">, expected <" +
                               std::string(kRootName) + ">");
    return false;
  }
  int version = 0;
  if (!read_integer(*root, "version", version, sink)) return false;
  if (version != kSnapshotVersion) {
    sink.error("snapshot", "unsupported snapshot version " + std::to_string(version) +
                               " (this build reads version " +
                               std::to_string(kSnapshotVersion) + ")");
    return false;
  }
  std::uint64_t stored_checksum = 0;
  if (!read_integer(*root, "checksum", stored_checksum, sink, 16)) return false;
  const std::uint64_t computed = content_checksum(*root);
  if (computed != stored_checksum) {
    sink.error("snapshot", "checksum mismatch: stored " + to_hex(stored_checksum) +
                               ", computed " + to_hex(computed) +
                               " — the snapshot is corrupted");
    return false;
  }

  // Decode every section before touching any target.
  const xmi::XmlNode* kernel_node = root->child("kernel");
  if (kernel_node == nullptr) {
    sink.error("snapshot", "missing <kernel> section");
    return false;
  }
  sim::Kernel::Checkpoint kernel_checkpoint;
  bool ok = read_kernel(*kernel_node, kernel_checkpoint, sink);

  std::uint64_t fault_seed = 0;
  std::vector<std::pair<sim::FaultSite, sim::FaultPlan::SiteState>> sites;
  const xmi::XmlNode* fault_node = root->child("fault-plan");
  if ((fault_node != nullptr) != (targets.fault_plan != nullptr)) {
    sink.error("snapshot", fault_node != nullptr
                               ? "snapshot has a <fault-plan> section but no plan is registered"
                               : "no <fault-plan> section for the registered plan");
    ok = false;
  } else if (fault_node != nullptr) {
    ok = read_fault_plan(*fault_node, fault_seed, sites, sink) && ok;
    if (ok && fault_seed != targets.fault_plan->seed()) {
      sink.error("snapshot", "fault-plan seed mismatch: snapshot " +
                                 std::to_string(fault_seed) + ", registered plan " +
                                 std::to_string(targets.fault_plan->seed()));
      ok = false;
    }
  }

  std::uint64_t recorder_total = 0;
  std::vector<sim::RecordedEvent> recorder_events;
  const xmi::XmlNode* recorder_node = root->child("recorder");
  if ((recorder_node != nullptr) != (targets.recorder != nullptr)) {
    sink.error("snapshot", recorder_node != nullptr
                               ? "snapshot has a <recorder> section but no recorder is registered"
                               : "no <recorder> section for the registered recorder");
    ok = false;
  } else if (recorder_node != nullptr) {
    ok = read_recorder(*recorder_node, recorder_total, recorder_events, sink) && ok;
  }

  std::map<std::string, const xmi::XmlNode*> machine_nodes;
  std::map<std::string, const xmi::XmlNode*> bus_nodes;
  std::map<std::string, const xmi::XmlNode*> watchdog_nodes;
  std::map<std::string, const xmi::XmlNode*> supervisor_nodes;
  std::map<std::string, const xmi::XmlNode*> breaker_nodes;
  std::map<std::string, const xmi::XmlNode*> health_nodes;
  std::map<std::string, const xmi::XmlNode*> bank_nodes;
  ok = match_sections(*root, "machine", targets.machines, machine_nodes, sink) && ok;
  ok = match_sections(*root, "bus", targets.buses, bus_nodes, sink) && ok;
  ok = match_sections(*root, "watchdog", targets.watchdogs, watchdog_nodes, sink) && ok;
  ok = match_sections(*root, "supervisor", targets.supervisors, supervisor_nodes, sink) && ok;
  ok = match_sections(*root, "breaker", targets.breakers, breaker_nodes, sink) && ok;
  ok = match_sections(*root, "health", targets.health, health_nodes, sink) && ok;
  ok = match_sections(*root, "bank", targets.banks, bank_nodes, sink) && ok;
  if (!ok) return false;

  std::vector<statechart::InstanceSnapshot> machine_snapshots(targets.machines.size());
  for (std::size_t i = 0; i < targets.machines.size(); ++i) {
    ok = read_machine(*machine_nodes[targets.machines[i].name], machine_snapshots[i], sink) &&
         ok;
  }
  std::vector<sim::MemoryMappedBus::Checkpoint> bus_checkpoints(targets.buses.size());
  for (std::size_t i = 0; i < targets.buses.size(); ++i) {
    ok = read_bus(*bus_nodes[targets.buses[i].name], bus_checkpoints[i], sink) && ok;
  }
  std::vector<sim::Watchdog::Checkpoint> watchdog_checkpoints(targets.watchdogs.size());
  for (std::size_t i = 0; i < targets.watchdogs.size(); ++i) {
    ok = read_watchdog(*watchdog_nodes[targets.watchdogs[i].name], watchdog_checkpoints[i],
                       sink) &&
         ok;
  }
  std::vector<sim::Supervisor::Checkpoint> supervisor_checkpoints(targets.supervisors.size());
  for (std::size_t i = 0; i < targets.supervisors.size(); ++i) {
    ok = read_supervisor(*supervisor_nodes[targets.supervisors[i].name],
                         supervisor_checkpoints[i], sink) &&
         ok;
  }
  std::vector<sim::CircuitBreaker::Checkpoint> breaker_checkpoints(targets.breakers.size());
  for (std::size_t i = 0; i < targets.breakers.size(); ++i) {
    ok = read_breaker(*breaker_nodes[targets.breakers[i].name], breaker_checkpoints[i], sink) &&
         ok;
  }
  std::vector<sim::HealthRegistry::Checkpoint> health_checkpoints(targets.health.size());
  for (std::size_t i = 0; i < targets.health.size(); ++i) {
    ok = read_health(*health_nodes[targets.health[i].name], health_checkpoints[i], sink) && ok;
  }
  std::vector<std::vector<std::pair<std::string, std::uint64_t>>> bank_values(
      targets.banks.size());
  for (std::size_t i = 0; i < targets.banks.size(); ++i) {
    ok = read_bank(*bank_nodes[targets.banks[i].name], bank_values[i], sink) && ok;
  }
  if (!ok) return false;

  // Apply. The kernel goes first (it validates process addressing and wipes
  // construction-time scheduling); watchdogs after it (their expectation
  // counts arrive with the kernel's registry).
  if (!targets.kernel->restore_checkpoint(kernel_checkpoint, sink)) return false;
  for (const auto& [site, state] : sites) targets.fault_plan->restore_site_state(site, state);
  for (std::size_t i = 0; i < targets.machines.size(); ++i) {
    if (!targets.machines[i].instance->restore(machine_snapshots[i], sink)) return false;
  }
  for (std::size_t i = 0; i < targets.buses.size(); ++i) {
    targets.buses[i].bus->restore_checkpoint(bus_checkpoints[i]);
  }
  for (std::size_t i = 0; i < targets.watchdogs.size(); ++i) {
    targets.watchdogs[i].watchdog->restore_checkpoint(watchdog_checkpoints[i]);
  }
  for (std::size_t i = 0; i < targets.supervisors.size(); ++i) {
    if (!targets.supervisors[i].supervisor->restore_checkpoint(supervisor_checkpoints[i],
                                                               sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.breakers.size(); ++i) {
    if (!targets.breakers[i].breaker->restore_checkpoint(breaker_checkpoints[i], sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.health.size(); ++i) {
    if (!targets.health[i].registry->restore_checkpoint(health_checkpoints[i], sink)) {
      return false;
    }
  }
  for (std::size_t i = 0; i < targets.banks.size(); ++i) {
    if (!targets.banks[i].restore(bank_values[i], sink)) return false;
  }
  if (targets.recorder != nullptr) {
    targets.recorder->restore_log(std::move(recorder_events), recorder_total);
  }
  return true;
}

// --- warm-restart factories --------------------------------------------------

std::function<bool()> restart_from_snapshot(statechart::Engine& instance,
                                            support::DiagnosticSink& sink) {
  auto snapshot = std::make_shared<statechart::InstanceSnapshot>(instance.capture());
  return [&instance, &sink, snapshot] { return instance.restore(*snapshot, sink); };
}

std::function<bool()> restart_from_bank(ValueBank bank, support::DiagnosticSink& sink) {
  auto values = std::make_shared<std::vector<std::pair<std::string, std::uint64_t>>>(
      bank.capture());
  return [bank = std::move(bank), &sink, values] { return bank.restore(*values, sink); };
}

}  // namespace umlsoc::replay
