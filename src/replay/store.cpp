#include "replay/store.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <fstream>
#include <limits>
#include <system_error>

namespace umlsoc::replay {

namespace {

constexpr std::string_view kExtension = ".usnap";
constexpr std::string_view kTmpSuffix = ".tmp";
constexpr std::string_view kQuarantineSuffix = ".quarantined";

bool read_file(const std::filesystem::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return in.good() || in.eof();
}

bool write_file(const std::filesystem::path& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  return out.good();
}

/// True when a tmp filename `<base>.<pid>.tmp` embeds the pid of a process
/// that is still alive — that tmp is a concurrent writer's in-flight
/// checkpoint, not a stray. Legacy tmps without a pid always read as dead.
bool tmp_writer_alive(std::string_view name) {
  if (name.size() <= kTmpSuffix.size()) return false;
  const std::string_view body = name.substr(0, name.size() - kTmpSuffix.size());
  const std::size_t dot = body.rfind('.');
  if (dot == std::string_view::npos) return false;
  const char* first = body.data() + dot + 1;
  const char* last = body.data() + body.size();
  long long pid = 0;
  const auto [ptr, ec] = std::from_chars(first, last, pid);
  if (ec != std::errc() || ptr != last || pid <= 0) return false;
  if (pid > std::numeric_limits<pid_t>::max()) return false;
  // Signal 0: existence probe. EPERM still means the process exists.
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

}  // namespace

CheckpointStore::CheckpointStore(CheckpointStoreConfig config) : config_(std::move(config)) {
  if (config_.full_interval == 0) config_.full_interval = 1;
  if (config_.keep_fulls == 0) config_.keep_fulls = 1;
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  sweep_stray_tmps();
}

void CheckpointStore::sweep_stray_tmps() {
  const std::string stem = config_.prefix + "-";
  std::error_code ec;
  for (const auto& dirent :
       std::filesystem::directory_iterator(config_.directory, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string name = dirent.path().filename().string();
    if (name.size() < stem.size() + kTmpSuffix.size()) continue;
    if (name.compare(0, stem.size(), stem) != 0) continue;
    if (name.compare(name.size() - kTmpSuffix.size(), kTmpSuffix.size(),
                     kTmpSuffix) != 0) {
      continue;
    }
    // A pid-scoped tmp whose writer is still running is an in-flight
    // checkpoint of a concurrent store (the race the pid-scoped names exist
    // to tolerate) — deleting it would fail that writer's rename mid-
    // checkpoint. Only genuinely orphaned tmps are strays.
    if (tmp_writer_alive(name)) continue;
    std::error_code rm;
    if (std::filesystem::remove(dirent.path(), rm)) ++stats_.tmp_swept;
  }
}

void CheckpointStore::bind_health(sim::HealthRegistry& registry) {
  health_ = &registry;
  health_unit_ = registry.register_unit("checkpoint-store " + config_.prefix);
}

std::filesystem::path CheckpointStore::path_for(std::uint64_t seq) const {
  char digits[9];
  char* end = digits + sizeof digits - 1;
  *end = '\0';
  char* first = digits;
  for (int i = 7; i >= 0; --i) {
    first[i] = static_cast<char>('0' + seq % 10);
    seq /= 10;
  }
  return config_.directory / (config_.prefix + "-" + digits + std::string(kExtension));
}

std::vector<CheckpointStore::ScanEntry> CheckpointStore::scan() const {
  std::vector<ScanEntry> entries;
  std::error_code ec;
  for (const auto& dirent :
       std::filesystem::directory_iterator(config_.directory, ec)) {
    if (!dirent.is_regular_file(ec)) continue;
    const std::string filename = dirent.path().filename().string();
    const std::string stem = config_.prefix + "-";
    if (filename.size() != stem.size() + 8 + kExtension.size()) continue;
    if (filename.compare(0, stem.size(), stem) != 0) continue;
    if (filename.compare(stem.size() + 8, kExtension.size(), kExtension) != 0) continue;
    std::uint64_t seq = 0;
    const char* digits = filename.data() + stem.size();
    const auto [ptr, parse_ec] = std::from_chars(digits, digits + 8, seq);
    if (parse_ec != std::errc() || ptr != digits + 8) continue;
    entries.push_back({seq, dirent.path()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const ScanEntry& a, const ScanEntry& b) { return a.seq > b.seq; });
  return entries;
}

bool CheckpointStore::checkpoint(const SnapshotTargets& targets, WriteResult& out,
                                 support::DiagnosticSink& sink) {
  const bool force_full = count_ % config_.full_interval == 0;
  ++count_;

  IncrementalEncoder::Result encoded;
  if (!encoder_.encode(targets, force_full, encoded, sink)) return false;

  WriteResult result;
  result.seq = encoded.seq;
  result.delta = encoded.delta;
  result.path = path_for(encoded.seq);

  std::string bytes = std::move(encoded.bytes);
  if (fault_plan_ != nullptr) {
    const sim::FaultDecision decision = fault_plan_->consult(sim::FaultSite::kCheckpoint);
    switch (decision.kind) {
      case sim::FaultKind::kError:
        // Torn write: only the first half of the file makes it to disk.
        bytes.resize(bytes.size() / 2);
        result.torn = true;
        break;
      case sim::FaultKind::kDropResponse:
        // Crash before the rename: the tmp file is written but never lands.
        result.lost = true;
        break;
      case sim::FaultKind::kBitFlip: {
        // One bit, spread deterministically across the file by the mask.
        const int bit = std::countr_zero(decision.flip_mask | 1);
        const std::size_t position = bytes.empty() ? 0 : bit * (bytes.size() - 1) / 63;
        if (!bytes.empty()) bytes[position] ^= static_cast<char>(1u << (bit & 7));
        result.flipped = true;
        break;
      }
      case sim::FaultKind::kNone:
      case sim::FaultKind::kExtraLatency:  // No wall-clock meaning for a file write.
      case sim::FaultKind::kGlitch:
        break;
    }
    if (result.torn || result.lost || result.flipped) ++stats_.write_faults;
  }

  // The tmp sibling carries the writer's pid: if two processes ever touch
  // the same directory (a re-dispatched seed racing a predecessor that is
  // being torn down), their in-flight writes cannot collide on one tmp name
  // and clobber each other mid-rename.
  const std::filesystem::path tmp = result.path.string() + "." +
                                    std::to_string(::getpid()) +
                                    std::string(kTmpSuffix);
  if (!write_file(tmp, bytes)) {
    sink.error("checkpoint-store", "cannot write " + tmp.string());
    return false;
  }
  if (!result.lost) {
    std::error_code ec;
    std::filesystem::rename(tmp, result.path, ec);
    if (ec) {
      sink.error("checkpoint-store",
                 "cannot rename " + tmp.string() + ": " + ec.message());
      return false;
    }
  }
  result.bytes = bytes.size();

  ++stats_.checkpoints;
  stats_.bytes_written += bytes.size();
  if (encoded.delta) {
    ++stats_.deltas;
  } else {
    ++stats_.fulls;
    // A lost full must not count as a retained base: its deltas would chain
    // to a file that never landed.
    if (!result.lost) {
      fulls_.push_back(encoded.seq);
      prune(sink);
    }
  }
  out = result;
  return true;
}

void CheckpointStore::prune(support::DiagnosticSink& sink) {
  if (fulls_.size() <= config_.keep_fulls) return;
  fulls_.erase(fulls_.begin(), fulls_.end() - config_.keep_fulls);
  const std::uint64_t keep_from = fulls_.front();
  for (const ScanEntry& entry : scan()) {
    if (entry.seq >= keep_from) continue;
    std::error_code ec;
    if (std::filesystem::remove(entry.path, ec)) {
      ++stats_.pruned;
    } else if (ec) {
      sink.warning("checkpoint-store",
                   "cannot prune " + entry.path.string() + ": " + ec.message());
    }
  }
}

void CheckpointStore::quarantine(const std::filesystem::path& path, std::string reason,
                                 support::DiagnosticSink& sink) {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + std::string(kQuarantineSuffix), ec);
  if (ec) {
    // Renaming failed (e.g. the file vanished); removing keeps the ladder
    // terminating either way.
    std::filesystem::remove(path, ec);
  }
  sink.warning("checkpoint-store", "quarantined " + path.filename().string() + ": " + reason);
  quarantined_.push_back({path, std::move(reason)});
  ++stats_.quarantines;
  if (health_ != nullptr) {
    health_->set_health(health_unit_, sim::UnitHealth::kDegraded,
                        "checkpoint quarantined: " + path.filename().string());
  }
}

bool CheckpointStore::restore_latest_good(const SnapshotTargets& targets,
                                          support::DiagnosticSink& sink) {
  return restore_ladder(std::numeric_limits<std::uint64_t>::max(), targets, sink);
}

bool CheckpointStore::restore_to(std::uint64_t seq, const SnapshotTargets& targets,
                                 support::DiagnosticSink& sink) {
  return restore_ladder(seq, targets, sink);
}

bool CheckpointStore::restore_ladder(std::uint64_t max_seq, const SnapshotTargets& targets,
                                     support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("checkpoint-store", "no kernel target registered");
    return false;
  }
  const auto started = std::chrono::steady_clock::now();
  // Every pass either restores, or quarantines at least one file and
  // rescans — so the walk terminates.
  for (;;) {
    std::vector<ScanEntry> entries = scan();
    // Rungs newer than the rewind target are skipped, not quarantined: a
    // time-travel probe must leave the rest of the ladder intact. They stay
    // in `entries` past the tip choice so delta chains that reach *below*
    // max_seq still resolve their bases.
    std::size_t first = 0;
    while (first < entries.size() && entries[first].seq > max_seq) ++first;
    if (first == entries.size()) {
      sink.error("checkpoint-store",
                 "no restorable checkpoint in " + config_.directory.string() +
                     (max_seq == std::numeric_limits<std::uint64_t>::max()
                          ? ""
                          : " at or below seq " + std::to_string(max_seq)) +
                     " (" + std::to_string(quarantined_.size()) + " quarantined)");
      if (health_ != nullptr) {
        health_->set_health(health_unit_, sim::UnitHealth::kFailed,
                            "recovery ladder exhausted");
      }
      return false;
    }

    const ScanEntry& tip = entries[first];
    // Materialize the tip's chain, newest to oldest, via base_seq links.
    std::vector<const ScanEntry*> chain;  // tip first, base last
    std::string tip_failure;
    const ScanEntry* broken = nullptr;
    const ScanEntry* cursor = &tip;
    for (;;) {
      std::string bytes;
      support::DiagnosticSink probe;
      BinarySnapshotInfo info;
      if (!read_file(cursor->path, bytes)) {
        broken = cursor;
        tip_failure = "unreadable file";
        break;
      }
      if (!read_binary_info(bytes, info, probe)) {
        broken = cursor;
        tip_failure = probe.str();
        break;
      }
      chain.push_back(cursor);
      if (!info.delta) break;  // Reached the full base.
      const ScanEntry* base = nullptr;
      for (const ScanEntry& candidate : entries) {
        if (candidate.seq == info.base_seq) {
          base = &candidate;
          break;
        }
      }
      if (base == nullptr || chain.size() > entries.size()) {
        // The base was lost, quarantined, or the links cycle; nothing this
        // delta chains to can be trusted, so the tip itself steps aside.
        broken = &tip;
        tip_failure = "delta " + std::to_string(info.seq) + " needs base checkpoint " +
                      std::to_string(info.base_seq) + ", which is missing";
        break;
      }
      cursor = base;
    }
    if (broken != nullptr) {
      quarantine(broken->path, std::move(tip_failure), sink);
      continue;
    }

    // Oldest-first for the decoder.
    std::reverse(chain.begin(), chain.end());
    std::vector<std::string> blobs(chain.size());
    bool readable = true;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (!read_file(chain[i]->path, blobs[i])) {
        quarantine(chain[i]->path, "unreadable file", sink);
        readable = false;
        break;
      }
    }
    if (!readable) continue;

    // Validate rung by rung so a failure is pinned to the file that caused
    // it, not blamed on the whole chain. Chains are short (one base plus at
    // most full_interval - 1 deltas), so the re-decode cost is irrelevant
    // on this cold path.
    SnapshotImage image;
    bool valid = true;
    for (std::size_t length = 1; length <= chain.size(); ++length) {
      std::vector<std::string_view> prefix(blobs.begin(),
                                           blobs.begin() + static_cast<std::ptrdiff_t>(length));
      support::DiagnosticSink attempt;
      SnapshotImage decoded;
      if (!image_from_binary_chain(prefix, decoded, attempt)) {
        quarantine(chain[length - 1]->path, attempt.str(), sink);
        valid = false;
        break;
      }
      if (length == chain.size()) image = std::move(decoded);
    }
    if (!valid) continue;

    support::DiagnosticSink apply_sink;
    if (!apply_image(targets, image, apply_sink)) {
      quarantine(chain.back()->path, "restore failed: " + apply_sink.str(), sink);
      continue;
    }
    targets.kernel->note_snapshot_restore(elapsed_ns(started));
    ++stats_.restores;
    stats_.restored_seq = chain.back()->seq;
    sink.note("checkpoint-store",
              "restored checkpoint " + std::to_string(stats_.restored_seq) + " (chain of " +
                  std::to_string(chain.size()) + ")");
    return true;
  }
}

}  // namespace umlsoc::replay
