#include "replay/binary.hpp"

#include <bit>
#include <chrono>
#include <cstring>

namespace umlsoc::replay {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint32_t kFlagDelta = 1u;

constexpr std::uint8_t kEntryPayload = 0;
constexpr std::uint8_t kEntryReference = 1;
constexpr std::uint8_t kEntryRecorderAppend = 2;

/// Fixed byte cost of one recorder log entry (u64 at_ps + u32 process).
constexpr std::size_t kRecorderEntryBytes = 12;
/// Recorder payload header: u64 total + u32 count.
constexpr std::size_t kRecorderHeadBytes = 12;

std::uint64_t fnv1a(std::string_view data, std::uint64_t hash = kFnvOffset) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

std::string to_hex(std::uint64_t value) {
  char buffer[17];
  for (int i = 15; i >= 0; --i) {
    buffer[i] = "0123456789abcdef"[value & 0xF];
    value >>= 4;
  }
  buffer[16] = '\0';
  return std::string(buffer);
}

// --- primitive codecs (little-endian, memcpy) --------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void u16(std::uint16_t value) { raw(&value, sizeof value); }
  void u32(std::uint32_t value) { raw(&value, sizeof value); }
  void u64(std::uint64_t value) { raw(&value, sizeof value); }
  void i64(std::int64_t value) { u64(std::bit_cast<std::uint64_t>(value)); }
  void boolean(bool value) { u8(value ? 1 : 0); }
  /// u32 length + bytes.
  void str(std::string_view value) {
    u32(static_cast<std::uint32_t>(value.size()));
    bytes(value);
  }
  void bytes(std::string_view value) { buffer_.append(value); }

  [[nodiscard]] std::string take() { return std::move(buffer_); }
  [[nodiscard]] const std::string& buffer() const { return buffer_; }

 private:
  void raw(const void* data, std::size_t size) {
    if constexpr (std::endian::native == std::endian::little) {
      buffer_.append(static_cast<const char*>(data), size);
    } else {
      const auto* first = static_cast<const unsigned char*>(data);
      for (std::size_t i = size; i-- > 0;) buffer_.push_back(static_cast<char>(first[i]));
    }
  }

  std::string buffer_;
};

/// Bounds-checked reader. The first overrun latches `failed()`; subsequent
/// reads return zero so decoders can run to completion and report once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    std::uint8_t value = 0;
    raw(&value, 1);
    return value;
  }
  std::uint16_t u16() {
    std::uint16_t value = 0;
    raw(&value, sizeof value);
    return value;
  }
  std::uint32_t u32() {
    std::uint32_t value = 0;
    raw(&value, sizeof value);
    return value;
  }
  std::uint64_t u64() {
    std::uint64_t value = 0;
    raw(&value, sizeof value);
    return value;
  }
  std::int64_t i64() { return std::bit_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t length = u32();
    return std::string(bytes(length));
  }
  std::string_view bytes(std::size_t size) {
    if (failed_ || data_.size() - position_ < size) {
      failed_ = true;
      return {};
    }
    const std::string_view view = data_.substr(position_, size);
    position_ += size;
    return view;
  }

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::size_t position() const { return position_; }
  [[nodiscard]] std::size_t remaining() const { return failed_ ? 0 : data_.size() - position_; }
  [[nodiscard]] bool exhausted() const { return !failed_ && position_ == data_.size(); }

 private:
  void raw(void* out, std::size_t size) {
    const std::string_view view = bytes(size);
    if (view.size() != size) return;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, view.data(), size);
    } else {
      auto* first = static_cast<unsigned char*>(out);
      for (std::size_t i = 0; i < size; ++i) {
        first[i] = static_cast<unsigned char>(view[size - 1 - i]);
      }
    }
  }

  std::string_view data_;
  std::size_t position_ = 0;
  bool failed_ = false;
};

// --- section payload codecs ---------------------------------------------------

std::string encode_kernel(const SnapshotImage& image) {
  const sim::Kernel::Checkpoint& checkpoint = image.kernel;
  ByteWriter out;
  out.u64(checkpoint.now_ps);
  out.u64(checkpoint.sequence);
  out.u64(checkpoint.delta_count);
  out.u64(checkpoint.events_processed);
  out.u64(checkpoint.process_count);
  out.u32(static_cast<std::uint32_t>(checkpoint.timed.size()));
  for (std::size_t i = 0; i < checkpoint.timed.size(); ++i) {
    out.u64(checkpoint.timed[i].at_ps);
    out.u64(checkpoint.timed[i].sequence);
    out.u32(checkpoint.timed[i].process);
    out.str(i < image.kernel_timed_labels.size() ? image.kernel_timed_labels[i] : "");
  }
  out.u32(static_cast<std::uint32_t>(checkpoint.expectations.size()));
  for (const auto& expectation : checkpoint.expectations) {
    out.str(expectation.label);
    out.u64(expectation.outstanding);
  }
  return out.take();
}

bool decode_kernel(ByteReader& in, sim::Kernel::Checkpoint& out,
                   std::vector<std::string>& labels) {
  out.now_ps = in.u64();
  out.sequence = in.u64();
  out.delta_count = in.u64();
  out.events_processed = in.u64();
  out.process_count = in.u64();
  const std::uint32_t timed_count = in.u32();
  for (std::uint32_t i = 0; i < timed_count && !in.failed(); ++i) {
    sim::Kernel::Checkpoint::PendingTimed timed;
    timed.at_ps = in.u64();
    timed.sequence = in.u64();
    timed.process = in.u32();
    out.timed.push_back(timed);
    labels.push_back(in.str());
  }
  const std::uint32_t expectation_count = in.u32();
  for (std::uint32_t i = 0; i < expectation_count && !in.failed(); ++i) {
    sim::Kernel::Checkpoint::ExpectationEntry entry;
    entry.label = in.str();
    entry.outstanding = in.u64();
    out.expectations.push_back(std::move(entry));
  }
  return !in.failed();
}

std::string encode_fault_plan(const SnapshotImage::FaultPlanState& plan) {
  ByteWriter out;
  out.u64(plan.seed);
  out.u32(static_cast<std::uint32_t>(plan.sites.size()));
  for (const auto& [site, state] : plan.sites) {
    out.u8(static_cast<std::uint8_t>(site));
    out.u64(state.rng_state);
    out.u64(state.counters.consults);
    out.u64(state.counters.errors);
    out.u64(state.counters.drops);
    out.u64(state.counters.delays);
    out.u64(state.counters.bit_flips);
    out.u64(state.counters.glitches);
  }
  return out.take();
}

bool decode_fault_plan(ByteReader& in, SnapshotImage::FaultPlanState& out) {
  out.seed = in.u64();
  const std::uint32_t site_count = in.u32();
  for (std::uint32_t i = 0; i < site_count && !in.failed(); ++i) {
    const std::uint8_t raw = in.u8();
    if (raw >= sim::kFaultSiteCount) return false;
    sim::FaultPlan::SiteState state;
    state.rng_state = in.u64();
    state.counters.consults = in.u64();
    state.counters.errors = in.u64();
    state.counters.drops = in.u64();
    state.counters.delays = in.u64();
    state.counters.bit_flips = in.u64();
    state.counters.glitches = in.u64();
    out.sites.emplace_back(static_cast<sim::FaultSite>(raw), state);
  }
  return !in.failed();
}

std::string encode_recorder(const SnapshotImage::RecorderState& recorder) {
  ByteWriter out;
  out.u64(recorder.total);
  out.u32(static_cast<std::uint32_t>(recorder.events.size()));
  for (const sim::RecordedEvent& event : recorder.events) {
    out.u64(event.at_ps);
    out.u32(event.process);
  }
  return out.take();
}

bool decode_recorder(ByteReader& in, SnapshotImage::RecorderState& out) {
  out.total = in.u64();
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count && !in.failed(); ++i) {
    sim::RecordedEvent event;
    event.at_ps = in.u64();
    event.process = in.u32();
    out.events.push_back(event);
  }
  if (!in.failed() && out.events.size() > out.total) return false;
  return !in.failed();
}

void encode_event_records(ByteWriter& out,
                          const std::vector<statechart::InstanceSnapshot::EventRecord>& records) {
  out.u32(static_cast<std::uint32_t>(records.size()));
  for (const auto& record : records) {
    out.str(record.name);
    out.i64(record.data);
    out.str(record.tag);
  }
}

bool decode_event_records(ByteReader& in,
                          std::vector<statechart::InstanceSnapshot::EventRecord>& out) {
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count && !in.failed(); ++i) {
    statechart::InstanceSnapshot::EventRecord record;
    record.name = in.str();
    record.data = in.i64();
    record.tag = in.str();
    out.push_back(std::move(record));
  }
  return !in.failed();
}

std::string encode_machine(const statechart::InstanceSnapshot& snapshot) {
  ByteWriter out;
  out.boolean(snapshot.started);
  out.boolean(snapshot.terminated);
  out.u64(snapshot.events_processed);
  out.u64(snapshot.transitions_fired);
  out.u64(snapshot.errors_raised);
  out.u64(snapshot.errors_unhandled);
  out.u32(static_cast<std::uint32_t>(snapshot.active_states.size()));
  for (std::uint32_t index : snapshot.active_states) out.u32(index);
  out.u32(static_cast<std::uint32_t>(snapshot.active_finals.size()));
  for (std::uint32_t index : snapshot.active_finals) out.u32(index);
  out.u32(static_cast<std::uint32_t>(snapshot.shallow_history.size()));
  for (const auto& [region, state] : snapshot.shallow_history) {
    out.u32(region);
    out.u32(state);
  }
  out.u32(static_cast<std::uint32_t>(snapshot.deep_history.size()));
  for (const auto& [region, leaves] : snapshot.deep_history) {
    out.u32(region);
    out.u32(static_cast<std::uint32_t>(leaves.size()));
    for (std::uint32_t leaf : leaves) out.u32(leaf);
  }
  out.u32(static_cast<std::uint32_t>(snapshot.variables.size()));
  for (const auto& [name, value] : snapshot.variables) {
    out.str(name);
    out.i64(value);
  }
  encode_event_records(out, snapshot.queue);
  encode_event_records(out, snapshot.deferred);
  return out.take();
}

bool decode_machine(ByteReader& in, statechart::InstanceSnapshot& out) {
  out.started = in.boolean();
  out.terminated = in.boolean();
  out.events_processed = in.u64();
  out.transitions_fired = in.u64();
  out.errors_raised = in.u64();
  out.errors_unhandled = in.u64();
  const std::uint32_t state_count = in.u32();
  for (std::uint32_t i = 0; i < state_count && !in.failed(); ++i) {
    out.active_states.push_back(in.u32());
  }
  const std::uint32_t final_count = in.u32();
  for (std::uint32_t i = 0; i < final_count && !in.failed(); ++i) {
    out.active_finals.push_back(in.u32());
  }
  const std::uint32_t shallow_count = in.u32();
  for (std::uint32_t i = 0; i < shallow_count && !in.failed(); ++i) {
    const std::uint32_t region = in.u32();
    out.shallow_history.emplace_back(region, in.u32());
  }
  const std::uint32_t deep_count = in.u32();
  for (std::uint32_t i = 0; i < deep_count && !in.failed(); ++i) {
    const std::uint32_t region = in.u32();
    std::vector<std::uint32_t> leaves;
    const std::uint32_t leaf_count = in.u32();
    for (std::uint32_t j = 0; j < leaf_count && !in.failed(); ++j) leaves.push_back(in.u32());
    out.deep_history.emplace_back(region, std::move(leaves));
  }
  const std::uint32_t variable_count = in.u32();
  for (std::uint32_t i = 0; i < variable_count && !in.failed(); ++i) {
    std::string name = in.str();
    out.variables.emplace_back(std::move(name), in.i64());
  }
  if (!decode_event_records(in, out.queue)) return false;
  if (!decode_event_records(in, out.deferred)) return false;
  return !in.failed();
}

std::string encode_bus(const sim::MemoryMappedBus::Checkpoint& checkpoint) {
  ByteWriter out;
  out.u64(checkpoint.stats.reads);
  out.u64(checkpoint.stats.writes);
  out.u64(checkpoint.stats.errors);
  out.u64(checkpoint.stats.injected_errors);
  out.u64(checkpoint.stats.injected_drops);
  out.u64(checkpoint.stats.injected_delays);
  out.u64(checkpoint.stats.injected_bit_flips);
  out.u64(checkpoint.stats.completions);
  out.u64(checkpoint.stats.dropped_completions);
  out.u64(checkpoint.last_completion_ps);
  return out.take();
}

bool decode_bus(ByteReader& in, sim::MemoryMappedBus::Checkpoint& out) {
  out.stats.reads = in.u64();
  out.stats.writes = in.u64();
  out.stats.errors = in.u64();
  out.stats.injected_errors = in.u64();
  out.stats.injected_drops = in.u64();
  out.stats.injected_delays = in.u64();
  out.stats.injected_bit_flips = in.u64();
  out.stats.completions = in.u64();
  out.stats.dropped_completions = in.u64();
  out.last_completion_ps = in.u64();
  return !in.failed();
}

std::string encode_watchdog(const sim::Watchdog::Checkpoint& checkpoint) {
  ByteWriter out;
  out.boolean(checkpoint.armed);
  out.boolean(checkpoint.tripped);
  out.boolean(checkpoint.check_pending);
  out.u64(checkpoint.trip_at_ps);
  out.u64(checkpoint.trips);
  out.u64(checkpoint.kicks);
  return out.take();
}

bool decode_watchdog(ByteReader& in, sim::Watchdog::Checkpoint& out) {
  out.armed = in.boolean();
  out.tripped = in.boolean();
  out.check_pending = in.boolean();
  out.trip_at_ps = in.u64();
  out.trips = in.u64();
  out.kicks = in.u64();
  return !in.failed();
}

std::string encode_supervisor(const sim::Supervisor::Checkpoint& checkpoint) {
  ByteWriter out;
  out.boolean(checkpoint.suspended);
  out.boolean(checkpoint.gave_up);
  out.str(checkpoint.give_up_reason);
  out.u64(checkpoint.escalations);
  out.u32(static_cast<std::uint32_t>(checkpoint.window.size()));
  for (std::uint64_t at_ps : checkpoint.window) out.u64(at_ps);
  out.u32(static_cast<std::uint32_t>(checkpoint.children.size()));
  for (const auto& child : checkpoint.children) {
    out.u64(child.failures);
    out.u64(child.restarts);
    out.u64(child.failed_restarts);
    out.u32(child.consecutive);
    out.u64(child.last_failure_ps);
  }
  out.u32(static_cast<std::uint32_t>(checkpoint.pending.size()));
  for (const auto& pending : checkpoint.pending) {
    out.u64(pending.due_ps);
    out.u32(pending.child);
  }
  return out.take();
}

bool decode_supervisor(ByteReader& in, sim::Supervisor::Checkpoint& out) {
  out.suspended = in.boolean();
  out.gave_up = in.boolean();
  out.give_up_reason = in.str();
  out.escalations = in.u64();
  const std::uint32_t window_count = in.u32();
  for (std::uint32_t i = 0; i < window_count && !in.failed(); ++i) out.window.push_back(in.u64());
  const std::uint32_t child_count = in.u32();
  for (std::uint32_t i = 0; i < child_count && !in.failed(); ++i) {
    sim::Supervisor::Checkpoint::ChildState child;
    child.failures = in.u64();
    child.restarts = in.u64();
    child.failed_restarts = in.u64();
    child.consecutive = in.u32();
    child.last_failure_ps = in.u64();
    out.children.push_back(child);
  }
  const std::uint32_t pending_count = in.u32();
  for (std::uint32_t i = 0; i < pending_count && !in.failed(); ++i) {
    sim::Supervisor::Checkpoint::PendingRestart pending;
    pending.due_ps = in.u64();
    pending.child = in.u32();
    out.pending.push_back(pending);
  }
  return !in.failed();
}

std::string encode_breaker(const sim::CircuitBreaker::Checkpoint& checkpoint) {
  ByteWriter out;
  out.u8(checkpoint.state);
  out.u64(checkpoint.outcomes);
  out.u32(checkpoint.cursor);
  out.u32(checkpoint.samples);
  out.u32(checkpoint.failures_in_window);
  out.u64(checkpoint.open_duration_ps);
  out.u64(checkpoint.reopen_at_ps);
  out.boolean(checkpoint.timer_pending);
  out.boolean(checkpoint.probe_in_flight);
  out.u64(checkpoint.stats.issued);
  out.u64(checkpoint.stats.ok);
  out.u64(checkpoint.stats.failures);
  out.u64(checkpoint.stats.fast_failed);
  out.u64(checkpoint.stats.opens);
  out.u64(checkpoint.stats.closes);
  out.u64(checkpoint.stats.probes);
  out.u64(checkpoint.stats.probe_failures);
  return out.take();
}

bool decode_breaker(ByteReader& in, sim::CircuitBreaker::Checkpoint& out) {
  out.state = in.u8();
  out.outcomes = in.u64();
  out.cursor = in.u32();
  out.samples = in.u32();
  out.failures_in_window = in.u32();
  out.open_duration_ps = in.u64();
  out.reopen_at_ps = in.u64();
  out.timer_pending = in.boolean();
  out.probe_in_flight = in.boolean();
  out.stats.issued = in.u64();
  out.stats.ok = in.u64();
  out.stats.failures = in.u64();
  out.stats.fast_failed = in.u64();
  out.stats.opens = in.u64();
  out.stats.closes = in.u64();
  out.stats.probes = in.u64();
  out.stats.probe_failures = in.u64();
  return !in.failed();
}

std::string encode_health(const sim::HealthRegistry::Checkpoint& checkpoint) {
  ByteWriter out;
  out.u64(checkpoint.transitions);
  out.u32(static_cast<std::uint32_t>(checkpoint.health.size()));
  for (std::uint8_t value : checkpoint.health) out.u8(value);
  return out.take();
}

bool decode_health(ByteReader& in, sim::HealthRegistry::Checkpoint& out) {
  out.transitions = in.u64();
  const std::uint32_t unit_count = in.u32();
  for (std::uint32_t i = 0; i < unit_count && !in.failed(); ++i) out.health.push_back(in.u8());
  return !in.failed();
}

std::string encode_bank(const std::vector<std::pair<std::string, std::uint64_t>>& values) {
  ByteWriter out;
  out.u32(static_cast<std::uint32_t>(values.size()));
  for (const auto& [key, value] : values) {
    out.str(key);
    out.u64(value);
  }
  return out.take();
}

bool decode_bank(ByteReader& in, std::vector<std::pair<std::string, std::uint64_t>>& out) {
  const std::uint32_t count = in.u32();
  for (std::uint32_t i = 0; i < count && !in.failed(); ++i) {
    std::string key = in.str();
    out.emplace_back(std::move(key), in.u64());
  }
  return !in.failed();
}

// --- image <-> flat section list ---------------------------------------------

struct FlatSection {
  SectionKind kind;
  std::string name;
  std::string payload;
};

std::vector<FlatSection> flatten_image(const SnapshotImage& image) {
  std::vector<FlatSection> sections;
  sections.reserve(image.section_count());
  sections.push_back({SectionKind::kKernel, "", encode_kernel(image)});
  if (image.fault_plan) {
    sections.push_back({SectionKind::kFaultPlan, "", encode_fault_plan(*image.fault_plan)});
  }
  if (image.recorder) {
    sections.push_back({SectionKind::kRecorder, "", encode_recorder(*image.recorder)});
  }
  for (const auto& entry : image.machines) {
    sections.push_back({SectionKind::kMachine, entry.name, encode_machine(entry.state)});
  }
  for (const auto& entry : image.buses) {
    sections.push_back({SectionKind::kBus, entry.name, encode_bus(entry.state)});
  }
  for (const auto& entry : image.watchdogs) {
    sections.push_back({SectionKind::kWatchdog, entry.name, encode_watchdog(entry.state)});
  }
  for (const auto& entry : image.supervisors) {
    sections.push_back({SectionKind::kSupervisor, entry.name, encode_supervisor(entry.state)});
  }
  for (const auto& entry : image.breakers) {
    sections.push_back({SectionKind::kBreaker, entry.name, encode_breaker(entry.state)});
  }
  for (const auto& entry : image.health) {
    sections.push_back({SectionKind::kHealth, entry.name, encode_health(entry.state)});
  }
  for (const auto& entry : image.banks) {
    sections.push_back({SectionKind::kBank, entry.name, encode_bank(entry.state)});
  }
  return sections;
}

std::string describe(SectionKind kind, std::string_view name) {
  std::string out = "<" + std::string(to_string(kind));
  if (!name.empty()) out += " name='" + std::string(name) + "'";
  return out + ">";
}

bool assemble_image(const std::vector<FlatSection>& sections, SnapshotImage& image,
                    support::DiagnosticSink& sink) {
  SnapshotImage out;
  bool kernel_seen = false;
  for (const FlatSection& section : sections) {
    // Duplicate named sections of one kind are structural corruption.
    for (const FlatSection* other = sections.data(); other != &section; ++other) {
      if (other->kind == section.kind && other->name == section.name) {
        sink.error("binary-snapshot",
                   "duplicate " + describe(section.kind, section.name) + " section");
        return false;
      }
    }
    ByteReader in(section.payload);
    bool ok = false;
    switch (section.kind) {
      case SectionKind::kKernel:
        kernel_seen = true;
        ok = decode_kernel(in, out.kernel, out.kernel_timed_labels);
        break;
      case SectionKind::kFaultPlan: {
        SnapshotImage::FaultPlanState plan;
        ok = decode_fault_plan(in, plan);
        if (ok) out.fault_plan = std::move(plan);
        break;
      }
      case SectionKind::kRecorder: {
        SnapshotImage::RecorderState recorder;
        ok = decode_recorder(in, recorder);
        if (ok) out.recorder = std::move(recorder);
        break;
      }
      case SectionKind::kMachine: {
        SnapshotImage::Named<statechart::InstanceSnapshot> entry{section.name, {}};
        ok = decode_machine(in, entry.state);
        if (ok) out.machines.push_back(std::move(entry));
        break;
      }
      case SectionKind::kBus: {
        SnapshotImage::Named<sim::MemoryMappedBus::Checkpoint> entry{section.name, {}};
        ok = decode_bus(in, entry.state);
        if (ok) out.buses.push_back(std::move(entry));
        break;
      }
      case SectionKind::kWatchdog: {
        SnapshotImage::Named<sim::Watchdog::Checkpoint> entry{section.name, {}};
        ok = decode_watchdog(in, entry.state);
        if (ok) out.watchdogs.push_back(std::move(entry));
        break;
      }
      case SectionKind::kSupervisor: {
        SnapshotImage::Named<sim::Supervisor::Checkpoint> entry{section.name, {}};
        ok = decode_supervisor(in, entry.state);
        if (ok) out.supervisors.push_back(std::move(entry));
        break;
      }
      case SectionKind::kBreaker: {
        SnapshotImage::Named<sim::CircuitBreaker::Checkpoint> entry{section.name, {}};
        ok = decode_breaker(in, entry.state);
        if (ok) out.breakers.push_back(std::move(entry));
        break;
      }
      case SectionKind::kHealth: {
        SnapshotImage::Named<sim::HealthRegistry::Checkpoint> entry{section.name, {}};
        ok = decode_health(in, entry.state);
        if (ok) out.health.push_back(std::move(entry));
        break;
      }
      case SectionKind::kBank: {
        SnapshotImage::Named<std::vector<std::pair<std::string, std::uint64_t>>> entry{
            section.name, {}};
        ok = decode_bank(in, entry.state);
        if (ok) out.banks.push_back(std::move(entry));
        break;
      }
    }
    if (!ok || !in.exhausted()) {
      sink.error("binary-snapshot",
                 "malformed payload in " + describe(section.kind, section.name) +
                     (ok ? " (trailing bytes)" : ""));
      return false;
    }
  }
  if (!kernel_seen) {
    sink.error("binary-snapshot", "missing kernel section");
    return false;
  }
  image = std::move(out);
  return true;
}

// --- file framing ------------------------------------------------------------

struct FrameEntry {
  SectionKind kind = SectionKind::kKernel;
  std::string name;
  std::uint8_t entry_flags = kEntryPayload;
  /// Stored frame payload. For reference frames this is the 8-byte expected
  /// FNV of the *resolved* payload from the base, so a drifted base is
  /// caught at resolve time while the frame checksum still guards the
  /// reference frame's own bytes.
  std::string payload;
};

std::string encode_file(std::uint32_t flags, std::uint64_t seq, std::uint64_t base_seq,
                        const std::vector<FrameEntry>& entries) {
  ByteWriter out;
  out.bytes(kBinaryMagic);
  out.u32(static_cast<std::uint32_t>(kSnapshotVersion));
  out.u32(flags);
  out.u64(seq);
  out.u64(base_seq);
  out.u32(static_cast<std::uint32_t>(entries.size()));
  out.u64(fnv1a(out.buffer()));
  for (const FrameEntry& entry : entries) {
    // The frame checksum covers the frame metadata AND the payload, so a
    // bit-flip anywhere in the frame — kind, name, flags, lengths, payload
    // — fails this section's validation, not some later decode step.
    ByteWriter meta;
    meta.u8(static_cast<std::uint8_t>(entry.kind));
    meta.u16(static_cast<std::uint16_t>(entry.name.size()));
    meta.bytes(entry.name);
    meta.u8(entry.entry_flags);
    meta.u32(static_cast<std::uint32_t>(entry.payload.size()));
    out.bytes(meta.buffer());
    out.u64(fnv1a(entry.payload, fnv1a(meta.buffer())));
    out.bytes(entry.payload);
  }
  out.bytes(kBinaryTrailer);
  return out.take();
}

std::vector<FrameEntry> payload_frames(const std::vector<FlatSection>& sections) {
  std::vector<FrameEntry> entries;
  entries.reserve(sections.size());
  for (const FlatSection& section : sections) {
    entries.push_back({section.kind, section.name, kEntryPayload, section.payload});
  }
  return entries;
}

bool parse_header(ByteReader& in, std::string_view data, BinarySnapshotInfo& info,
                  support::DiagnosticSink& sink) {
  if (in.bytes(kBinaryMagic.size()) != kBinaryMagic) {
    sink.error("binary-snapshot", "bad magic: not a binary snapshot file");
    return false;
  }
  info.version = static_cast<int>(in.u32());
  const std::uint32_t flags = in.u32();
  info.delta = (flags & kFlagDelta) != 0;
  info.seq = in.u64();
  info.base_seq = in.u64();
  info.section_count = in.u32();
  const std::size_t hashed = in.position();
  const std::uint64_t stored = in.u64();
  if (in.failed()) {
    sink.error("binary-snapshot", "truncated header (" + std::to_string(data.size()) +
                                      " bytes)");
    return false;
  }
  if (info.version != kSnapshotVersion) {
    sink.error("binary-snapshot",
               "unsupported snapshot version " + std::to_string(info.version) +
                   " (this build reads version " + std::to_string(kSnapshotVersion) + ")");
    return false;
  }
  const std::uint64_t computed = fnv1a(data.substr(0, hashed));
  if (stored != computed) {
    sink.error("binary-snapshot", "header checksum mismatch: stored " + to_hex(stored) +
                                      ", computed " + to_hex(computed));
    return false;
  }
  return true;
}

/// Full framing parse: header, every section frame (bounds + frame
/// checksums covering metadata and payload), trailer, exact length.
bool parse_file(std::string_view data, BinarySnapshotInfo& info,
                std::vector<FrameEntry>& entries, support::DiagnosticSink& sink) {
  ByteReader in(data);
  if (!parse_header(in, data, info, sink)) return false;
  for (std::uint32_t i = 0; i < info.section_count; ++i) {
    const std::size_t offset = in.position();
    FrameEntry entry;
    const std::uint8_t kind = in.u8();
    const std::uint16_t name_length = in.u16();
    entry.name = std::string(in.bytes(name_length));
    entry.entry_flags = in.u8();
    const std::uint32_t payload_length = in.u32();
    const std::size_t meta_end = in.position();
    const std::uint64_t stored = in.u64();
    entry.payload = std::string(in.bytes(payload_length));
    if (in.failed()) {
      sink.error("binary-snapshot", "truncated in section #" + std::to_string(i) +
                                        " at offset " + std::to_string(offset) + " (" +
                                        std::to_string(data.size()) + " bytes total)");
      return false;
    }
    if (kind < static_cast<std::uint8_t>(SectionKind::kKernel) ||
        kind > static_cast<std::uint8_t>(SectionKind::kBank)) {
      sink.error("binary-snapshot", "unknown section kind " + std::to_string(kind) +
                                        " at offset " + std::to_string(offset));
      return false;
    }
    entry.kind = static_cast<SectionKind>(kind);
    if (entry.entry_flags > kEntryRecorderAppend) {
      sink.error("binary-snapshot",
                 "unknown entry flags " + std::to_string(entry.entry_flags) + " in " +
                     describe(entry.kind, entry.name) + " at offset " +
                     std::to_string(offset));
      return false;
    }
    const std::uint64_t computed =
        fnv1a(entry.payload, fnv1a(data.substr(offset, meta_end - offset)));
    if (computed != stored) {
      sink.error("binary-snapshot", "section checksum mismatch in " +
                                        describe(entry.kind, entry.name) + " at offset " +
                                        std::to_string(offset) + ": stored " +
                                        to_hex(stored) + ", computed " + to_hex(computed));
      return false;
    }
    if (entry.entry_flags == kEntryReference && payload_length != sizeof(std::uint64_t)) {
      sink.error("binary-snapshot", "malformed reference frame in " +
                                        describe(entry.kind, entry.name) + " at offset " +
                                        std::to_string(offset));
      return false;
    }
    entries.push_back(std::move(entry));
  }
  if (in.bytes(kBinaryTrailer.size()) != kBinaryTrailer) {
    sink.error("binary-snapshot", "missing end-of-file trailer (truncated at " +
                                      std::to_string(in.position()) + " of " +
                                      std::to_string(data.size()) + " bytes)");
    return false;
  }
  if (!in.exhausted()) {
    sink.error("binary-snapshot", std::to_string(in.remaining()) +
                                      " trailing bytes after the end-of-file trailer");
    return false;
  }
  return true;
}

/// Splices a recorder append frame onto the materialized base payload.
bool splice_recorder_append(const std::string& base, std::string_view append,
                            std::string& out, support::DiagnosticSink& sink) {
  ByteReader base_in(base);
  const std::uint64_t base_total = base_in.u64();
  const std::uint32_t base_count = base_in.u32();
  ByteReader append_in(append);
  const std::uint64_t new_total = append_in.u64();
  const std::uint32_t appended = append_in.u32();
  if (base_in.failed() || append_in.failed() ||
      base_in.remaining() != static_cast<std::size_t>(base_count) * kRecorderEntryBytes ||
      append_in.remaining() != static_cast<std::size_t>(appended) * kRecorderEntryBytes ||
      new_total < base_total || new_total - base_total != appended) {
    sink.error("binary-snapshot", "malformed recorder append frame");
    return false;
  }
  ByteWriter merged;
  merged.u64(new_total);
  merged.u32(base_count + appended);
  merged.bytes(std::string_view(base).substr(kRecorderHeadBytes));
  merged.bytes(append.substr(kRecorderHeadBytes));
  out = merged.take();
  return true;
}

/// Materializes a full section list from a parsed full-snapshot frame list.
bool resolve_full(const BinarySnapshotInfo& info, std::vector<FrameEntry>& entries,
                  std::vector<FlatSection>& sections, support::DiagnosticSink& sink) {
  if (info.delta) {
    sink.error("binary-snapshot",
               "checkpoint " + std::to_string(info.seq) +
                   " is a delta (base " + std::to_string(info.base_seq) +
                   "); it cannot be restored without its chain");
    return false;
  }
  sections.clear();
  sections.reserve(entries.size());
  for (FrameEntry& entry : entries) {
    if (entry.entry_flags != kEntryPayload) {
      sink.error("binary-snapshot", "full snapshot contains a non-payload frame in " +
                                        describe(entry.kind, entry.name));
      return false;
    }
    sections.push_back({entry.kind, std::move(entry.name), std::move(entry.payload)});
  }
  return true;
}

/// Applies one delta's frames onto the materialized section list.
bool apply_delta(std::vector<FlatSection>& sections, std::vector<FrameEntry>& entries,
                 support::DiagnosticSink& sink) {
  for (FrameEntry& entry : entries) {
    FlatSection* match = nullptr;
    for (FlatSection& section : sections) {
      if (section.kind == entry.kind && section.name == entry.name) {
        match = &section;
        break;
      }
    }
    switch (entry.entry_flags) {
      case kEntryPayload:
        if (match != nullptr) {
          match->payload = std::move(entry.payload);
        } else {
          sections.push_back({entry.kind, std::move(entry.name), std::move(entry.payload)});
        }
        break;
      case kEntryReference: {
        if (match == nullptr) {
          sink.error("binary-snapshot", "delta references " + describe(entry.kind, entry.name) +
                                            " which is absent from the base");
          return false;
        }
        ByteReader expected_in(entry.payload);
        const std::uint64_t expected = expected_in.u64();
        const std::uint64_t computed = fnv1a(match->payload);
        if (computed != expected) {
          sink.error("binary-snapshot",
                     "reference checksum mismatch in " + describe(entry.kind, entry.name) +
                         ": delta expects " + to_hex(expected) + ", base holds " +
                         to_hex(computed));
          return false;
        }
        break;
      }
      case kEntryRecorderAppend: {
        if (entry.kind != SectionKind::kRecorder || match == nullptr) {
          sink.error("binary-snapshot", "append frame on non-recorder section " +
                                            describe(entry.kind, entry.name));
          return false;
        }
        std::string merged;
        if (!splice_recorder_append(match->payload, entry.payload, merged, sink)) return false;
        match->payload = std::move(merged);
        break;
      }
      default:
        sink.error("binary-snapshot", "unknown entry flags in delta");
        return false;
    }
  }
  return true;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

}  // namespace

std::string_view to_string(SectionKind kind) {
  switch (kind) {
    case SectionKind::kKernel: return "kernel";
    case SectionKind::kFaultPlan: return "fault-plan";
    case SectionKind::kRecorder: return "recorder";
    case SectionKind::kMachine: return "machine";
    case SectionKind::kBus: return "bus";
    case SectionKind::kWatchdog: return "watchdog";
    case SectionKind::kSupervisor: return "supervisor";
    case SectionKind::kBreaker: return "breaker";
    case SectionKind::kHealth: return "health";
    case SectionKind::kBank: return "bank";
  }
  return "?";
}

bool read_binary_info(std::string_view data, BinarySnapshotInfo& info,
                      support::DiagnosticSink& sink) {
  ByteReader in(data);
  return parse_header(in, data, info, sink);
}

std::string image_to_binary(const SnapshotImage& image) {
  return encode_file(0, 0, 0, payload_frames(flatten_image(image)));
}

bool image_from_binary(std::string_view data, SnapshotImage& image,
                       support::DiagnosticSink& sink) {
  BinarySnapshotInfo info;
  std::vector<FrameEntry> entries;
  if (!parse_file(data, info, entries, sink)) return false;
  std::vector<FlatSection> sections;
  if (!resolve_full(info, entries, sections, sink)) return false;
  return assemble_image(sections, image, sink);
}

bool image_from_binary_chain(const std::vector<std::string_view>& chain, SnapshotImage& image,
                             support::DiagnosticSink& sink) {
  if (chain.empty()) {
    sink.error("binary-snapshot", "empty checkpoint chain");
    return false;
  }
  BinarySnapshotInfo info;
  std::vector<FrameEntry> entries;
  if (!parse_file(chain.front(), info, entries, sink)) return false;
  std::vector<FlatSection> sections;
  if (!resolve_full(info, entries, sections, sink)) return false;
  std::uint64_t previous_seq = info.seq;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    BinarySnapshotInfo delta_info;
    std::vector<FrameEntry> delta_entries;
    if (!parse_file(chain[i], delta_info, delta_entries, sink)) return false;
    if (!delta_info.delta) {
      sink.error("binary-snapshot", "chain element #" + std::to_string(i) +
                                        " is a full snapshot, expected a delta");
      return false;
    }
    if (delta_info.base_seq != previous_seq) {
      sink.error("binary-snapshot", "chain break: delta " + std::to_string(delta_info.seq) +
                                        " expects base " + std::to_string(delta_info.base_seq) +
                                        ", chain holds " + std::to_string(previous_seq));
      return false;
    }
    if (!apply_delta(sections, delta_entries, sink)) return false;
    previous_seq = delta_info.seq;
  }
  return assemble_image(sections, image, sink);
}

bool save_snapshot_binary(const SnapshotTargets& targets, std::string& out,
                          support::DiagnosticSink& sink) {
  const auto started = std::chrono::steady_clock::now();
  SnapshotImage image;
  if (!capture_image(targets, image, sink)) return false;
  out = image_to_binary(image);
  const std::size_t sections = image.section_count();
  targets.kernel->note_snapshot_encode(out.size(), sections, sections, elapsed_ns(started));
  return true;
}

bool restore_snapshot_binary(const SnapshotTargets& targets, std::string_view data,
                             support::DiagnosticSink& sink) {
  if (targets.kernel == nullptr) {
    sink.error("snapshot", "no kernel target registered");
    return false;
  }
  const auto started = std::chrono::steady_clock::now();
  SnapshotImage image;
  if (!image_from_binary(data, image, sink)) return false;
  if (!apply_image(targets, image, sink)) return false;
  targets.kernel->note_snapshot_restore(elapsed_ns(started));
  return true;
}

bool binary_to_xml(std::string_view binary, std::string& xml, support::DiagnosticSink& sink) {
  SnapshotImage image;
  if (!image_from_binary(binary, image, sink)) return false;
  xml = image_to_xml(image);
  return true;
}

bool xml_to_binary(std::string_view xml, std::string& binary, support::DiagnosticSink& sink) {
  SnapshotImage image;
  if (!image_from_xml(xml, image, sink)) return false;
  binary = image_to_binary(image);
  return true;
}

bool IncrementalEncoder::encode(const SnapshotTargets& targets, bool force_full, Result& out,
                                support::DiagnosticSink& sink) {
  const auto started = std::chrono::steady_clock::now();
  SnapshotImage image;
  if (!capture_image(targets, image, sink)) return false;
  std::vector<FlatSection> sections = flatten_image(image);

  // Delta encoding only makes sense against an identically-shaped base.
  bool same_shape = !previous_.empty() && previous_.size() == sections.size();
  if (same_shape) {
    for (std::size_t i = 0; i < sections.size(); ++i) {
      if (previous_[i].kind != sections[i].kind || previous_[i].name != sections[i].name) {
        same_shape = false;
        break;
      }
    }
  }

  Result result;
  result.seq = next_seq_++;
  result.sections_total = sections.size();
  if (force_full || !same_shape) {
    result.delta = false;
    result.base_seq = 0;
    result.sections_dirty = sections.size();
    result.bytes = encode_file(0, result.seq, 0, payload_frames(sections));
  } else {
    result.delta = true;
    result.base_seq = last_seq_;
    std::vector<FrameEntry> entries;
    entries.reserve(sections.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
      const std::string& previous = previous_[i].payload;
      const std::string& current = sections[i].payload;
      FrameEntry entry;
      entry.kind = sections[i].kind;
      entry.name = sections[i].name;
      bool appendable = false;
      if (sections[i].kind == SectionKind::kRecorder && current.size() > previous.size() &&
          previous.size() >= kRecorderHeadBytes &&
          current.compare(kRecorderHeadBytes, previous.size() - kRecorderHeadBytes, previous,
                          kRecorderHeadBytes, previous.size() - kRecorderHeadBytes) == 0) {
        // The splice invariant the decoder checks: the total grew by exactly
        // the number of appended entries (a ring drop breaks this).
        ByteReader previous_head(previous);
        ByteReader current_head(current);
        const std::uint64_t previous_total = previous_head.u64();
        const std::uint64_t current_total = current_head.u64();
        appendable = current_total >= previous_total &&
                     current_total - previous_total ==
                         (current.size() - previous.size()) / kRecorderEntryBytes;
      }
      if (current == previous) {
        // Reference frame: the payload is the expected hash of the base's
        // payload, so drift is caught when the chain is resolved.
        ByteWriter expected;
        expected.u64(fnv1a(current));
        entry.entry_flags = kEntryReference;
        entry.payload = expected.take();
      } else if (appendable) {
        // The log only grew: ship just the new entries. (A ring wraparound
        // breaks the prefix property and falls through to a full payload.)
        ByteWriter append;
        append.bytes(std::string_view(current).substr(0, kRecorderHeadBytes - 4));
        append.u32(static_cast<std::uint32_t>((current.size() - previous.size()) /
                                              kRecorderEntryBytes));
        append.bytes(std::string_view(current).substr(previous.size()));
        entry.entry_flags = kEntryRecorderAppend;
        entry.payload = append.take();
        ++result.sections_dirty;
      } else {
        entry.entry_flags = kEntryPayload;
        entry.payload = current;
        ++result.sections_dirty;
      }
      entries.push_back(std::move(entry));
    }
    result.bytes = encode_file(kFlagDelta, result.seq, result.base_seq, entries);
  }

  previous_.clear();
  previous_.reserve(sections.size());
  for (FlatSection& section : sections) {
    previous_.push_back({section.kind, std::move(section.name), std::move(section.payload)});
  }
  last_seq_ = result.seq;
  targets.kernel->note_snapshot_encode(result.bytes.size(), result.sections_dirty,
                                       result.sections_total, elapsed_ns(started));
  out = std::move(result);
  return true;
}

}  // namespace umlsoc::replay
