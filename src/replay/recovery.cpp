#include "replay/recovery.hpp"

#include <algorithm>
#include <utility>

#include "codegen/plantuml.hpp"
#include "interaction/from_trace.hpp"
#include "interaction/trace.hpp"

namespace umlsoc::replay {

namespace {

// Trace labels are "From->To:message"; a process label containing the
// separator tokens would corrupt the parse, so they are rewritten.
std::string sanitize_participant(std::string label) {
  for (char& c : label) {
    if (c == ':' || c == '>' || c == '-') c = '_';
  }
  return label;
}

}  // namespace

RecoveryCoordinator::RecoveryCoordinator(sim::Kernel& kernel, CheckpointStore& store,
                                         SnapshotTargets targets, RecoveryPolicy policy)
    : kernel_(kernel), store_(store), targets_(std::move(targets)), policy_(policy) {
  if (policy_.checkpoint_interval.picoseconds() == 0) {
    policy_.checkpoint_interval = sim::SimTime(1);
  }
  // Derive the cadence in place so policy() reports the effective value
  // (callers build lost-work bounds from it).
  if (policy_.tick_interval.picoseconds() == 0) {
    policy_.tick_interval = sim::SimTime(std::max<std::uint64_t>(
        1, policy_.checkpoint_interval.picoseconds() / 4));
  }
  tick_process_ = kernel_.register_process([this] { tick(); }, "recovery.tick");
}

void RecoveryCoordinator::start() {
  if (started_) return;
  started_ = true;
  kernel_.schedule(policy_.tick_interval, tick_process_);
}

void RecoveryCoordinator::tick() {
  ++stats_.ticks;
  // Reschedule before anything else: the pending next tick must be part of
  // every checkpoint captured at this instant, so a restored rig's ladder
  // keeps growing on its own.
  kernel_.schedule(policy_.tick_interval, tick_process_);
  // Inside a verify replay (rollback or root-cause probe) the restored
  // schedule re-executes this tick, but stats_.last_checkpoint_ps still
  // holds the pre-restore value — the due-math would underflow and a rung
  // of mid-replay (possibly diverged) state would land at the top of the
  // ladder, which the next restore_latest_good would adopt as newest-good.
  // Writes stay gated until adopt_restored_state() refreshes the clocks.
  if (replaying_) return;
  if (!running_) return;
  // With a rollback latched, the rig is running post-poison state until the
  // driver gets around to maybe_rollback(); writing rungs now would let the
  // restore land *after* the poison instant. The pending flag is set inside
  // the simulation (the escalation is a process body), so skipping here is
  // just as sim-deterministic as writing.
  if (pending_.has_value()) return;

  const std::uint64_t now_ps = kernel_.now().picoseconds();
  const std::uint64_t events = kernel_.events_processed();
  const bool interval_due =
      now_ps - stats_.last_checkpoint_ps >= policy_.checkpoint_interval.picoseconds();
  const bool dirty_due = policy_.dirty_event_threshold != 0 &&
                         events - events_at_last_ >= policy_.dirty_event_threshold;
  if (!interval_due && !dirty_due) return;

  ++stats_.attempts;
  if (!budget_allows_write()) {
    // The skip is accounted as a completed interval: cadence bookkeeping
    // advances exactly as if the write had happened, so the tick schedule
    // and due-decisions stay a pure function of sim time.
    ++stats_.budget_skips;
    stats_.last_checkpoint_ps = now_ps;
    events_at_last_ = events;
    return;
  }

  support::DiagnosticSink sink;
  CheckpointStore::WriteResult result;
  if (!store_.checkpoint(targets_, result, sink)) {
    // Capture refused (in-flight bus transactions, co-batched work): leave
    // the due-tracking untouched so the next tick retries.
    ++stats_.refusals;
    return;
  }
  ++stats_.written;
  stats_.last_checkpoint_ps = now_ps;
  stats_.last_checkpoint_seq = result.seq;
  events_at_last_ = events;
}

bool RecoveryCoordinator::budget_allows_write() const {
  if (policy_.overhead_budget_ns_per_interval == 0) return true;
  // Token bucket over the kernel's encode-time accounting: one bucket of
  // budget per elapsed checkpoint interval (plus the initial one).
  const std::uint64_t intervals =
      1 + kernel_.now().picoseconds() / policy_.checkpoint_interval.picoseconds();
  return kernel_.stats().snapshot.encode_wall_ns <=
         policy_.overhead_budget_ns_per_interval * intervals;
}

void RecoveryCoordinator::adopt_restored_state() {
  stats_.last_checkpoint_ps = kernel_.now().picoseconds();
  stats_.last_checkpoint_seq = store_.stats().restored_seq;
  events_at_last_ = kernel_.events_processed();
}

bool RecoveryCoordinator::recover(support::DiagnosticSink& sink) {
  if (!store_.restore_latest_good(targets_, sink)) return false;
  store_.resume_numbering();
  adopt_restored_state();
  // The restored schedule contains the crashed rig's pending tick, which
  // reschedules itself — the chain continues without a fresh start().
  started_ = true;
  running_ = true;
  return true;
}

void RecoveryCoordinator::attach_supervisor(sim::Supervisor& supervisor) {
  supervisor_ = &supervisor;
  supervisor.set_rollback_handler([this](const std::string& reason) {
    // An escalation re-executed under verify replay must reproduce the
    // original acceptance (the recorded trajectory suspended here) without
    // latching a new poison or spending rollback budget.
    if (replaying_) return true;
    if (pending_.has_value()) return false;
    if (stats_.rollbacks >= policy_.max_rollbacks) return false;
    sim::EventRecorder* recorder = targets_.recorder;
    if (recorder == nullptr || recorder->total_events() == 0) return false;
    // The poison is the most recently recorded activation: run_process
    // records before the body runs, and the escalation is synchronous
    // within the failing body.
    pending_ = PoisonPoint{reason, recorder->total_events() - 1,
                           kernel_.now().picoseconds()};
    return true;
  });
}

bool RecoveryCoordinator::maybe_rollback(support::DiagnosticSink& sink) {
  if (!pending_.has_value()) return true;
  const PoisonPoint poison = *pending_;
  pending_.reset();

  sim::EventRecorder* recorder = targets_.recorder;
  if (recorder == nullptr) {
    ++stats_.failed_rollbacks;
    sink.error("recovery", "rollback requires a recorder target");
    if (supervisor_ != nullptr) supervisor_->force_give_up("rollback failed: no recorder");
    return false;
  }
  // Snapshot the failure run's log BEFORE the restore overwrites it.
  std::vector<sim::RecordedEvent> expected = recorder->log();
  if (recorder->total_events() != expected.size() ||
      poison.event_index >= expected.size()) {
    ++stats_.failed_rollbacks;
    sink.error("recovery",
               "rollback requires an unbounded recorder (ring overwrote the suffix)");
    if (supervisor_ != nullptr) {
      supervisor_->force_give_up("rollback failed: recorder log incomplete");
    }
    return false;
  }

  if (!store_.restore_latest_good(targets_, sink)) {
    ++stats_.failed_rollbacks;
    if (supervisor_ != nullptr) {
      supervisor_->force_give_up("rollback failed: checkpoint ladder exhausted (" +
                                 poison.reason + ")");
    }
    return false;
  }
  store_.resume_numbering();

  // Replay the recorded suffix up to — but excluding — the poison instant,
  // under verification: a restored rig that does not reproduce its own
  // history bit-for-bit must not be resumed.
  const std::uint64_t poison_at = expected[poison.event_index].at_ps;
  const std::uint64_t restored_total = recorder->total_events();
  std::vector<sim::RecordedEvent> prefix(
      expected.begin(), expected.begin() + static_cast<std::ptrdiff_t>(poison.event_index));
  recorder->begin_verify(std::move(prefix), restored_total);
  replaying_ = true;
  if (poison_at > 0) kernel_.run(sim::SimTime(poison_at - 1));
  replaying_ = false;
  const std::optional<sim::EventRecorder::Divergence> divergence = recorder->divergence();
  recorder->end_verify();
  if (divergence.has_value()) {
    ++stats_.failed_rollbacks;
    if (supervisor_ != nullptr) {
      supervisor_->force_give_up("rollback replay diverged: " + divergence->str());
    }
    return false;
  }

  // The model's chance to suppress the poison before it re-executes live.
  if (on_rollback_ != nullptr) on_rollback_(poison.reason);
  if (supervisor_ != nullptr) supervisor_->resume_after_rollback();
  adopt_restored_state();
  running_ = true;
  // The resume itself is a host-side discontinuity (suspension and restart
  // window cleared between run() slices) that no recorded activation marks,
  // so a later rollback must never verify-replay across it: seed the ladder
  // with a fresh post-resume rung. A refused capture here is tolerable —
  // the background tick retries, and a replay that does cross the gap fails
  // closed as a divergence.
  CheckpointStore::WriteResult resume_rung;
  if (store_.checkpoint(targets_, resume_rung, sink)) {
    stats_.last_checkpoint_ps = kernel_.now().picoseconds();
    stats_.last_checkpoint_seq = resume_rung.seq;
    events_at_last_ = kernel_.events_processed();
  }
  ++stats_.rollbacks;
  sink.note("recovery",
            "rolled back to checkpoint " + std::to_string(stats_.last_checkpoint_seq) +
                ", replayed " + std::to_string(poison.event_index - restored_total) +
                " events to " + kernel_.now().str() + " (" + poison.reason + ")");
  return true;
}

bool RecoveryCoordinator::restore_to(std::uint64_t seq, support::DiagnosticSink& sink) {
  if (!store_.restore_to(seq, targets_, sink)) return false;
  store_.resume_numbering();
  adopt_restored_state();
  return true;
}

RecoveryCoordinator::ProbeOutcome RecoveryCoordinator::probe_prefix(
    const std::vector<sim::RecordedEvent>& expected, std::uint64_t index,
    const std::function<bool()>& failed,
    std::optional<sim::EventRecorder::Divergence>& divergence,
    support::DiagnosticSink& sink) {
  // A failed restore is NOT a passing probe: conflating the two would let a
  // mid-search ladder failure silently steer the binary search.
  if (!store_.restore_latest_good(targets_, sink)) return ProbeOutcome::kError;
  store_.resume_numbering();
  sim::EventRecorder* recorder = targets_.recorder;
  recorder->begin_verify(expected, recorder->total_events());
  // Timestamp granularity: the probe executes through the whole instant
  // containing the indexed event.
  replaying_ = true;
  kernel_.run(sim::SimTime(expected[index].at_ps));
  replaying_ = false;
  bool bad = recorder->divergence().has_value();
  if (bad) divergence = recorder->divergence();
  recorder->end_verify();
  if (!bad && failed != nullptr) bad = failed();
  return bad ? ProbeOutcome::kTripped : ProbeOutcome::kPassed;
}

RecoveryCoordinator::RootCauseReport RecoveryCoordinator::root_cause(
    const std::vector<sim::RecordedEvent>& expected, std::uint64_t failure_index,
    const std::function<bool()>& failed, support::DiagnosticSink& sink) {
  RootCauseReport report;
  sim::EventRecorder* recorder = targets_.recorder;
  if (recorder == nullptr) {
    sink.error("recovery", "root-cause search requires a recorder target");
    return report;
  }
  if (expected.empty()) {
    report.summary = "empty expected log";
    return report;
  }
  failure_index = std::min<std::uint64_t>(failure_index, expected.size() - 1);

  // Rewind once to learn where the last good rung sits in the stream.
  if (!store_.restore_latest_good(targets_, sink)) {
    report.summary = "checkpoint ladder exhausted";
    return report;
  }
  store_.resume_numbering();
  const std::uint64_t base_seq = store_.stats().restored_seq;
  const std::uint64_t base_total = recorder->total_events();
  if (failure_index < base_total) {
    report.summary = "failure at stream index " + std::to_string(failure_index) +
                     " precedes the last good checkpoint (stream position " +
                     std::to_string(base_total) + ")";
    adopt_restored_state();
    return report;
  }

  // Epilogue for every path that ran at least one probe: leave the rig
  // rewound to the last good rung, and clear a suspension a probed
  // escalation may have latched on a supervisor that is not itself a
  // snapshot target (mirrors maybe_rollback's resume).
  const auto rewind = [&] {
    if (store_.restore_latest_good(targets_, sink)) store_.resume_numbering();
    if (supervisor_ != nullptr) supervisor_->resume_after_rollback();
    adopt_restored_state();
  };

  // The search invariant needs probe(failure_index) to trip the oracle.
  std::optional<sim::EventRecorder::Divergence> culprit_divergence;
  ++report.probes;
  const ProbeOutcome anchor =
      probe_prefix(expected, failure_index, failed, culprit_divergence, sink);
  if (anchor == ProbeOutcome::kError) {
    report.summary = "checkpoint ladder exhausted during probing";
    rewind();
    return report;
  }
  if (anchor == ProbeOutcome::kPassed) {
    report.summary = "failure does not reproduce under replay through stream index " +
                     std::to_string(failure_index);
    rewind();
    return report;
  }

  // Earliest index in [base_total, failure_index] whose probe trips.
  std::uint64_t lo = base_total;
  std::uint64_t hi = failure_index;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    ++report.probes;
    std::optional<sim::EventRecorder::Divergence> div;
    const ProbeOutcome outcome = probe_prefix(expected, mid, failed, div, sink);
    if (outcome == ProbeOutcome::kError) {
      report.summary = "checkpoint ladder exhausted during probing (after " +
                       std::to_string(report.probes) + " probes)";
      rewind();
      return report;
    }
    if (outcome == ProbeOutcome::kTripped) {
      hi = mid;
      culprit_divergence = div;
    } else {
      lo = mid + 1;
    }
  }
  report.found = true;
  report.first_bad_index = hi;
  report.divergence = culprit_divergence;

  const sim::RecordedEvent& culprit = expected[hi];
  const std::string& label = kernel_.process_label(culprit.process);
  report.summary =
      "earliest divergent activation at stream index " + std::to_string(hi) + ": process " +
      std::to_string(culprit.process) + (label.empty() ? "" : " '" + label + "'") + " at " +
      sim::SimTime(culprit.at_ps).str() + " (" + std::to_string(report.probes) +
      " probes from checkpoint " + std::to_string(base_seq) + " at stream position " +
      std::to_string(base_total) + ")";

  // Sequence diagram of the activations surrounding the culprit: each
  // recorded activation is drawn as a kernel->process dispatch message.
  interaction::Trace trace;
  const std::uint64_t window_begin = std::max<std::uint64_t>(
      base_total, hi >= 4 ? hi - 4 : 0);
  const std::uint64_t window_end =
      std::min<std::uint64_t>(expected.size(), hi + 4);
  for (std::uint64_t i = window_begin; i < window_end; ++i) {
    const sim::RecordedEvent& event = expected[i];
    std::string participant = sanitize_participant(kernel_.process_label(event.process));
    if (participant.empty()) participant = "p" + std::to_string(event.process);
    std::string message = "activate #" + std::to_string(i) + " at " +
                          sim::SimTime(event.at_ps).str();
    if (i == hi) message += " [first divergent]";
    trace.push_back("kernel->" + participant + ":" + message);
  }
  const auto diagram = interaction::interaction_from_trace("root-cause", trace);
  if (diagram != nullptr) {
    report.sequence_diagram = codegen::to_plantuml_sequence(*diagram);
  }

  // The final probe left the rig mid-replay somewhere inside the window.
  rewind();
  return report;
}

}  // namespace umlsoc::replay
