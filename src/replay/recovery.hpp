// Recovery orchestration over the checkpoint ladder.
//
// RecoveryCoordinator closes the loop between the checkpoint machinery
// (replay/store.hpp), the event recorder (sim/replay.hpp) and supervision
// (sim/supervise.hpp). Three capabilities, one owner:
//
//  1. Policy-driven background checkpointing. A kernel process ticks at a
//     fixed sim-time cadence; each tick writes the next ladder rung when the
//     checkpoint interval has elapsed or the dirty-event threshold has been
//     crossed. The tick reschedules itself *before* capturing, so the
//     pending next tick is part of every checkpoint — a restored rig's
//     ladder keeps growing without anyone re-arming it. A wall-clock
//     overhead budget (token bucket over Kernel::Stats.snapshot encode
//     time) can skip writes when checkpointing costs too much host time;
//     skips never alter the tick schedule, so twin rigs with and without
//     disk pressure still execute identical event streams.
//
//  2. Rollback escalation. attach_supervisor() installs a rollback handler
//     one rung below the supervisor's terminal give-up: when the restart
//     budget is exhausted at the root, the coordinator accepts the failure
//     (bounded by policy.max_rollbacks), latches the poison point, and the
//     supervisor suspends instead of giving up. The driver then calls
//     maybe_rollback() between run() slices: the newest good checkpoint is
//     restored into the live rig, the recorded suffix up to (but excluding)
//     the poison instant is replayed under verify mode, and — if the replay
//     is bit-identical — the rig resumes with the on_rollback hook given a
//     chance to suppress the poison (disarm a fault site, drop a request).
//     A diverged replay, an exhausted ladder or a spent retry budget
//     escalates to Supervisor::force_give_up.
//
//  3. Time travel. restore_to(seq) rewinds the live rig to any surviving
//     rung, and root_cause() binary-searches the recorded event log between
//     the last good checkpoint and a failure point — restoring and
//     verify-replaying a probe prefix per step — to find the earliest
//     activation at which the failure oracle first trips, rendered as a
//     PlantUML sequence diagram of the surrounding activations.
//
// Determinism contract: everything the coordinator schedules depends only
// on sim time and policy, never on wall clock or disk outcomes. The
// overhead budget affects which ticks *write*, not when ticks *run* — so
// enabling it changes recovery granularity, not execution. Rigs that are
// compared bit-for-bit should leave the budget at 0 (unlimited).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "replay/store.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::replay {

struct RecoveryPolicy {
  /// Target sim time between written checkpoints; the lost-work bound after
  /// a crash. Must be nonzero.
  sim::SimTime checkpoint_interval{1'000'000};  // 1us
  /// Cadence of the background tick process. Zero: checkpoint_interval / 4
  /// (so a refused capture — e.g. in-flight bus transactions — retries well
  /// before a full interval of work is at risk). The coordinator writes the
  /// derived cadence back, so policy() always reports the effective value
  /// (lost-work bounds can be built from it either way).
  sim::SimTime tick_interval{0};
  /// Events-processed delta that forces an early checkpoint before the
  /// interval elapses (burst protection). Zero disables the trigger.
  std::uint64_t dirty_event_threshold = 0;
  /// Wall-clock encode budget, in nanoseconds of
  /// Kernel::Stats.snapshot.encode_wall_ns per checkpoint_interval of sim
  /// time. Ticks that would overdraw the bucket skip the write (counted in
  /// Stats::budget_skips). Zero: unlimited. Incompatible with bit-identical
  /// twin comparison — wall clock decides which rungs exist.
  std::uint64_t overhead_budget_ns_per_interval = 0;
  /// Rollback recoveries accepted before the handler lets the supervisor
  /// give up terminally.
  unsigned max_rollbacks = 3;
};

class RecoveryCoordinator {
 public:
  struct Stats {
    std::uint64_t ticks = 0;             ///< Background tick executions.
    std::uint64_t attempts = 0;          ///< Due ticks that tried to write.
    std::uint64_t written = 0;           ///< Checkpoints actually written.
    std::uint64_t refusals = 0;          ///< Captures refused (retry next tick).
    std::uint64_t budget_skips = 0;      ///< Writes skipped by the overhead budget.
    std::uint64_t rollbacks = 0;         ///< Successful rollback recoveries.
    std::uint64_t failed_rollbacks = 0;  ///< Rollbacks that ended in give-up.
    std::uint64_t last_checkpoint_ps = 0;
    std::uint64_t last_checkpoint_seq = 0;
  };

  /// The poison point latched when a supervisor escalates into rollback.
  struct PoisonPoint {
    std::string reason;          ///< The exhausted-budget escalation reason.
    std::uint64_t event_index = 0;  ///< Recorder stream index of the poison event.
    std::uint64_t at_ps = 0;        ///< Sim time of the escalation.
  };

  /// Root-cause search result. `first_bad_index` is the earliest recorder
  /// stream index whose replay-probe trips the failure oracle; probes run
  /// at timestamp granularity (the probe executes through the whole instant
  /// containing the indexed event).
  struct RootCauseReport {
    bool found = false;
    std::uint64_t first_bad_index = 0;
    std::uint64_t probes = 0;
    std::optional<sim::EventRecorder::Divergence> divergence;
    std::string summary;
    std::string sequence_diagram;  ///< PlantUML of activations around the culprit.
  };

  /// `targets` must include the kernel and, for rollback/root-cause, an
  /// unbounded (non-ring) recorder. All referenced components must outlive
  /// the coordinator. Registers the tick process immediately (construction
  /// order is part of the deterministic-setup contract), but nothing runs
  /// until start() or recover().
  RecoveryCoordinator(sim::Kernel& kernel, CheckpointStore& store, SnapshotTargets targets,
                      RecoveryPolicy policy);

  /// Schedules the first background tick. Call exactly once per fresh run;
  /// a recovered rig must NOT call it (the restored pending tick continues
  /// the chain).
  void start();

  /// Stops writing checkpoints; ticks keep running (determinism) but do
  /// nothing.
  void stop() { running_ = false; }

  /// Cold-start crash recovery: restores the newest good rung of `store`
  /// into the (freshly constructed, same-setup) targets, resets the encoder
  /// chain, and adopts the restored schedule — including the pending tick
  /// captured by the crashed rig, which is why start() must not be called.
  /// Returns false when the ladder is exhausted.
  [[nodiscard]] bool recover(support::DiagnosticSink& sink);

  /// Installs this coordinator as `supervisor`'s rollback escalation
  /// handler. The handler accepts failures while the rollback budget lasts,
  /// latching the poison point for maybe_rollback().
  void attach_supervisor(sim::Supervisor& supervisor);

  /// Hook invoked after a successful rollback replay, before the rig
  /// resumes — the model's chance to suppress the poison (disarm a fault
  /// site, drop the offending request) so the failure does not simply
  /// recur. Receives the escalation reason.
  void set_on_rollback(std::function<void(const std::string& reason)> hook) {
    on_rollback_ = std::move(hook);
  }

  [[nodiscard]] bool rollback_pending() const { return pending_.has_value(); }
  [[nodiscard]] const std::optional<PoisonPoint>& poison() const { return pending_; }

  /// Executes a pending rollback; call between run() slices when
  /// rollback_pending(). Restores the newest good checkpoint into the live
  /// rig, verify-replays the recorded suffix up to (but excluding) the
  /// poison instant, invokes the on_rollback hook, clears the supervisor's
  /// suspension and resumes checkpointing. Returns true when the rig is
  /// live again; false means terminal give-up (ladder exhausted or replay
  /// diverged) and the supervisor has been force_give_up'd. With no pending
  /// rollback, returns true and does nothing.
  [[nodiscard]] bool maybe_rollback(support::DiagnosticSink& sink);

  /// Time travel: rewinds the live rig to the newest rung with sequence
  /// <= `seq` and resumes checkpointing from there (chain reset, next write
  /// is a full). Returns false when no such rung restores.
  [[nodiscard]] bool restore_to(std::uint64_t seq, support::DiagnosticSink& sink);

  /// Binary-searches `expected[last-good-checkpoint .. failure_index]` for
  /// the earliest activation at which `failed` first reports true (or, when
  /// `failed` is null, at which the replay itself first diverges). Each
  /// probe rewinds the rig to the last good rung and verify-replays the
  /// prefix through the probe instant; a restore that fails mid-search
  /// aborts with a "ladder exhausted during probing" summary instead of
  /// skewing the search. The rig is left rewound to the last good
  /// checkpoint, with an attached supervisor resumed (a probed escalation
  /// suspends it, and a supervisor outside the snapshot targets is not
  /// un-suspended by the restore); callers that want the failure state back
  /// must replay it themselves.
  [[nodiscard]] RootCauseReport root_cause(const std::vector<sim::RecordedEvent>& expected,
                                           std::uint64_t failure_index,
                                           const std::function<bool()>& failed,
                                           support::DiagnosticSink& sink);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const SnapshotTargets& targets() const { return targets_; }
  [[nodiscard]] const RecoveryPolicy& policy() const { return policy_; }

 private:
  /// A probe either reproduces the failure, runs clean, or could not run at
  /// all (restore failed) — the last must never be read as "passed".
  enum class ProbeOutcome { kPassed, kTripped, kError };

  void tick();
  [[nodiscard]] bool budget_allows_write() const;
  void adopt_restored_state();
  [[nodiscard]] ProbeOutcome probe_prefix(
      const std::vector<sim::RecordedEvent>& expected, std::uint64_t index,
      const std::function<bool()>& failed,
      std::optional<sim::EventRecorder::Divergence>& divergence,
      support::DiagnosticSink& sink);

  sim::Kernel& kernel_;
  CheckpointStore& store_;
  SnapshotTargets targets_;
  RecoveryPolicy policy_;
  sim::ProcessId tick_process_ = sim::kInvalidProcess;
  sim::Supervisor* supervisor_ = nullptr;
  std::function<void(const std::string&)> on_rollback_;
  std::optional<PoisonPoint> pending_;
  bool started_ = false;
  bool running_ = true;
  bool replaying_ = false;  ///< Inside a verify replay (rollback or probe).
  std::uint64_t events_at_last_ = 0;  ///< events_processed at the last written rung.
  Stats stats_;
};

}  // namespace umlsoc::replay
