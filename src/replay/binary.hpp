// Binary snapshot encoding: the high-frequency checkpoint format.
//
// Same content, same section structure and same refusal rules as the XML
// snapshot (replay/snapshot.hpp) — both formats are pure transcodings of
// SnapshotImage, which is what makes the binary<->XML converters lossless
// by construction. XML stays the inspection format; binary is what the
// CheckpointStore writes on the hot path.
//
// File layout (all integers little-endian):
//
//   "USNAPBIN"                     8-byte magic
//   u32 version                    kSnapshotVersion; any other value rejected
//   u32 flags                      bit 0: delta (needs a base to resolve)
//   u64 seq                        checkpoint sequence number
//   u64 base_seq                   predecessor in the delta chain (0 = full)
//   u32 section_count
//   u64 header checksum            FNV-1a over every header byte above
//   section frames ...
//   "USNAPEND"                     8-byte trailer
//
// Section frame:
//
//   u8  kind                       SectionKind
//   u16 name_len + bytes           "" for kernel / fault-plan / recorder
//   u8  entry flags                0 payload, 1 reference, 2 recorder-append
//   u32 payload_len
//   u64 frame checksum             FNV-1a over metadata bytes + payload bytes
//   payload bytes
//
// The frame checksum covers the frame's metadata (kind, name, flags,
// length) as well as its payload, so truncation and bit-flips anywhere in a
// frame are detected and reported at section granularity (section name,
// byte offset, stored vs computed checksum) instead of one opaque
// document-level failure.
//
// Incremental checkpoints: a delta file carries full payloads only for the
// sections that changed since the previous checkpoint. Clean sections
// shrink to a *reference* frame whose 8-byte payload is the expected hash
// of the base's payload, so a drifted base is caught at resolve time.
// The event-recorder section — which only ever grows during a run — gets a
// dedicated *append* frame carrying just the new entries, spliced onto the
// base payload byte-for-byte. IncrementalEncoder detects all three cases by
// comparing encoded payload bytes, with cheap component revision()
// fingerprints as the conservative fast path upstream.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "replay/snapshot.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::replay {

inline constexpr std::string_view kBinaryMagic = "USNAPBIN";
inline constexpr std::string_view kBinaryTrailer = "USNAPEND";

/// Section kind tags (stable on-disk values).
enum class SectionKind : std::uint8_t {
  kKernel = 1,
  kFaultPlan = 2,
  kRecorder = 3,
  kMachine = 4,
  kBus = 5,
  kWatchdog = 6,
  kSupervisor = 7,
  kBreaker = 8,
  kHealth = 9,
  kBank = 10,
};

[[nodiscard]] std::string_view to_string(SectionKind kind);

/// Parsed header of a binary snapshot (no payload validation).
struct BinarySnapshotInfo {
  int version = 0;
  bool delta = false;
  std::uint64_t seq = 0;
  std::uint64_t base_seq = 0;
  std::uint32_t section_count = 0;
};

/// Parses and validates just the fixed header (magic, version, header
/// checksum). Cheap enough to classify files before a full decode.
[[nodiscard]] bool read_binary_info(std::string_view data, BinarySnapshotInfo& info,
                                    support::DiagnosticSink& sink);

/// Serializes an image as a standalone full binary snapshot (seq 0).
[[nodiscard]] std::string image_to_binary(const SnapshotImage& image);

/// Parses and fully validates a standalone full binary snapshot. Delta
/// files are rejected (they need their chain — see image_from_binary_chain).
[[nodiscard]] bool image_from_binary(std::string_view data, SnapshotImage& image,
                                     support::DiagnosticSink& sink);

/// Resolves a delta chain — chain[0] must be a full snapshot, each later
/// element a delta whose base_seq links to its predecessor's seq — into the
/// final image. Reference frames are verified against the materialized base
/// payloads; any link or checksum break fails with a structured diagnostic.
[[nodiscard]] bool image_from_binary_chain(const std::vector<std::string_view>& chain,
                                           SnapshotImage& image,
                                           support::DiagnosticSink& sink);

/// save_snapshot, binary edition: same refusal rules (capture_image), binary
/// encoding, SnapshotStats accounting on the kernel.
[[nodiscard]] bool save_snapshot_binary(const SnapshotTargets& targets, std::string& out,
                                        support::DiagnosticSink& sink);

/// restore_snapshot, binary edition (standalone full snapshots). Fully
/// validates before touching any target.
[[nodiscard]] bool restore_snapshot_binary(const SnapshotTargets& targets,
                                           std::string_view data,
                                           support::DiagnosticSink& sink);

// --- converters --------------------------------------------------------------
// Lossless in both directions: each side decodes to SnapshotImage and
// re-encodes with the other codec, so xml -> binary -> xml reproduces the
// canonical XML document byte-for-byte (checksums included).

[[nodiscard]] bool binary_to_xml(std::string_view binary, std::string& xml,
                                 support::DiagnosticSink& sink);
[[nodiscard]] bool xml_to_binary(std::string_view xml, std::string& binary,
                                 support::DiagnosticSink& sink);

// --- incremental encoding ----------------------------------------------------

/// Encodes a stream of checkpoints from the same targets, emitting full
/// snapshots as chain bases and dirty-section deltas in between. Dirty
/// detection compares encoded payload bytes against the previous
/// checkpoint, so a section that merely *ticked* without changing state
/// still dedups to a reference frame. If the section set itself changes
/// (targets added/removed), the encoder falls back to a full snapshot.
class IncrementalEncoder {
 public:
  struct Result {
    std::string bytes;
    bool delta = false;
    std::uint64_t seq = 0;
    std::uint64_t base_seq = 0;  ///< 0 for full snapshots.
    std::size_t sections_dirty = 0;
    std::size_t sections_total = 0;
  };

  /// Captures the targets (same refusal rules as save_snapshot) and encodes
  /// the next checkpoint in the chain. `force_full` starts a new base.
  /// Updates the kernel's SnapshotStats.
  [[nodiscard]] bool encode(const SnapshotTargets& targets, bool force_full, Result& out,
                            support::DiagnosticSink& sink);

  /// Forgets the chain; the next encode is a full snapshot.
  void reset() {
    previous_.clear();
    last_seq_ = 0;
  }

  /// reset() plus: continues sequence numbering strictly above `seq`. Used
  /// when a freshly constructed encoder resumes writing into a directory
  /// whose rungs survive — new files must never collide with (or sort
  /// below) existing ones.
  void resume_after(std::uint64_t seq) {
    reset();
    if (next_seq_ <= seq) next_seq_ = seq + 1;
  }

  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }

 private:
  struct PrevSection {
    SectionKind kind;
    std::string name;
    std::string payload;
  };
  std::vector<PrevSection> previous_;  ///< Empty = no base yet.
  std::uint64_t next_seq_ = 1;
  std::uint64_t last_seq_ = 0;
};

}  // namespace umlsoc::replay
