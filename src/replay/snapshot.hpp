// Versioned checkpoint/restore for executable models.
//
// A snapshot is an XML document (reusing the xmi writer/parser) capturing
// everything a deterministic setup cannot reconstruct on its own: kernel
// time, sequence counter and pending timed-event metadata; fault-plan RNG
// stream positions and counters; statechart instance configurations
// (active states, history, variables, event pools); bus pipeline state;
// watchdog supervision flags; generic value banks (register files); and
// the event-recorder log.
//
// What is NOT captured — and why restore works anyway: process bodies,
// callbacks and model structure. The restoring process re-runs the same
// deterministic setup code (same construction order => same ProcessIds,
// same vertex pre-order => same statechart indices), then restore_snapshot
// replaces the *state* of those freshly built components. The contract is
// therefore "same setup, different process", not "cold start from bytes".
//
// Robustness: save refuses states it could not faithfully restore (pending
// bus transactions, expectations owned by anything but a registered
// watchdog, transient one-shot processes in the queue). Restore validates
// the document before touching any target: root tag, version and FNV-1a
// content checksum first, then every section is decoded and matched
// against the registered targets; only then is state applied. Malformed,
// truncated, corrupted or version-bumped input fails with structured
// diagnostics and leaves the targets unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "statechart/engine.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::replay {

/// Format version written by save_snapshot; restore_snapshot rejects any
/// other value (forward- and backward-incompatible by design: the format
/// mirrors internal state). Version 2 added the supervision sections
/// (<supervisor>, <breaker>, <health>); version 3 added per-section
/// checksums (XML attribute / binary frame field), so corruption reports
/// name the damaged section instead of just failing the document hash, and
/// a fourth fault-plan site (checkpoint-path faults); version 4 added the
/// fifth fault-plan site (simulated-crash ticks).
inline constexpr int kSnapshotVersion = 4;

struct MachineTarget {
  std::string name;
  statechart::Engine* instance = nullptr;
};

struct BusTarget {
  std::string name;
  sim::MemoryMappedBus* bus = nullptr;
};

struct WatchdogTarget {
  std::string name;
  sim::Watchdog* watchdog = nullptr;
};

struct SupervisorTarget {
  std::string name;
  sim::Supervisor* supervisor = nullptr;
};

struct BreakerTarget {
  std::string name;
  sim::CircuitBreaker* breaker = nullptr;
};

struct HealthTarget {
  std::string name;
  sim::HealthRegistry* registry = nullptr;
};

/// Generic named key/value section for components without first-class
/// snapshot support (register files, scoreboards). Capture returns the
/// values to store; restore applies a stored set and reports problems
/// through the sink.
struct ValueBank {
  std::string name;
  std::function<std::vector<std::pair<std::string, std::uint64_t>>()> capture;
  std::function<bool(const std::vector<std::pair<std::string, std::uint64_t>>&,
                     support::DiagnosticSink&)>
      restore;
};

/// The components one snapshot covers. `kernel` is required; everything
/// else is optional. Section names must be unique per kind — they are the
/// join keys between a snapshot document and a restoring process's targets.
struct SnapshotTargets {
  sim::Kernel* kernel = nullptr;
  sim::FaultPlan* fault_plan = nullptr;
  sim::EventRecorder* recorder = nullptr;
  std::vector<MachineTarget> machines;
  std::vector<BusTarget> buses;
  std::vector<WatchdogTarget> watchdogs;
  std::vector<SupervisorTarget> supervisors;
  std::vector<BreakerTarget> breakers;
  std::vector<HealthTarget> health;
  std::vector<ValueBank> banks;
};

/// Decoded, format-independent snapshot content: exactly the state the XML
/// and binary encodings carry, section order preserved. capture_image and
/// apply_image own the refusal rules and the section/target matching;
/// image_to_xml / image_from_xml (and the binary codec in replay/binary.hpp)
/// are pure transcoders over this struct — which is what makes the
/// binary<->XML converters lossless by construction.
struct SnapshotImage {
  template <typename T>
  struct Named {
    std::string name;
    T state;
  };

  sim::Kernel::Checkpoint kernel;
  /// Diagnostic process labels parallel to kernel.timed ("" when unlabeled);
  /// carried so transcoding preserves the human-readable annotations.
  std::vector<std::string> kernel_timed_labels;

  struct FaultPlanState {
    std::uint64_t seed = 0;
    std::vector<std::pair<sim::FaultSite, sim::FaultPlan::SiteState>> sites;
  };
  std::optional<FaultPlanState> fault_plan;

  struct RecorderState {
    std::uint64_t total = 0;
    std::vector<sim::RecordedEvent> events;
  };
  std::optional<RecorderState> recorder;

  std::vector<Named<statechart::InstanceSnapshot>> machines;
  std::vector<Named<sim::MemoryMappedBus::Checkpoint>> buses;
  std::vector<Named<sim::Watchdog::Checkpoint>> watchdogs;
  std::vector<Named<sim::Supervisor::Checkpoint>> supervisors;
  std::vector<Named<sim::CircuitBreaker::Checkpoint>> breakers;
  std::vector<Named<sim::HealthRegistry::Checkpoint>> health;
  std::vector<Named<std::vector<std::pair<std::string, std::uint64_t>>>> banks;

  /// Sections the image would serialize (kernel + optionals + named ones).
  [[nodiscard]] std::size_t section_count() const {
    return 1 + (fault_plan ? 1 : 0) + (recorder ? 1 : 0) + machines.size() + buses.size() +
           watchdogs.size() + supervisors.size() + breakers.size() + health.size() +
           banks.size();
  }
};

/// Captures the targets' state into `image`. Owns the refusal rules: fails
/// (reporting through `sink`) on a mid-delta kernel, pending transient
/// events, in-flight bus transactions, or outstanding expectations not
/// owned by a registered watchdog or supervisor.
[[nodiscard]] bool capture_image(const SnapshotTargets& targets, SnapshotImage& image,
                                 support::DiagnosticSink& sink);

/// Applies a decoded image to `targets`: validates fault-plan/recorder
/// presence and seed, matches every named section one-to-one against the
/// registered targets, then restores kernel first, recorder last. Matching
/// or validation failures report through `sink` and return false before any
/// mutation; component-level apply failures may leave earlier sections
/// applied — treat a failed apply as fatal.
[[nodiscard]] bool apply_image(const SnapshotTargets& targets, const SnapshotImage& image,
                               support::DiagnosticSink& sink);

/// Serializes an image as the canonical XML snapshot document (version,
/// per-section checksums, document checksum).
[[nodiscard]] std::string image_to_xml(const SnapshotImage& image);

/// Parses and fully validates an XML snapshot document (root tag, version,
/// document and per-section checksums, strict attribute syntax) into
/// `image` without touching any target.
[[nodiscard]] bool image_from_xml(std::string_view input, SnapshotImage& image,
                                  support::DiagnosticSink& sink);

/// Serializes the targets' state into `out`. Returns false (reporting
/// through `sink`, `out` untouched) when the state is not checkpointable:
/// mid-delta kernel, pending transient events, in-flight bus transactions,
/// or outstanding expectations not owned by a registered watchdog.
[[nodiscard]] bool save_snapshot(const SnapshotTargets& targets, std::string& out,
                                 support::DiagnosticSink& sink);

/// Restores a save_snapshot document into `targets`. The document is fully
/// validated (well-formedness, root tag, version, checksum, section/target
/// match, strict attribute syntax) before any target is mutated; format
/// errors therefore never leave a partial restore. Component-level
/// validation failures during apply (e.g. a snapshot from a structurally
/// different machine) also report through `sink` and return false, but may
/// leave earlier sections applied — treat a failed restore as fatal.
[[nodiscard]] bool restore_snapshot(const SnapshotTargets& targets, std::string_view input,
                                    support::DiagnosticSink& sink);

// --- warm-restart factories --------------------------------------------------
// Supervisor children restart through plain callbacks; these build the
// common ones from the snapshot machinery, so recovery reuses exactly the
// deterministic state capture the checkpoint format relies on.

/// Captures `instance`'s current state (call at the known-good point, e.g.
/// right after start()) and returns a Supervisor restart callback that
/// warm-restarts the instance from that captured snapshot. Restore failures
/// report through `sink` and make the callback return false (counted by the
/// supervisor as a failed restart). `instance` and `sink` must outlive the
/// returned callback.
[[nodiscard]] std::function<bool()> restart_from_snapshot(
    statechart::Engine& instance, support::DiagnosticSink& sink);

/// As above for a ValueBank (register file, scoreboard): captures the
/// bank's values now, restores them on every invocation.
[[nodiscard]] std::function<bool()> restart_from_bank(ValueBank bank,
                                                      support::DiagnosticSink& sink);

}  // namespace umlsoc::replay
