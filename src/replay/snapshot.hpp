// Versioned checkpoint/restore for executable models.
//
// A snapshot is an XML document (reusing the xmi writer/parser) capturing
// everything a deterministic setup cannot reconstruct on its own: kernel
// time, sequence counter and pending timed-event metadata; fault-plan RNG
// stream positions and counters; statechart instance configurations
// (active states, history, variables, event pools); bus pipeline state;
// watchdog supervision flags; generic value banks (register files); and
// the event-recorder log.
//
// What is NOT captured — and why restore works anyway: process bodies,
// callbacks and model structure. The restoring process re-runs the same
// deterministic setup code (same construction order => same ProcessIds,
// same vertex pre-order => same statechart indices), then restore_snapshot
// replaces the *state* of those freshly built components. The contract is
// therefore "same setup, different process", not "cold start from bytes".
//
// Robustness: save refuses states it could not faithfully restore (pending
// bus transactions, expectations owned by anything but a registered
// watchdog, transient one-shot processes in the queue). Restore validates
// the document before touching any target: root tag, version and FNV-1a
// content checksum first, then every section is decoded and matched
// against the registered targets; only then is state applied. Malformed,
// truncated, corrupted or version-bumped input fails with structured
// diagnostics and leaves the targets unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/bus.hpp"
#include "sim/fault.hpp"
#include "sim/kernel.hpp"
#include "sim/replay.hpp"
#include "sim/supervise.hpp"
#include "statechart/engine.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::replay {

/// Format version written by save_snapshot; restore_snapshot rejects any
/// other value (forward- and backward-incompatible by design: the format
/// mirrors internal state). Version 2 added the supervision sections
/// (<supervisor>, <breaker>, <health>).
inline constexpr int kSnapshotVersion = 2;

struct MachineTarget {
  std::string name;
  statechart::Engine* instance = nullptr;
};

struct BusTarget {
  std::string name;
  sim::MemoryMappedBus* bus = nullptr;
};

struct WatchdogTarget {
  std::string name;
  sim::Watchdog* watchdog = nullptr;
};

struct SupervisorTarget {
  std::string name;
  sim::Supervisor* supervisor = nullptr;
};

struct BreakerTarget {
  std::string name;
  sim::CircuitBreaker* breaker = nullptr;
};

struct HealthTarget {
  std::string name;
  sim::HealthRegistry* registry = nullptr;
};

/// Generic named key/value section for components without first-class
/// snapshot support (register files, scoreboards). Capture returns the
/// values to store; restore applies a stored set and reports problems
/// through the sink.
struct ValueBank {
  std::string name;
  std::function<std::vector<std::pair<std::string, std::uint64_t>>()> capture;
  std::function<bool(const std::vector<std::pair<std::string, std::uint64_t>>&,
                     support::DiagnosticSink&)>
      restore;
};

/// The components one snapshot covers. `kernel` is required; everything
/// else is optional. Section names must be unique per kind — they are the
/// join keys between a snapshot document and a restoring process's targets.
struct SnapshotTargets {
  sim::Kernel* kernel = nullptr;
  sim::FaultPlan* fault_plan = nullptr;
  sim::EventRecorder* recorder = nullptr;
  std::vector<MachineTarget> machines;
  std::vector<BusTarget> buses;
  std::vector<WatchdogTarget> watchdogs;
  std::vector<SupervisorTarget> supervisors;
  std::vector<BreakerTarget> breakers;
  std::vector<HealthTarget> health;
  std::vector<ValueBank> banks;
};

/// Serializes the targets' state into `out`. Returns false (reporting
/// through `sink`, `out` untouched) when the state is not checkpointable:
/// mid-delta kernel, pending transient events, in-flight bus transactions,
/// or outstanding expectations not owned by a registered watchdog.
[[nodiscard]] bool save_snapshot(const SnapshotTargets& targets, std::string& out,
                                 support::DiagnosticSink& sink);

/// Restores a save_snapshot document into `targets`. The document is fully
/// validated (well-formedness, root tag, version, checksum, section/target
/// match, strict attribute syntax) before any target is mutated; format
/// errors therefore never leave a partial restore. Component-level
/// validation failures during apply (e.g. a snapshot from a structurally
/// different machine) also report through `sink` and return false, but may
/// leave earlier sections applied — treat a failed restore as fatal.
[[nodiscard]] bool restore_snapshot(const SnapshotTargets& targets, std::string_view input,
                                    support::DiagnosticSink& sink);

// --- warm-restart factories --------------------------------------------------
// Supervisor children restart through plain callbacks; these build the
// common ones from the snapshot machinery, so recovery reuses exactly the
// deterministic state capture the checkpoint format relies on.

/// Captures `instance`'s current state (call at the known-good point, e.g.
/// right after start()) and returns a Supervisor restart callback that
/// warm-restarts the instance from that captured snapshot. Restore failures
/// report through `sink` and make the callback return false (counted by the
/// supervisor as a failed restart). `instance` and `sink` must outlive the
/// returned callback.
[[nodiscard]] std::function<bool()> restart_from_snapshot(
    statechart::Engine& instance, support::DiagnosticSink& sink);

/// As above for a ValueBank (register file, scoreboard): captures the
/// bank's values now, restores them on every invocation.
[[nodiscard]] std::function<bool()> restart_from_bank(ValueBank bank,
                                                      support::DiagnosticSink& sink);

}  // namespace umlsoc::replay
