// Crash-consistent checkpoint store with a recovery ladder.
//
// CheckpointStore rotates binary snapshots (replay/binary.hpp) in a
// directory: every `full_interval`-th checkpoint is a full snapshot (a
// chain base), the ones between are dirty-section deltas chained to their
// predecessor. Files are written atomically — payload to a `.tmp` sibling,
// then renamed into place — so a crash mid-write leaves either the old
// state or a stray `.tmp` the scanner ignores, never a half-visible
// checkpoint under its final name.
//
// Recovery walks the ladder: restore_latest_good() materializes the newest
// checkpoint's chain and validates every rung (header, per-section
// checksums, chain links) before anything is applied. A corrupt,
// truncated or version-skewed file is *quarantined* — renamed to
// `<name>.quarantined`, recorded with its structured diagnostics, reported
// to an optional HealthRegistry as a degraded unit — and the ladder steps
// down to the next older checkpoint until one restores or the directory is
// exhausted. Supervision warm restarts ride on this: a supervisor restart
// callback that calls restore_latest_good() recovers the newest state that
// still checks out.
//
// Fault injection: an installed FaultPlan is consulted once per write at
// FaultSite::kCheckpoint. kError tears the file (half written), kBitFlip
// flips one bit, kDropResponse models a crash before the rename (the tmp
// file never lands). The chaos soak drives exactly these paths and expects
// every seed to recover through the ladder.
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "replay/binary.hpp"
#include "replay/snapshot.hpp"
#include "sim/fault.hpp"
#include "sim/supervise.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::replay {

struct CheckpointStoreConfig {
  std::filesystem::path directory;
  std::string prefix = "ckpt";
  /// Every Nth checkpoint is a full snapshot (chain base); must be >= 1.
  /// 1 makes every checkpoint full (no deltas).
  unsigned full_interval = 8;
  /// Full bases retained. Rotation deletes everything older than the
  /// oldest retained full, so every surviving delta always has its base.
  unsigned keep_fulls = 2;
};

class CheckpointStore {
 public:
  struct WriteResult {
    std::uint64_t seq = 0;
    bool delta = false;
    bool torn = false;     ///< Injected kError: file truncated to half.
    bool lost = false;     ///< Injected kDropResponse: never renamed into place.
    bool flipped = false;  ///< Injected kBitFlip: one bit corrupted.
    std::size_t bytes = 0;
    std::filesystem::path path;
  };

  struct QuarantineRecord {
    std::filesystem::path path;
    std::string reason;  ///< Structured diagnostics from the failed validation.
  };

  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t fulls = 0;
    std::uint64_t deltas = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t write_faults = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t restores = 0;
    std::uint64_t restored_seq = 0;  ///< Seq of the last successful restore.
    std::uint64_t pruned = 0;        ///< Files deleted by rotation.
    std::uint64_t tmp_swept = 0;     ///< Stray tmp files removed at open.
  };

  explicit CheckpointStore(CheckpointStoreConfig config);

  /// Installs (or clears) the fault plan consulted per write at
  /// FaultSite::kCheckpoint.
  void install_fault_plan(sim::FaultPlan* plan) { fault_plan_ = plan; }

  /// Registers this store as a health unit; quarantines degrade it, an
  /// exhausted ladder fails it. The registry must outlive the store.
  void bind_health(sim::HealthRegistry& registry);

  /// Captures the targets (snapshot refusal rules apply) and writes the
  /// next checkpoint in the rotation. Injected write faults do NOT fail the
  /// call — a torn or lost checkpoint is the recovery ladder's problem —
  /// but are reported in `out`.
  [[nodiscard]] bool checkpoint(const SnapshotTargets& targets, WriteResult& out,
                                support::DiagnosticSink& sink);

  /// Walks the ladder newest-to-oldest: validates each checkpoint's full
  /// chain, quarantines every file that fails (structured reason recorded),
  /// and applies the newest chain that survives. Returns false only when no
  /// restorable checkpoint remains; quarantine events along the way surface
  /// as warnings on `sink`, terminal failure as an error.
  [[nodiscard]] bool restore_latest_good(const SnapshotTargets& targets,
                                         support::DiagnosticSink& sink);

  /// Time travel: restores the newest checkpoint whose sequence is <= `seq`
  /// (exactly `seq` when that rung survives on disk), materializing its
  /// full+delta chain with the same validation and quarantine behavior as
  /// restore_latest_good. Returns false when no rung at or below `seq`
  /// restores. The encoder chain is NOT reset here — callers that intend to
  /// keep checkpointing after a rewind must call reset_chain().
  [[nodiscard]] bool restore_to(std::uint64_t seq, const SnapshotTargets& targets,
                                support::DiagnosticSink& sink);

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<QuarantineRecord>& quarantined() const {
    return quarantined_;
  }
  [[nodiscard]] const CheckpointStoreConfig& config() const { return config_; }

  /// Forgets the delta chain; the next checkpoint is a full snapshot.
  /// Required after restore_latest_good (the on-disk tip may no longer
  /// match the encoder's in-memory previous payloads).
  void reset_chain() { encoder_.reset(); }

  /// reset_chain() plus: continues sequence numbering strictly above every
  /// rung still on disk, so post-recovery checkpoints never overwrite a
  /// surviving rung and always outrank them in a later ladder walk. The
  /// recovery orchestrator calls this instead of reset_chain() whenever it
  /// resumes checkpointing after a restore.
  void resume_numbering() {
    std::uint64_t newest = 0;
    for (const ScanEntry& entry : scan()) newest = std::max(newest, entry.seq);
    encoder_.resume_after(newest);
  }

  /// Newest rung present on disk (0 when the directory holds none). A cheap
  /// name scan, no validation — the cross-process handoff uses it to decide
  /// whether a dead predecessor left a ladder worth restoring before this
  /// process writes anything of its own.
  [[nodiscard]] std::uint64_t newest_on_disk() const {
    const std::vector<ScanEntry> entries = scan();
    return entries.empty() ? 0 : entries.front().seq;
  }

 private:
  struct ScanEntry {
    std::uint64_t seq = 0;
    std::filesystem::path path;
  };

  [[nodiscard]] std::filesystem::path path_for(std::uint64_t seq) const;
  /// Non-quarantined checkpoint files, seq-descending.
  [[nodiscard]] std::vector<ScanEntry> scan() const;
  /// Shared ladder walk: restores the newest rung with seq <= max_seq.
  [[nodiscard]] bool restore_ladder(std::uint64_t max_seq, const SnapshotTargets& targets,
                                    support::DiagnosticSink& sink);
  void quarantine(const std::filesystem::path& path, std::string reason,
                  support::DiagnosticSink& sink);
  void prune(support::DiagnosticSink& sink);
  /// Deletes stray `*.tmp` siblings left by a crashed (or SIGKILLed) writer.
  /// Called at open: by then any previous owner of the directory is dead —
  /// the process pool reaps a worker before re-dispatching its seed — so a
  /// surviving tmp is garbage by definition, and sweeping it keeps crashed
  /// runs from accumulating junk the scanner must skip forever.
  void sweep_stray_tmps();

  CheckpointStoreConfig config_;
  IncrementalEncoder encoder_;
  sim::FaultPlan* fault_plan_ = nullptr;
  sim::HealthRegistry* health_ = nullptr;
  sim::HealthRegistry::UnitId health_unit_ = 0;
  std::uint64_t count_ = 0;             ///< Checkpoints attempted (cadence clock).
  std::vector<std::uint64_t> fulls_;    ///< Seqs of retained full snapshots, ascending.
  std::vector<QuarantineRecord> quarantined_;
  Stats stats_;
};

}  // namespace umlsoc::replay
