#include "activity/synthetic.hpp"

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace umlsoc::activity {

std::unique_ptr<Activity> make_sequential(std::size_t actions) {
  auto activity = std::make_unique<Activity>("seq" + std::to_string(actions));
  ActivityNode& initial = activity->add_initial();
  ActivityNode* previous = &initial;
  for (std::size_t i = 0; i < actions; ++i) {
    ActivityNode& action = activity->add_action("a" + std::to_string(i));
    activity->add_edge(*previous, action);
    previous = &action;
  }
  ActivityNode& final_node = activity->add_final();
  activity->add_edge(*previous, final_node);
  return activity;
}

std::unique_ptr<Activity> make_fork_join(std::size_t width, std::size_t depth) {
  auto activity = std::make_unique<Activity>("fj_w" + std::to_string(width) + "_d" +
                                             std::to_string(depth));
  ActivityNode& initial = activity->add_initial();
  ActivityNode& fork = activity->add_node(NodeKind::kFork, "fork");
  ActivityNode& join = activity->add_node(NodeKind::kJoin, "join");
  ActivityNode& final_node = activity->add_final();
  activity->add_edge(initial, fork);
  activity->add_edge(join, final_node);

  for (std::size_t w = 0; w < width; ++w) {
    ActivityNode* previous = &fork;
    for (std::size_t d = 0; d < depth; ++d) {
      ActivityNode& action =
          activity->add_action("b" + std::to_string(w) + "_" + std::to_string(d));
      activity->add_edge(*previous, action);
      previous = &action;
    }
    activity->add_edge(*previous, join);
  }
  return activity;
}

std::unique_ptr<Activity> make_series_parallel(std::uint64_t seed, std::size_t actions) {
  support::Rng rng(seed);
  auto activity = std::make_unique<Activity>("sp" + std::to_string(actions));
  ActivityNode& initial = activity->add_initial();
  ActivityNode& final_node = activity->add_final();

  std::size_t created = 0;
  std::size_t fork_count = 0;

  // Recursive series-parallel block between two attachment points.
  // Returns nothing; wires head -> ... -> tail.
  std::function<void(ActivityNode&, ActivityNode&, std::size_t)> build =
      [&](ActivityNode& head, ActivityNode& tail, std::size_t budget) {
        if (budget == 0) {
          activity->add_edge(head, tail);
          return;
        }
        if (budget == 1 || rng.chance(0.6)) {
          // Series: head -> action -> (rest).
          ActivityNode& action = activity->add_action("n" + std::to_string(created++));
          action.set_sw_latency(static_cast<double>(rng.range(1, 40)));
          action.set_hw_latency(static_cast<double>(rng.range(1, 8)));
          action.set_hw_area(static_cast<double>(rng.range(10, 500)));
          activity->add_edge(head, action);
          build(action, tail, budget - 1);
          return;
        }
        // Parallel: head -> fork -> two branches -> join -> tail.
        ActivityNode& fork =
            activity->add_node(NodeKind::kFork, "f" + std::to_string(fork_count));
        ActivityNode& join =
            activity->add_node(NodeKind::kJoin, "j" + std::to_string(fork_count));
        ++fork_count;
        activity->add_edge(head, fork);
        std::size_t left_budget = 1 + static_cast<std::size_t>(rng.below(budget - 1));
        build(fork, join, left_budget);
        build(fork, join, budget - left_budget);
        activity->add_edge(join, tail);
      };

  build(initial, final_node, actions);
  return activity;
}

std::unique_ptr<Activity> make_media_pipeline() {
  auto activity = std::make_unique<Activity>("media_pipeline");
  ActivityNode& initial = activity->add_initial();

  struct StageSpec {
    const char* name;
    double sw;
    double hw;
    double area;
  };
  const StageSpec front[] = {{"capture", 5, 4, 40}, {"color_convert", 18, 3, 220}};
  const StageSpec back[] = {{"quantize", 12, 2, 150}, {"entropy_code", 30, 9, 380},
                            {"packetize", 4, 3, 60}};

  ActivityNode* previous = &initial;
  for (const StageSpec& spec : front) {
    ActivityNode& action = activity->add_action(spec.name);
    action.set_sw_latency(spec.sw);
    action.set_hw_latency(spec.hw);
    action.set_hw_area(spec.area);
    activity->add_edge(*previous, action);
    previous = &action;
  }

  // Parallel transform stage: luma / chroma DCT.
  ActivityNode& fork = activity->add_node(NodeKind::kFork, "split");
  ActivityNode& join = activity->add_node(NodeKind::kJoin, "merge_planes");
  activity->add_edge(*previous, fork);
  for (const char* plane : {"dct_luma", "dct_chroma"}) {
    ActivityNode& action = activity->add_action(plane);
    action.set_sw_latency(45);
    action.set_hw_latency(6);
    action.set_hw_area(520);
    activity->add_edge(fork, action);
    activity->add_edge(action, join);
  }

  previous = &join;
  for (const StageSpec& spec : back) {
    ActivityNode& action = activity->add_action(spec.name);
    action.set_sw_latency(spec.sw);
    action.set_hw_latency(spec.hw);
    action.set_hw_area(spec.area);
    activity->add_edge(*previous, action);
    previous = &action;
  }
  ActivityNode& final_node = activity->add_final();
  activity->add_edge(*previous, final_node);
  return activity;
}

}  // namespace umlsoc::activity
