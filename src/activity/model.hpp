// UML 2.0 activity metamodel with token semantics (paper §2: "UML 2.0
// introduces token semantics for these Activity Diagrams that move them
// semantically close to high-level Petri Nets").
//
// Supported nodes: initial, activity-final, flow-final, action, decision,
// merge, fork, join, and central buffer. Edges are control or object flows
// with optional guards and weights.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace umlsoc::uml {
class Class;
}

namespace umlsoc::activity {

class Activity;
class ActivityEdge;
class ActivityExecution;
class ActivityNode;

/// A token in flight. Control tokens ignore `value`; object tokens carry a
/// scalar payload (sufficient for guards and pipeline data).
struct Token {
  std::int64_t value = 0;
};

enum class NodeKind {
  kInitial,
  kActivityFinal,
  kFlowFinal,
  kAction,
  kDecision,
  kMerge,
  kFork,
  kJoin,
  kBuffer,
};

[[nodiscard]] std::string_view to_string(NodeKind kind);

/// Runtime context handed to an action's behavior when it fires.
struct ActionFiring {
  ActivityExecution& execution;
  /// Tokens consumed from the incoming edges, in edge order.
  const std::vector<Token>& inputs;
  /// Value placed on object tokens offered downstream (default: first
  /// input's value, or 0).
  std::int64_t output = 0;
};

class ActivityNode {
 public:
  ActivityNode(const ActivityNode&) = delete;
  ActivityNode& operator=(const ActivityNode&) = delete;
  virtual ~ActivityNode() = default;

  [[nodiscard]] NodeKind node_kind() const { return kind_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Activity& activity() const { return *activity_; }

  [[nodiscard]] const std::vector<ActivityEdge*>& incoming() const { return incoming_; }
  [[nodiscard]] const std::vector<ActivityEdge*>& outgoing() const { return outgoing_; }

  /// Behavior run when an action fires; ignored for other node kinds.
  void set_behavior(std::function<void(ActionFiring&)> behavior) {
    behavior_ = std::move(behavior);
  }
  [[nodiscard]] const std::function<void(ActionFiring&)>& behavior() const { return behavior_; }

  /// Model-level action script (ASL text). codegen::bind_activity_asl
  /// compiles it into the executable behavior; serializers persist it.
  void set_script(std::string script) { script_ = std::move(script); }
  [[nodiscard]] const std::string& script() const { return script_; }

  /// Cost annotations consumed by the codesign substrate (DESIGN.md E10):
  /// estimated latency when run in SW / HW, and HW area.
  void set_sw_latency(double cycles) { sw_latency_ = cycles; }
  void set_hw_latency(double cycles) { hw_latency_ = cycles; }
  void set_hw_area(double gates) { hw_area_ = gates; }
  [[nodiscard]] double sw_latency() const { return sw_latency_; }
  [[nodiscard]] double hw_latency() const { return hw_latency_; }
  [[nodiscard]] double hw_area() const { return hw_area_; }

 private:
  friend class Activity;

  ActivityNode(std::string name, NodeKind kind, Activity& activity)
      : name_(std::move(name)), kind_(kind), activity_(&activity) {}

  std::string name_;
  NodeKind kind_;
  Activity* activity_;
  std::vector<ActivityEdge*> incoming_;
  std::vector<ActivityEdge*> outgoing_;
  std::function<void(ActionFiring&)> behavior_;
  std::string script_;
  double sw_latency_ = 1.0;
  double hw_latency_ = 1.0;
  double hw_area_ = 1.0;
};

/// Guard over an offered token; empty text + null fn is always-true, text
/// "else" marks the default branch of a decision.
struct EdgeGuard {
  std::string text;
  std::function<bool(const Token&)> fn;

  [[nodiscard]] bool is_else() const { return text == "else"; }
  [[nodiscard]] bool passes(const Token& token) const {
    return fn == nullptr ? !is_else() : fn(token);
  }
};

class ActivityEdge {
 public:
  ActivityEdge(const ActivityEdge&) = delete;
  ActivityEdge& operator=(const ActivityEdge&) = delete;

  [[nodiscard]] ActivityNode& source() const { return *source_; }
  [[nodiscard]] ActivityNode& target() const { return *target_; }
  [[nodiscard]] bool is_object_flow() const { return object_flow_; }

  ActivityEdge& set_guard(EdgeGuard guard) {
    guard_ = std::move(guard);
    return *this;
  }
  ActivityEdge& set_guard(std::string text, std::function<bool(const Token&)> fn) {
    return set_guard(EdgeGuard{std::move(text), std::move(fn)});
  }
  [[nodiscard]] const EdgeGuard& guard() const { return guard_; }

  /// Minimum tokens required/consumed per traversal (UML edge weight).
  ActivityEdge& set_weight(int weight) {
    weight_ = weight;
    return *this;
  }
  [[nodiscard]] int weight() const { return weight_; }

  [[nodiscard]] std::string str() const;

 private:
  friend class Activity;

  ActivityEdge(ActivityNode& source, ActivityNode& target, bool object_flow)
      : source_(&source), target_(&target), object_flow_(object_flow) {}

  ActivityNode* source_;
  ActivityNode* target_;
  bool object_flow_;
  EdgeGuard guard_;
  int weight_ = 1;
};

/// An activity graph; optionally owned by a uml::Class as one of its
/// behaviors.
class Activity {
 public:
  explicit Activity(std::string name) : name_(std::move(name)) {}
  Activity(const Activity&) = delete;
  Activity& operator=(const Activity&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] uml::Class* context() const { return context_; }
  void set_context(uml::Class& context) { context_ = &context; }

  ActivityNode& add_node(NodeKind kind, std::string name);
  ActivityNode& add_action(std::string name) { return add_node(NodeKind::kAction, std::move(name)); }
  ActivityNode& add_initial() { return add_node(NodeKind::kInitial, "initial"); }
  ActivityNode& add_final() { return add_node(NodeKind::kActivityFinal, "final"); }

  /// Adds a control-flow (object_flow=false) or object-flow edge.
  ActivityEdge& add_edge(ActivityNode& source, ActivityNode& target, bool object_flow = false);

  [[nodiscard]] const std::vector<std::unique_ptr<ActivityNode>>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<std::unique_ptr<ActivityEdge>>& edges() const { return edges_; }

  [[nodiscard]] ActivityNode* find_node(std::string_view name) const;
  [[nodiscard]] ActivityNode* initial() const;

 private:
  std::string name_;
  uml::Class* context_ = nullptr;
  std::vector<std::unique_ptr<ActivityNode>> nodes_;
  std::vector<std::unique_ptr<ActivityEdge>> edges_;
};

}  // namespace umlsoc::activity
