#include "activity/analysis.hpp"

#include <unordered_map>

#include "support/graph.hpp"

namespace umlsoc::activity {

bool validate(const Activity& activity, support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();

  std::size_t initial_count = 0;
  std::unordered_map<std::string, int> names;
  for (const auto& node : activity.nodes()) {
    ++names[node->name()];
    const std::size_t in = node->incoming().size();
    const std::size_t out = node->outgoing().size();
    const std::string subject = activity.name() + "." + node->name();

    switch (node->node_kind()) {
      case NodeKind::kInitial:
        ++initial_count;
        if (in != 0) sink.error(subject, "initial node has incoming edges");
        if (out == 0) sink.error(subject, "initial node has no outgoing edge");
        break;
      case NodeKind::kActivityFinal:
      case NodeKind::kFlowFinal:
        if (out != 0) sink.error(subject, "final node has outgoing edges");
        if (in == 0) sink.warning(subject, "final node is never reached");
        break;
      case NodeKind::kAction:
      case NodeKind::kBuffer:
        if (in == 0) sink.warning(subject, "node has no incoming edge (never fires)");
        break;
      case NodeKind::kDecision: {
        if (in == 0) sink.error(subject, "decision has no incoming edge");
        if (out < 2) sink.warning(subject, "decision with fewer than two branches");
        int else_count = 0;
        for (const ActivityEdge* branch : node->outgoing()) {
          if (branch->guard().is_else()) ++else_count;
        }
        if (else_count > 1) sink.error(subject, "decision has more than one 'else' branch");
        break;
      }
      case NodeKind::kMerge:
        if (in < 2) sink.warning(subject, "merge with fewer than two inputs");
        if (out != 1) sink.error(subject, "merge must have exactly one outgoing edge");
        break;
      case NodeKind::kFork:
        if (in != 1) sink.error(subject, "fork must have exactly one incoming edge");
        if (out < 2) sink.warning(subject, "fork with fewer than two outputs");
        break;
      case NodeKind::kJoin:
        if (in < 2) sink.warning(subject, "join with fewer than two inputs");
        if (out != 1) sink.error(subject, "join must have exactly one outgoing edge");
        break;
    }
  }
  for (const auto& [name, count] : names) {
    if (count > 1) sink.error(activity.name(), "duplicate node name '" + name + "'");
  }
  if (initial_count > 1) sink.error(activity.name(), "more than one initial node");

  for (const auto& edge : activity.edges()) {
    if (edge->weight() < 1) {
      sink.error(activity.name(), "edge " + edge->str() + " has weight < 1");
    }
    if (&edge->source().activity() != &activity || &edge->target().activity() != &activity) {
      sink.error(activity.name(), "edge " + edge->str() + " crosses activities");
    }
  }
  return sink.error_count() == errors_before;
}

bool check_soundness(const Activity& activity, support::DiagnosticSink& sink) {
  const std::size_t errors_before = sink.error_count();

  std::unordered_map<const ActivityNode*, std::size_t> index;
  support::Digraph graph(activity.nodes().size());
  for (const auto& node : activity.nodes()) {
    index[node.get()] = index.size();
  }
  for (const auto& edge : activity.edges()) {
    graph.add_edge(index.at(&edge->source()), index.at(&edge->target()));
  }

  const ActivityNode* initial = activity.initial();
  if (initial == nullptr) {
    sink.error(activity.name(), "soundness: no initial node");
    return false;
  }

  std::vector<bool> from_initial = graph.reachable_from(index.at(initial));

  // Union of "reaches some final".
  std::vector<bool> reaches_final(activity.nodes().size(), false);
  bool has_final = false;
  for (const auto& node : activity.nodes()) {
    NodeKind kind = node->node_kind();
    if (kind == NodeKind::kActivityFinal || kind == NodeKind::kFlowFinal) {
      has_final = true;
      std::vector<bool> reaching = graph.reaching(index.at(node.get()));
      for (std::size_t i = 0; i < reaching.size(); ++i) {
        if (reaching[i]) reaches_final[i] = true;
      }
    }
  }
  if (!has_final) {
    sink.error(activity.name(), "soundness: no final node");
  }

  for (const auto& node : activity.nodes()) {
    std::size_t i = index.at(node.get());
    if (!from_initial[i]) {
      sink.error(activity.name() + "." + node->name(),
                 "soundness: unreachable from the initial node");
    } else if (has_final && !reaches_final[i]) {
      sink.error(activity.name() + "." + node->name(), "soundness: cannot reach a final node");
    }
  }
  return sink.error_count() == errors_before;
}

}  // namespace umlsoc::activity
