#include "activity/interpreter.hpp"

namespace umlsoc::activity {

std::string_view to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kTerminated:
      return "terminated";
    case RunStatus::kQuiescent:
      return "quiescent";
    case RunStatus::kStepLimit:
      return "step-limit";
  }
  return "unknown";
}

ActivityExecution::ActivityExecution(const Activity& activity) : activity_(activity) {}

void ActivityExecution::start() {
  if (started_) return;
  started_ = true;
  const ActivityNode* initial = activity_.initial();
  if (initial == nullptr) return;
  // The start token takes the first accepting outgoing edge.
  Token token;
  for (const ActivityEdge* edge : initial->outgoing()) {
    if (edge->guard().passes(token)) {
      place_token(*edge, token);
      note("start:" + edge->str());
      return;
    }
  }
}

void ActivityExecution::place_token(const ActivityEdge& edge, Token token) {
  marking_[&edge].push_back(token);
  ++tokens_produced_;
}

std::size_t ActivityExecution::tokens_on(const ActivityEdge& edge) const {
  auto it = marking_.find(&edge);
  return it == marking_.end() ? 0 : it->second.size();
}

std::size_t ActivityExecution::token_count() const {
  std::size_t total = 0;
  for (const auto& [edge, tokens] : marking_) total += tokens.size();
  return total;
}

std::uint64_t ActivityExecution::firings_of(const ActivityNode& node) const {
  auto it = firing_counts_.find(&node);
  return it == firing_counts_.end() ? 0 : it->second;
}

bool ActivityExecution::enabled(const ActivityNode& node) const {
  switch (node.node_kind()) {
    case NodeKind::kInitial:
      return false;  // Fires only via start().
    case NodeKind::kAction:
    case NodeKind::kJoin:
    case NodeKind::kBuffer: {
      if (node.incoming().empty()) return false;
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) < static_cast<std::size_t>(edge->weight())) return false;
      }
      return true;
    }
    case NodeKind::kFork:
    case NodeKind::kMerge:
    case NodeKind::kFlowFinal:
    case NodeKind::kActivityFinal: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) >= static_cast<std::size_t>(edge->weight())) return true;
      }
      return false;
    }
    case NodeKind::kDecision: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) < static_cast<std::size_t>(edge->weight())) continue;
        // The head token must have somewhere to go.
        const Token& head = marking_.at(edge).front();
        const ActivityEdge* else_edge = nullptr;
        for (const ActivityEdge* branch : node.outgoing()) {
          if (branch->guard().is_else()) {
            else_edge = branch;
            continue;
          }
          if (branch->guard().passes(head)) return true;
        }
        if (else_edge != nullptr) return true;
      }
      return false;
    }
  }
  return false;
}

Token ActivityExecution::consume_one(const ActivityEdge& edge) {
  std::deque<Token>& tokens = marking_.at(&edge);
  Token token = tokens.front();
  tokens.pop_front();
  ++tokens_consumed_;
  return token;
}

void ActivityExecution::offer_to_outgoing(const ActivityNode& node, Token token) {
  for (const ActivityEdge* edge : node.outgoing()) {
    if (edge->guard().passes(token)) place_token(*edge, token);
  }
}

void ActivityExecution::fire(const ActivityNode& node) {
  ++firings_;
  ++firing_counts_[&node];
  note("fire:" + node.name());

  switch (node.node_kind()) {
    case NodeKind::kInitial:
      break;
    case NodeKind::kAction: {
      std::vector<Token> inputs;
      for (const ActivityEdge* edge : node.incoming()) {
        for (int i = 0; i < edge->weight(); ++i) inputs.push_back(consume_one(*edge));
      }
      ActionFiring firing{*this, inputs, inputs.empty() ? 0 : inputs.front().value};
      if (node.behavior() != nullptr) node.behavior()(firing);
      offer_to_outgoing(node, Token{firing.output});
      break;
    }
    case NodeKind::kJoin: {
      Token result;
      bool first = true;
      for (const ActivityEdge* edge : node.incoming()) {
        for (int i = 0; i < edge->weight(); ++i) {
          Token token = consume_one(*edge);
          if (first) {
            result = token;
            first = false;
          }
        }
      }
      offer_to_outgoing(node, result);
      break;
    }
    case NodeKind::kBuffer: {
      // Pass-through store: consumes its inputs and republishes downstream.
      for (const ActivityEdge* edge : node.incoming()) {
        for (int i = 0; i < edge->weight(); ++i) {
          offer_to_outgoing(node, consume_one(*edge));
        }
      }
      break;
    }
    case NodeKind::kFork: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) >= static_cast<std::size_t>(edge->weight())) {
          offer_to_outgoing(node, consume_one(*edge));
          break;
        }
      }
      break;
    }
    case NodeKind::kMerge: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) >= static_cast<std::size_t>(edge->weight())) {
          offer_to_outgoing(node, consume_one(*edge));
          break;
        }
      }
      break;
    }
    case NodeKind::kDecision: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) < static_cast<std::size_t>(edge->weight())) continue;
        Token token = consume_one(*edge);
        const ActivityEdge* else_edge = nullptr;
        const ActivityEdge* chosen = nullptr;
        for (const ActivityEdge* branch : node.outgoing()) {
          if (branch->guard().is_else()) {
            if (else_edge == nullptr) else_edge = branch;
            continue;
          }
          if (branch->guard().passes(token)) {
            chosen = branch;
            break;
          }
        }
        if (chosen == nullptr) chosen = else_edge;
        if (chosen != nullptr) {
          place_token(*chosen, token);
          note("route:" + chosen->str());
        }
        break;
      }
      break;
    }
    case NodeKind::kFlowFinal: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) >= static_cast<std::size_t>(edge->weight())) {
          outputs_.push_back(consume_one(*edge).value);
          break;
        }
      }
      break;
    }
    case NodeKind::kActivityFinal: {
      for (const ActivityEdge* edge : node.incoming()) {
        if (tokens_on(*edge) >= static_cast<std::size_t>(edge->weight())) {
          outputs_.push_back(consume_one(*edge).value);
          break;
        }
      }
      terminated_ = true;
      marking_.clear();  // Activity-final kills every remaining token.
      note("terminate");
      break;
    }
  }
}

bool ActivityExecution::step() {
  if (terminated_) return false;
  for (const auto& node : activity_.nodes()) {
    if (enabled(*node)) {
      fire(*node);
      return true;
    }
  }
  return false;
}

RunStatus ActivityExecution::run(std::size_t max_steps) {
  if (!started_) start();
  for (std::size_t i = 0; i < max_steps; ++i) {
    if (!step()) return terminated_ ? RunStatus::kTerminated : RunStatus::kQuiescent;
  }
  return RunStatus::kStepLimit;
}

}  // namespace umlsoc::activity
