// Structural validation and workflow-soundness analysis for activities.
#pragma once

#include "activity/model.hpp"
#include "support/diagnostics.hpp"

namespace umlsoc::activity {

/// Structural well-formedness: node arities, guard placement, connectivity.
/// Returns true when no errors were reported.
bool validate(const Activity& activity, support::DiagnosticSink& sink);

/// Workflow-net-style soundness over the underlying digraph:
///  (1) exactly one initial node,
///  (2) at least one final (activity- or flow-final),
///  (3) every node lies on a path initial -> final.
/// This is the static counterpart of the runtime property "a run terminates
/// with no stranded tokens"; violations are reported as errors.
bool check_soundness(const Activity& activity, support::DiagnosticSink& sink);

}  // namespace umlsoc::activity
