#include "activity/model.hpp"

namespace umlsoc::activity {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kInitial:
      return "initial";
    case NodeKind::kActivityFinal:
      return "activityFinal";
    case NodeKind::kFlowFinal:
      return "flowFinal";
    case NodeKind::kAction:
      return "action";
    case NodeKind::kDecision:
      return "decision";
    case NodeKind::kMerge:
      return "merge";
    case NodeKind::kFork:
      return "fork";
    case NodeKind::kJoin:
      return "join";
    case NodeKind::kBuffer:
      return "buffer";
  }
  return "node";
}

std::string ActivityEdge::str() const {
  std::string out = source_->name() + (object_flow_ ? " ==> " : " --> ") + target_->name();
  if (!guard_.text.empty()) out += " [" + guard_.text + "]";
  if (weight_ != 1) out += " {weight=" + std::to_string(weight_) + "}";
  return out;
}

ActivityNode& Activity::add_node(NodeKind kind, std::string name) {
  nodes_.push_back(
      std::unique_ptr<ActivityNode>(new ActivityNode(std::move(name), kind, *this)));
  return *nodes_.back();
}

ActivityEdge& Activity::add_edge(ActivityNode& source, ActivityNode& target, bool object_flow) {
  edges_.push_back(std::unique_ptr<ActivityEdge>(new ActivityEdge(source, target, object_flow)));
  ActivityEdge& edge = *edges_.back();
  source.outgoing_.push_back(&edge);
  target.incoming_.push_back(&edge);
  return edge;
}

ActivityNode* Activity::find_node(std::string_view name) const {
  for (const auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

ActivityNode* Activity::initial() const {
  for (const auto& node : nodes_) {
    if (node->node_kind() == NodeKind::kInitial) return node.get();
  }
  return nullptr;
}

}  // namespace umlsoc::activity
