// Deterministic activity generators for tests, benchmark E4, and the
// codesign task graphs of E10.
#pragma once

#include <cstdint>
#include <memory>

#include "activity/model.hpp"

namespace umlsoc::activity {

/// initial -> a0 -> a1 -> ... -> a(n-1) -> final. One terminating run.
[[nodiscard]] std::unique_ptr<Activity> make_sequential(std::size_t actions);

/// initial -> fork -> (width parallel chains of `depth` actions) -> join ->
/// final. Exercises fork/join token conservation.
[[nodiscard]] std::unique_ptr<Activity> make_fork_join(std::size_t width, std::size_t depth);

/// A series-parallel DAG of `actions` actions built by repeated random
/// series/parallel composition (deterministic in `seed`). Every node carries
/// randomized sw/hw latency and area annotations for codesign experiments.
[[nodiscard]] std::unique_ptr<Activity> make_series_parallel(std::uint64_t seed,
                                                             std::size_t actions);

/// A JPEG-like pipeline: front-end chain, 2-way parallel transform stage,
/// entropy-coder back-end; cost annotations model a compute-heavy middle.
[[nodiscard]] std::unique_ptr<Activity> make_media_pipeline();

}  // namespace umlsoc::activity
