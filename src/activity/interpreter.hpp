// Token-game executor for activities. The marking lives on edges (as in a
// Petri net, edges play the role of input places of their target node).
//
// Firing rules:
//  * action / join / buffer: enabled when EVERY incoming edge holds at least
//    `weight` tokens (implicit AND-join of UML actions); an action offers
//    one token to every outgoing edge whose guard accepts it (implicit fork).
//  * fork: consumes one token, duplicates it to all accepting outgoing edges.
//  * decision: consumes one token and routes it to the first outgoing edge
//    whose guard passes, or the "else" edge; not enabled if no branch accepts.
//  * merge: forwards one token from any incoming edge.
//  * flow-final: destroys the token; activity-final: destroys all tokens and
//    terminates the execution.
// The scheduler is deterministic: each step() fires the first enabled node
// in creation order.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "activity/model.hpp"

namespace umlsoc::activity {

enum class RunStatus { kTerminated, kQuiescent, kStepLimit };

[[nodiscard]] std::string_view to_string(RunStatus status);

class ActivityExecution {
 public:
  explicit ActivityExecution(const Activity& activity);

  /// Emits the start token from the initial node (first accepting edge).
  void start();

  /// Fires one enabled node; false when nothing is enabled or terminated.
  bool step();

  /// Steps until termination, quiescence, or the step limit.
  RunStatus run(std::size_t max_steps = 100000);

  /// Places a token on an edge from outside (test harnesses, pipelines).
  void place_token(const ActivityEdge& edge, Token token);

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] const Activity& activity() const { return activity_; }
  [[nodiscard]] bool terminated() const { return terminated_; }
  [[nodiscard]] std::size_t tokens_on(const ActivityEdge& edge) const;
  /// Total tokens currently in the marking.
  [[nodiscard]] std::size_t token_count() const;
  [[nodiscard]] std::uint64_t firings() const { return firings_; }
  [[nodiscard]] std::uint64_t firings_of(const ActivityNode& node) const;
  [[nodiscard]] std::uint64_t tokens_consumed() const { return tokens_consumed_; }
  [[nodiscard]] std::uint64_t tokens_produced() const { return tokens_produced_; }

  /// Values of tokens destroyed at flow-final / activity-final nodes, in
  /// arrival order: the activity's observable output.
  [[nodiscard]] const std::vector<std::int64_t>& outputs() const { return outputs_; }

  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  [[nodiscard]] const std::vector<std::string>& trace() const { return trace_; }

 private:
  void note(std::string entry) {
    if (trace_enabled_) trace_.push_back(std::move(entry));
  }

  [[nodiscard]] bool enabled(const ActivityNode& node) const;
  void fire(const ActivityNode& node);
  /// Offers `token` to every outgoing edge of `node` with a passing guard.
  void offer_to_outgoing(const ActivityNode& node, Token token);
  Token consume_one(const ActivityEdge& edge);

  const Activity& activity_;
  std::unordered_map<const ActivityEdge*, std::deque<Token>> marking_;
  std::unordered_map<const ActivityNode*, std::uint64_t> firing_counts_;
  std::vector<std::int64_t> outputs_;
  std::vector<std::string> trace_;
  bool trace_enabled_ = false;
  bool started_ = false;
  bool terminated_ = false;
  std::uint64_t firings_ = 0;
  std::uint64_t tokens_consumed_ = 0;
  std::uint64_t tokens_produced_ = 0;
};

}  // namespace umlsoc::activity
