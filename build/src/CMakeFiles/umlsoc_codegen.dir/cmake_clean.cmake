file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_codegen.dir/codegen/asl_binding.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/asl_binding.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/hwmodel.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/hwmodel.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/plantuml.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/plantuml.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/rtl.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/rtl.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/software.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/software.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/swruntime.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/swruntime.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/systemc.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/systemc.cpp.o.d"
  "CMakeFiles/umlsoc_codegen.dir/codegen/timed_machine.cpp.o"
  "CMakeFiles/umlsoc_codegen.dir/codegen/timed_machine.cpp.o.d"
  "libumlsoc_codegen.a"
  "libumlsoc_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
