file(REMOVE_RECURSE
  "libumlsoc_codegen.a"
)
