
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/asl_binding.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/asl_binding.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/asl_binding.cpp.o.d"
  "/root/repo/src/codegen/hwmodel.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/hwmodel.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/hwmodel.cpp.o.d"
  "/root/repo/src/codegen/plantuml.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/plantuml.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/plantuml.cpp.o.d"
  "/root/repo/src/codegen/rtl.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/rtl.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/rtl.cpp.o.d"
  "/root/repo/src/codegen/software.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/software.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/software.cpp.o.d"
  "/root/repo/src/codegen/swruntime.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/swruntime.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/swruntime.cpp.o.d"
  "/root/repo/src/codegen/systemc.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/systemc.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/systemc.cpp.o.d"
  "/root/repo/src/codegen/timed_machine.cpp" "src/CMakeFiles/umlsoc_codegen.dir/codegen/timed_machine.cpp.o" "gcc" "src/CMakeFiles/umlsoc_codegen.dir/codegen/timed_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umlsoc_mda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_statechart.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_interaction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_usecase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_asl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
