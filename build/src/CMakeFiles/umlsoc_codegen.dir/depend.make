# Empty dependencies file for umlsoc_codegen.
# This may be replaced when dependencies are built.
