# Empty dependencies file for umlsoc_activity.
# This may be replaced when dependencies are built.
