file(REMOVE_RECURSE
  "libumlsoc_activity.a"
)
