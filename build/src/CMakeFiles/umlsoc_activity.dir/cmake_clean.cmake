file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_activity.dir/activity/analysis.cpp.o"
  "CMakeFiles/umlsoc_activity.dir/activity/analysis.cpp.o.d"
  "CMakeFiles/umlsoc_activity.dir/activity/interpreter.cpp.o"
  "CMakeFiles/umlsoc_activity.dir/activity/interpreter.cpp.o.d"
  "CMakeFiles/umlsoc_activity.dir/activity/model.cpp.o"
  "CMakeFiles/umlsoc_activity.dir/activity/model.cpp.o.d"
  "CMakeFiles/umlsoc_activity.dir/activity/synthetic.cpp.o"
  "CMakeFiles/umlsoc_activity.dir/activity/synthetic.cpp.o.d"
  "libumlsoc_activity.a"
  "libumlsoc_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
