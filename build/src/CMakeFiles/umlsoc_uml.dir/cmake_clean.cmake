file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_uml.dir/uml/compare.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/compare.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/edit.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/edit.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/element.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/element.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/instance.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/instance.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/package.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/package.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/query.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/query.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/relationships.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/relationships.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/synthetic.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/synthetic.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/types.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/types.cpp.o.d"
  "CMakeFiles/umlsoc_uml.dir/uml/validate.cpp.o"
  "CMakeFiles/umlsoc_uml.dir/uml/validate.cpp.o.d"
  "libumlsoc_uml.a"
  "libumlsoc_uml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_uml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
