file(REMOVE_RECURSE
  "libumlsoc_uml.a"
)
