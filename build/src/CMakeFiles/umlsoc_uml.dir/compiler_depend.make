# Empty compiler generated dependencies file for umlsoc_uml.
# This may be replaced when dependencies are built.
