
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uml/compare.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/compare.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/compare.cpp.o.d"
  "/root/repo/src/uml/edit.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/edit.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/edit.cpp.o.d"
  "/root/repo/src/uml/element.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/element.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/element.cpp.o.d"
  "/root/repo/src/uml/instance.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/instance.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/instance.cpp.o.d"
  "/root/repo/src/uml/package.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/package.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/package.cpp.o.d"
  "/root/repo/src/uml/query.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/query.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/query.cpp.o.d"
  "/root/repo/src/uml/relationships.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/relationships.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/relationships.cpp.o.d"
  "/root/repo/src/uml/synthetic.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/synthetic.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/synthetic.cpp.o.d"
  "/root/repo/src/uml/types.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/types.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/types.cpp.o.d"
  "/root/repo/src/uml/validate.cpp" "src/CMakeFiles/umlsoc_uml.dir/uml/validate.cpp.o" "gcc" "src/CMakeFiles/umlsoc_uml.dir/uml/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umlsoc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
