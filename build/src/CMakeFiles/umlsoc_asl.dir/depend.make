# Empty dependencies file for umlsoc_asl.
# This may be replaced when dependencies are built.
