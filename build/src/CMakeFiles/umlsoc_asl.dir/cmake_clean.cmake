file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_asl.dir/asl/constraints.cpp.o"
  "CMakeFiles/umlsoc_asl.dir/asl/constraints.cpp.o.d"
  "CMakeFiles/umlsoc_asl.dir/asl/interpreter.cpp.o"
  "CMakeFiles/umlsoc_asl.dir/asl/interpreter.cpp.o.d"
  "CMakeFiles/umlsoc_asl.dir/asl/lexer.cpp.o"
  "CMakeFiles/umlsoc_asl.dir/asl/lexer.cpp.o.d"
  "CMakeFiles/umlsoc_asl.dir/asl/parser.cpp.o"
  "CMakeFiles/umlsoc_asl.dir/asl/parser.cpp.o.d"
  "CMakeFiles/umlsoc_asl.dir/asl/value.cpp.o"
  "CMakeFiles/umlsoc_asl.dir/asl/value.cpp.o.d"
  "libumlsoc_asl.a"
  "libumlsoc_asl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_asl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
