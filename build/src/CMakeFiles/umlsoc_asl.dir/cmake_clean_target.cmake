file(REMOVE_RECURSE
  "libumlsoc_asl.a"
)
