
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asl/constraints.cpp" "src/CMakeFiles/umlsoc_asl.dir/asl/constraints.cpp.o" "gcc" "src/CMakeFiles/umlsoc_asl.dir/asl/constraints.cpp.o.d"
  "/root/repo/src/asl/interpreter.cpp" "src/CMakeFiles/umlsoc_asl.dir/asl/interpreter.cpp.o" "gcc" "src/CMakeFiles/umlsoc_asl.dir/asl/interpreter.cpp.o.d"
  "/root/repo/src/asl/lexer.cpp" "src/CMakeFiles/umlsoc_asl.dir/asl/lexer.cpp.o" "gcc" "src/CMakeFiles/umlsoc_asl.dir/asl/lexer.cpp.o.d"
  "/root/repo/src/asl/parser.cpp" "src/CMakeFiles/umlsoc_asl.dir/asl/parser.cpp.o" "gcc" "src/CMakeFiles/umlsoc_asl.dir/asl/parser.cpp.o.d"
  "/root/repo/src/asl/value.cpp" "src/CMakeFiles/umlsoc_asl.dir/asl/value.cpp.o" "gcc" "src/CMakeFiles/umlsoc_asl.dir/asl/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umlsoc_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
