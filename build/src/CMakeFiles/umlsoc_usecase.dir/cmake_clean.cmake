file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_usecase.dir/usecase/model.cpp.o"
  "CMakeFiles/umlsoc_usecase.dir/usecase/model.cpp.o.d"
  "libumlsoc_usecase.a"
  "libumlsoc_usecase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_usecase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
