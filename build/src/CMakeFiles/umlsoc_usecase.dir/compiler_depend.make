# Empty compiler generated dependencies file for umlsoc_usecase.
# This may be replaced when dependencies are built.
