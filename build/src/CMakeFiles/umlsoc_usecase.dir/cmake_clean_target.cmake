file(REMOVE_RECURSE
  "libumlsoc_usecase.a"
)
