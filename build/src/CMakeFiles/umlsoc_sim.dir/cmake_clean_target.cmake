file(REMOVE_RECURSE
  "libumlsoc_sim.a"
)
