file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_sim.dir/sim/bus.cpp.o"
  "CMakeFiles/umlsoc_sim.dir/sim/bus.cpp.o.d"
  "CMakeFiles/umlsoc_sim.dir/sim/kernel.cpp.o"
  "CMakeFiles/umlsoc_sim.dir/sim/kernel.cpp.o.d"
  "CMakeFiles/umlsoc_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/umlsoc_sim.dir/sim/trace.cpp.o.d"
  "libumlsoc_sim.a"
  "libumlsoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
