# Empty dependencies file for umlsoc_sim.
# This may be replaced when dependencies are built.
