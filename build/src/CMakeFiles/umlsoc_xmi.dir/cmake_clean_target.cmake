file(REMOVE_RECURSE
  "libumlsoc_xmi.a"
)
