file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_xmi.dir/xmi/behavior.cpp.o"
  "CMakeFiles/umlsoc_xmi.dir/xmi/behavior.cpp.o.d"
  "CMakeFiles/umlsoc_xmi.dir/xmi/serialize.cpp.o"
  "CMakeFiles/umlsoc_xmi.dir/xmi/serialize.cpp.o.d"
  "CMakeFiles/umlsoc_xmi.dir/xmi/xml.cpp.o"
  "CMakeFiles/umlsoc_xmi.dir/xmi/xml.cpp.o.d"
  "libumlsoc_xmi.a"
  "libumlsoc_xmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_xmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
