# Empty compiler generated dependencies file for umlsoc_xmi.
# This may be replaced when dependencies are built.
