file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_codesign.dir/codesign/partition.cpp.o"
  "CMakeFiles/umlsoc_codesign.dir/codesign/partition.cpp.o.d"
  "CMakeFiles/umlsoc_codesign.dir/codesign/taskgraph.cpp.o"
  "CMakeFiles/umlsoc_codesign.dir/codesign/taskgraph.cpp.o.d"
  "libumlsoc_codesign.a"
  "libumlsoc_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
