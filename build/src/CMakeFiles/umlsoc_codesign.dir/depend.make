# Empty dependencies file for umlsoc_codesign.
# This may be replaced when dependencies are built.
