file(REMOVE_RECURSE
  "libumlsoc_codesign.a"
)
