file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_soc.dir/soc/iplibrary.cpp.o"
  "CMakeFiles/umlsoc_soc.dir/soc/iplibrary.cpp.o.d"
  "CMakeFiles/umlsoc_soc.dir/soc/profile.cpp.o"
  "CMakeFiles/umlsoc_soc.dir/soc/profile.cpp.o.d"
  "CMakeFiles/umlsoc_soc.dir/soc/validate.cpp.o"
  "CMakeFiles/umlsoc_soc.dir/soc/validate.cpp.o.d"
  "libumlsoc_soc.a"
  "libumlsoc_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
