# Empty dependencies file for umlsoc_soc.
# This may be replaced when dependencies are built.
