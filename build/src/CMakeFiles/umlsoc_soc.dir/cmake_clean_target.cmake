file(REMOVE_RECURSE
  "libumlsoc_soc.a"
)
