# Empty dependencies file for umlsoc_statechart.
# This may be replaced when dependencies are built.
