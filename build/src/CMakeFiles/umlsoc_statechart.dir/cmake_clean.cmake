file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_statechart.dir/statechart/flatten.cpp.o"
  "CMakeFiles/umlsoc_statechart.dir/statechart/flatten.cpp.o.d"
  "CMakeFiles/umlsoc_statechart.dir/statechart/interpreter.cpp.o"
  "CMakeFiles/umlsoc_statechart.dir/statechart/interpreter.cpp.o.d"
  "CMakeFiles/umlsoc_statechart.dir/statechart/model.cpp.o"
  "CMakeFiles/umlsoc_statechart.dir/statechart/model.cpp.o.d"
  "CMakeFiles/umlsoc_statechart.dir/statechart/synthetic.cpp.o"
  "CMakeFiles/umlsoc_statechart.dir/statechart/synthetic.cpp.o.d"
  "CMakeFiles/umlsoc_statechart.dir/statechart/validate.cpp.o"
  "CMakeFiles/umlsoc_statechart.dir/statechart/validate.cpp.o.d"
  "libumlsoc_statechart.a"
  "libumlsoc_statechart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_statechart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
