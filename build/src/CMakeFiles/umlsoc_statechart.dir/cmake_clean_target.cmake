file(REMOVE_RECURSE
  "libumlsoc_statechart.a"
)
