# Empty compiler generated dependencies file for umlsoc_support.
# This may be replaced when dependencies are built.
