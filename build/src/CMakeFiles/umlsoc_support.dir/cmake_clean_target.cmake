file(REMOVE_RECURSE
  "libumlsoc_support.a"
)
