file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_support.dir/support/diagnostics.cpp.o"
  "CMakeFiles/umlsoc_support.dir/support/diagnostics.cpp.o.d"
  "CMakeFiles/umlsoc_support.dir/support/graph.cpp.o"
  "CMakeFiles/umlsoc_support.dir/support/graph.cpp.o.d"
  "CMakeFiles/umlsoc_support.dir/support/rng.cpp.o"
  "CMakeFiles/umlsoc_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/umlsoc_support.dir/support/strings.cpp.o"
  "CMakeFiles/umlsoc_support.dir/support/strings.cpp.o.d"
  "libumlsoc_support.a"
  "libumlsoc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
