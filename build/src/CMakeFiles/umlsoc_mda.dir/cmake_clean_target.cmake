file(REMOVE_RECURSE
  "libumlsoc_mda.a"
)
