file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_mda.dir/mda/platform.cpp.o"
  "CMakeFiles/umlsoc_mda.dir/mda/platform.cpp.o.d"
  "CMakeFiles/umlsoc_mda.dir/mda/transform.cpp.o"
  "CMakeFiles/umlsoc_mda.dir/mda/transform.cpp.o.d"
  "libumlsoc_mda.a"
  "libumlsoc_mda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_mda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
