
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mda/platform.cpp" "src/CMakeFiles/umlsoc_mda.dir/mda/platform.cpp.o" "gcc" "src/CMakeFiles/umlsoc_mda.dir/mda/platform.cpp.o.d"
  "/root/repo/src/mda/transform.cpp" "src/CMakeFiles/umlsoc_mda.dir/mda/transform.cpp.o" "gcc" "src/CMakeFiles/umlsoc_mda.dir/mda/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umlsoc_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_statechart.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
