# Empty compiler generated dependencies file for umlsoc_mda.
# This may be replaced when dependencies are built.
