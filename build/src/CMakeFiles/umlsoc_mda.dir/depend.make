# Empty dependencies file for umlsoc_mda.
# This may be replaced when dependencies are built.
