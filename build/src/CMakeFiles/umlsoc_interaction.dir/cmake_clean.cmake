file(REMOVE_RECURSE
  "CMakeFiles/umlsoc_interaction.dir/interaction/from_trace.cpp.o"
  "CMakeFiles/umlsoc_interaction.dir/interaction/from_trace.cpp.o.d"
  "CMakeFiles/umlsoc_interaction.dir/interaction/model.cpp.o"
  "CMakeFiles/umlsoc_interaction.dir/interaction/model.cpp.o.d"
  "CMakeFiles/umlsoc_interaction.dir/interaction/trace.cpp.o"
  "CMakeFiles/umlsoc_interaction.dir/interaction/trace.cpp.o.d"
  "libumlsoc_interaction.a"
  "libumlsoc_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/umlsoc_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
