file(REMOVE_RECURSE
  "libumlsoc_interaction.a"
)
