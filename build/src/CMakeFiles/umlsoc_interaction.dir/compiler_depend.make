# Empty compiler generated dependencies file for umlsoc_interaction.
# This may be replaced when dependencies are built.
