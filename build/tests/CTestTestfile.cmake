# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/activity_test[1]_include.cmake")
include("/root/repo/build/tests/asl_binding_test[1]_include.cmake")
include("/root/repo/build/tests/asl_constraints_test[1]_include.cmake")
include("/root/repo/build/tests/asl_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_ext_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/codesign_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/interaction_test[1]_include.cmake")
include("/root/repo/build/tests/mda_test[1]_include.cmake")
include("/root/repo/build/tests/plantuml_structure_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/soc_test[1]_include.cmake")
include("/root/repo/build/tests/statechart_defer_test[1]_include.cmake")
include("/root/repo/build/tests/statechart_differential_test[1]_include.cmake")
include("/root/repo/build/tests/statechart_exec_test[1]_include.cmake")
include("/root/repo/build/tests/statechart_model_test[1]_include.cmake")
include("/root/repo/build/tests/statechart_terminate_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/uml_edit_test[1]_include.cmake")
include("/root/repo/build/tests/uml_model_test[1]_include.cmake")
include("/root/repo/build/tests/uml_validate_test[1]_include.cmake")
include("/root/repo/build/tests/usecase_test[1]_include.cmake")
include("/root/repo/build/tests/xmi_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/xmi_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/xmi_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/xmi_xml_test[1]_include.cmake")
