# Empty dependencies file for asl_test.
# This may be replaced when dependencies are built.
