file(REMOVE_RECURSE
  "CMakeFiles/asl_test.dir/asl_test.cpp.o"
  "CMakeFiles/asl_test.dir/asl_test.cpp.o.d"
  "asl_test"
  "asl_test.pdb"
  "asl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
