file(REMOVE_RECURSE
  "CMakeFiles/mda_test.dir/mda_test.cpp.o"
  "CMakeFiles/mda_test.dir/mda_test.cpp.o.d"
  "mda_test"
  "mda_test.pdb"
  "mda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
