# Empty compiler generated dependencies file for mda_test.
# This may be replaced when dependencies are built.
