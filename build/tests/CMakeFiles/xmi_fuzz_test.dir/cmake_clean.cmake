file(REMOVE_RECURSE
  "CMakeFiles/xmi_fuzz_test.dir/xmi_fuzz_test.cpp.o"
  "CMakeFiles/xmi_fuzz_test.dir/xmi_fuzz_test.cpp.o.d"
  "xmi_fuzz_test"
  "xmi_fuzz_test.pdb"
  "xmi_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmi_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
