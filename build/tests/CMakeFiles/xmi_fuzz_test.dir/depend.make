# Empty dependencies file for xmi_fuzz_test.
# This may be replaced when dependencies are built.
