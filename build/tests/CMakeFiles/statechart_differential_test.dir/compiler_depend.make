# Empty compiler generated dependencies file for statechart_differential_test.
# This may be replaced when dependencies are built.
