file(REMOVE_RECURSE
  "CMakeFiles/statechart_differential_test.dir/statechart_differential_test.cpp.o"
  "CMakeFiles/statechart_differential_test.dir/statechart_differential_test.cpp.o.d"
  "statechart_differential_test"
  "statechart_differential_test.pdb"
  "statechart_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
