# Empty dependencies file for xmi_xml_test.
# This may be replaced when dependencies are built.
