file(REMOVE_RECURSE
  "CMakeFiles/xmi_xml_test.dir/xmi_xml_test.cpp.o"
  "CMakeFiles/xmi_xml_test.dir/xmi_xml_test.cpp.o.d"
  "xmi_xml_test"
  "xmi_xml_test.pdb"
  "xmi_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmi_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
