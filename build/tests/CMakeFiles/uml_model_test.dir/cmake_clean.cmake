file(REMOVE_RECURSE
  "CMakeFiles/uml_model_test.dir/uml_model_test.cpp.o"
  "CMakeFiles/uml_model_test.dir/uml_model_test.cpp.o.d"
  "uml_model_test"
  "uml_model_test.pdb"
  "uml_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uml_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
