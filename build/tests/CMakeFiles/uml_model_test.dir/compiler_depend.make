# Empty compiler generated dependencies file for uml_model_test.
# This may be replaced when dependencies are built.
