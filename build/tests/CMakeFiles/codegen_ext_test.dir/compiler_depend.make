# Empty compiler generated dependencies file for codegen_ext_test.
# This may be replaced when dependencies are built.
