file(REMOVE_RECURSE
  "CMakeFiles/codegen_ext_test.dir/codegen_ext_test.cpp.o"
  "CMakeFiles/codegen_ext_test.dir/codegen_ext_test.cpp.o.d"
  "codegen_ext_test"
  "codegen_ext_test.pdb"
  "codegen_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
