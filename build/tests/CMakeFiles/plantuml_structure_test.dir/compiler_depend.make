# Empty compiler generated dependencies file for plantuml_structure_test.
# This may be replaced when dependencies are built.
