file(REMOVE_RECURSE
  "CMakeFiles/plantuml_structure_test.dir/plantuml_structure_test.cpp.o"
  "CMakeFiles/plantuml_structure_test.dir/plantuml_structure_test.cpp.o.d"
  "plantuml_structure_test"
  "plantuml_structure_test.pdb"
  "plantuml_structure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plantuml_structure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
