# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for plantuml_structure_test.
