# Empty compiler generated dependencies file for uml_validate_test.
# This may be replaced when dependencies are built.
