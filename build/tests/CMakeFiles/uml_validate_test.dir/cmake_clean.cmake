file(REMOVE_RECURSE
  "CMakeFiles/uml_validate_test.dir/uml_validate_test.cpp.o"
  "CMakeFiles/uml_validate_test.dir/uml_validate_test.cpp.o.d"
  "uml_validate_test"
  "uml_validate_test.pdb"
  "uml_validate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uml_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
