file(REMOVE_RECURSE
  "CMakeFiles/asl_constraints_test.dir/asl_constraints_test.cpp.o"
  "CMakeFiles/asl_constraints_test.dir/asl_constraints_test.cpp.o.d"
  "asl_constraints_test"
  "asl_constraints_test.pdb"
  "asl_constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
