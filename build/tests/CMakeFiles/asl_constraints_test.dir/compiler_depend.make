# Empty compiler generated dependencies file for asl_constraints_test.
# This may be replaced when dependencies are built.
