# Empty dependencies file for uml_edit_test.
# This may be replaced when dependencies are built.
