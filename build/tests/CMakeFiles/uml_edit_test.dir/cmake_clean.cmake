file(REMOVE_RECURSE
  "CMakeFiles/uml_edit_test.dir/uml_edit_test.cpp.o"
  "CMakeFiles/uml_edit_test.dir/uml_edit_test.cpp.o.d"
  "uml_edit_test"
  "uml_edit_test.pdb"
  "uml_edit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uml_edit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
