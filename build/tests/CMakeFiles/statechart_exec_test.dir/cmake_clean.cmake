file(REMOVE_RECURSE
  "CMakeFiles/statechart_exec_test.dir/statechart_exec_test.cpp.o"
  "CMakeFiles/statechart_exec_test.dir/statechart_exec_test.cpp.o.d"
  "statechart_exec_test"
  "statechart_exec_test.pdb"
  "statechart_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
