# Empty dependencies file for statechart_exec_test.
# This may be replaced when dependencies are built.
