# Empty dependencies file for xmi_behavior_test.
# This may be replaced when dependencies are built.
