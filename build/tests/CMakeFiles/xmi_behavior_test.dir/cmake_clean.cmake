file(REMOVE_RECURSE
  "CMakeFiles/xmi_behavior_test.dir/xmi_behavior_test.cpp.o"
  "CMakeFiles/xmi_behavior_test.dir/xmi_behavior_test.cpp.o.d"
  "xmi_behavior_test"
  "xmi_behavior_test.pdb"
  "xmi_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmi_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
