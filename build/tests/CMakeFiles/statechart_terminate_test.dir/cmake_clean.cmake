file(REMOVE_RECURSE
  "CMakeFiles/statechart_terminate_test.dir/statechart_terminate_test.cpp.o"
  "CMakeFiles/statechart_terminate_test.dir/statechart_terminate_test.cpp.o.d"
  "statechart_terminate_test"
  "statechart_terminate_test.pdb"
  "statechart_terminate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_terminate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
