# Empty dependencies file for statechart_terminate_test.
# This may be replaced when dependencies are built.
