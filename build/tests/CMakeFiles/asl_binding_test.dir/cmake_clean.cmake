file(REMOVE_RECURSE
  "CMakeFiles/asl_binding_test.dir/asl_binding_test.cpp.o"
  "CMakeFiles/asl_binding_test.dir/asl_binding_test.cpp.o.d"
  "asl_binding_test"
  "asl_binding_test.pdb"
  "asl_binding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asl_binding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
