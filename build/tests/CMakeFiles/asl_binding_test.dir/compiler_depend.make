# Empty compiler generated dependencies file for asl_binding_test.
# This may be replaced when dependencies are built.
