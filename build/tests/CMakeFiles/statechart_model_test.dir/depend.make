# Empty dependencies file for statechart_model_test.
# This may be replaced when dependencies are built.
