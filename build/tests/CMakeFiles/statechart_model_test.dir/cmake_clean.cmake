file(REMOVE_RECURSE
  "CMakeFiles/statechart_model_test.dir/statechart_model_test.cpp.o"
  "CMakeFiles/statechart_model_test.dir/statechart_model_test.cpp.o.d"
  "statechart_model_test"
  "statechart_model_test.pdb"
  "statechart_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
