file(REMOVE_RECURSE
  "CMakeFiles/statechart_defer_test.dir/statechart_defer_test.cpp.o"
  "CMakeFiles/statechart_defer_test.dir/statechart_defer_test.cpp.o.d"
  "statechart_defer_test"
  "statechart_defer_test.pdb"
  "statechart_defer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statechart_defer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
