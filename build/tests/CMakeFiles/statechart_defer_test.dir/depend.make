# Empty dependencies file for statechart_defer_test.
# This may be replaced when dependencies are built.
