# Empty compiler generated dependencies file for xmi_roundtrip_test.
# This may be replaced when dependencies are built.
