file(REMOVE_RECURSE
  "CMakeFiles/xmi_roundtrip_test.dir/xmi_roundtrip_test.cpp.o"
  "CMakeFiles/xmi_roundtrip_test.dir/xmi_roundtrip_test.cpp.o.d"
  "xmi_roundtrip_test"
  "xmi_roundtrip_test.pdb"
  "xmi_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmi_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
