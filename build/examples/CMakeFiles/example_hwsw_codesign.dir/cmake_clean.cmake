file(REMOVE_RECURSE
  "CMakeFiles/example_hwsw_codesign.dir/hwsw_codesign.cpp.o"
  "CMakeFiles/example_hwsw_codesign.dir/hwsw_codesign.cpp.o.d"
  "example_hwsw_codesign"
  "example_hwsw_codesign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hwsw_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
