# Empty dependencies file for example_hwsw_codesign.
# This may be replaced when dependencies are built.
