# Empty compiler generated dependencies file for example_mda_flow.
# This may be replaced when dependencies are built.
