file(REMOVE_RECURSE
  "CMakeFiles/example_mda_flow.dir/mda_flow.cpp.o"
  "CMakeFiles/example_mda_flow.dir/mda_flow.cpp.o.d"
  "example_mda_flow"
  "example_mda_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mda_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
