# Empty dependencies file for example_xuml_text.
# This may be replaced when dependencies are built.
