file(REMOVE_RECURSE
  "CMakeFiles/example_xuml_text.dir/xuml_text.cpp.o"
  "CMakeFiles/example_xuml_text.dir/xuml_text.cpp.o.d"
  "example_xuml_text"
  "example_xuml_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xuml_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
