file(REMOVE_RECURSE
  "CMakeFiles/example_elevator_controller.dir/elevator_controller.cpp.o"
  "CMakeFiles/example_elevator_controller.dir/elevator_controller.cpp.o.d"
  "example_elevator_controller"
  "example_elevator_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_elevator_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
