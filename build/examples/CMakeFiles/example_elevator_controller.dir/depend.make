# Empty dependencies file for example_elevator_controller.
# This may be replaced when dependencies are built.
