file(REMOVE_RECURSE
  "CMakeFiles/example_uart_soc.dir/uart_soc.cpp.o"
  "CMakeFiles/example_uart_soc.dir/uart_soc.cpp.o.d"
  "example_uart_soc"
  "example_uart_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_uart_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
