# Empty compiler generated dependencies file for example_uart_soc.
# This may be replaced when dependencies are built.
