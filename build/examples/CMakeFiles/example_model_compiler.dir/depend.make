# Empty dependencies file for example_model_compiler.
# This may be replaced when dependencies are built.
