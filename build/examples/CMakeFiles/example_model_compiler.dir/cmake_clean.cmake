file(REMOVE_RECURSE
  "CMakeFiles/example_model_compiler.dir/model_compiler.cpp.o"
  "CMakeFiles/example_model_compiler.dir/model_compiler.cpp.o.d"
  "example_model_compiler"
  "example_model_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
