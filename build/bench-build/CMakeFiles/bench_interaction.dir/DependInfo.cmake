
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_interaction.cpp" "bench-build/CMakeFiles/bench_interaction.dir/bench_interaction.cpp.o" "gcc" "bench-build/CMakeFiles/bench_interaction.dir/bench_interaction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/umlsoc_xmi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_usecase.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_interaction.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_asl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_mda.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_codesign.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_statechart.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_uml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/umlsoc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
