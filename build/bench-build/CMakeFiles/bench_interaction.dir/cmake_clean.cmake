file(REMOVE_RECURSE
  "../bench/bench_interaction"
  "../bench/bench_interaction.pdb"
  "CMakeFiles/bench_interaction.dir/bench_interaction.cpp.o"
  "CMakeFiles/bench_interaction.dir/bench_interaction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
