file(REMOVE_RECURSE
  "../bench/bench_xmi"
  "../bench/bench_xmi.pdb"
  "CMakeFiles/bench_xmi.dir/bench_xmi.cpp.o"
  "CMakeFiles/bench_xmi.dir/bench_xmi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
