# Empty dependencies file for bench_xmi.
# This may be replaced when dependencies are built.
