file(REMOVE_RECURSE
  "../bench/bench_sim"
  "../bench/bench_sim.pdb"
  "CMakeFiles/bench_sim.dir/bench_sim.cpp.o"
  "CMakeFiles/bench_sim.dir/bench_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
