file(REMOVE_RECURSE
  "../bench/bench_statechart"
  "../bench/bench_statechart.pdb"
  "CMakeFiles/bench_statechart.dir/bench_statechart.cpp.o"
  "CMakeFiles/bench_statechart.dir/bench_statechart.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statechart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
