# Empty compiler generated dependencies file for bench_statechart.
# This may be replaced when dependencies are built.
