file(REMOVE_RECURSE
  "../bench/bench_asl"
  "../bench/bench_asl.pdb"
  "CMakeFiles/bench_asl.dir/bench_asl.cpp.o"
  "CMakeFiles/bench_asl.dir/bench_asl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_asl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
