file(REMOVE_RECURSE
  "../bench/bench_codesign"
  "../bench/bench_codesign.pdb"
  "CMakeFiles/bench_codesign.dir/bench_codesign.cpp.o"
  "CMakeFiles/bench_codesign.dir/bench_codesign.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
