file(REMOVE_RECURSE
  "../bench/bench_activity"
  "../bench/bench_activity.pdb"
  "CMakeFiles/bench_activity.dir/bench_activity.cpp.o"
  "CMakeFiles/bench_activity.dir/bench_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
