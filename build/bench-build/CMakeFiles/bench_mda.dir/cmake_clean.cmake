file(REMOVE_RECURSE
  "../bench/bench_mda"
  "../bench/bench_mda.pdb"
  "CMakeFiles/bench_mda.dir/bench_mda.cpp.o"
  "CMakeFiles/bench_mda.dir/bench_mda.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
