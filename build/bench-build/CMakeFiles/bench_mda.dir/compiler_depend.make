# Empty compiler generated dependencies file for bench_mda.
# This may be replaced when dependencies are built.
